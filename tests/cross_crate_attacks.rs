//! Attack-versus-defense integration tests: every attack implemented in
//! one crate is run against the matching defense from another, and the
//! published outcome (who wins) must reproduce.

use seceda_cipher::{sbox_first_round_registered, ToyCipher, AES_SBOX, TOY_ROUNDS};
use seceda_dft::{scan_attack_recover_key, scan_victim, secure_scan_wrap};
use seceda_fia::{dfa_attack, FaultDiscriminator, FaultVerdict};
use seceda_puf::{collect_crps, model_arbiter_puf, ArbiterPuf, ArbiterPufConfig, XorArbiterPuf};
use seceda_sca::{cpa::cpa_attack_with_model, traces::acquire_cpa_traces, TraceCampaign};
use seceda_trojan::{insert_rare_event_monitor, insert_trojan, TrojanConfig};

#[test]
fn cpa_beats_the_unprotected_sbox() {
    let victim = sbox_first_round_registered();
    let campaign = TraceCampaign {
        traces_per_group: 1200,
        noise: seceda_sim::NoiseModel {
            sigma: 1.0,
            seed: 3,
        },
        ..TraceCampaign::default()
    };
    let key = 0xC3;
    let (traces, pts) = acquire_cpa_traces(&victim, key, &campaign).expect("traces");
    let result = cpa_attack_with_model(&traces, &pts, |pt, g| {
        (AES_SBOX[(pt ^ g) as usize] ^ AES_SBOX[g as usize]).count_ones() as f64
    });
    assert_eq!(result.best_guess, key);
}

#[test]
fn dfa_beats_the_unprotected_toy_cipher_and_dies_on_infection() {
    let key = 0xFACE;
    let cipher = ToyCipher::new(key);
    let pts: Vec<u16> = (0..16).map(|i| 0x0101u16.wrapping_mul(i * 7 + 1)).collect();
    // unprotected: faulty ciphertexts escape, DFA pins the key
    let pairs: Vec<(u16, u16)> = pts
        .iter()
        .enumerate()
        .map(|(i, &pt)| {
            (
                cipher.encrypt(pt),
                cipher.encrypt_with_fault(pt, TOY_ROUNDS - 1, i % 16),
            )
        })
        .collect();
    let open = dfa_attack(&pairs);
    assert!(open.candidates.contains(&key));
    assert!(
        open.candidates.len() <= 4,
        "{} candidates",
        open.candidates.len()
    );

    // with infection, the "faulty ciphertext" is scrambled junk and the
    // true key no longer stands out
    let infected: Vec<(u16, u16)> = pts
        .iter()
        .enumerate()
        .map(|(i, &pt)| {
            let good = cipher.encrypt(pt);
            (good, good.rotate_left(i as u32 % 13 + 1) ^ 0x1357)
        })
        .collect();
    let blocked = dfa_attack(&infected);
    assert!(
        !blocked.candidates.contains(&key) || blocked.candidates.len() > 100,
        "infection must deny a crisp key recovery"
    );
}

#[test]
fn scan_attack_beats_plain_scan_but_not_secure_scan() {
    let key = 0x9D;
    let plain = scan_victim(key);
    assert_eq!(scan_attack_recover_key(&plain, 0x31), key);

    let secured = secure_scan_wrap(scan_victim(key), 0xABCD);
    let pt = 0x31u8;
    let inputs = seceda_netlist::u64_to_bits(pt as u64, 8);
    let (_, state) = secured.capture(&vec![false; 8], &inputs);
    let scrambled = secured.dump_scrambled(&state, &inputs);
    let ordered: Vec<bool> = scrambled.iter().rev().copied().collect();
    let mut inv = [0u8; 256];
    for (i, &v) in AES_SBOX.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    let guess = pt ^ inv[seceda_netlist::bits_to_u64(&ordered) as usize];
    assert_ne!(guess, key, "secure scan must break the inversion");
}

#[test]
fn ml_attack_beats_plain_puf_but_not_xor4() {
    let quiet = ArbiterPufConfig {
        noise_sigma: 0.0,
        ..ArbiterPufConfig::default()
    };
    let plain = ArbiterPuf::manufacture(&quiet, 404);
    let train = collect_crps(|c| plain.respond_ideal(c), 32, 1500, 1);
    let test = collect_crps(|c| plain.respond_ideal(c), 32, 400, 2);
    let plain_acc = model_arbiter_puf(&train, &test, 25, 0.1).accuracy;

    let xor4 = XorArbiterPuf::manufacture(&quiet, 4, 404);
    let train = collect_crps(|c| xor4.respond_ideal(c), 32, 1500, 1);
    let test = collect_crps(|c| xor4.respond_ideal(c), 32, 400, 2);
    let xor_acc = model_arbiter_puf(&train, &test, 25, 0.1).accuracy;

    assert!(plain_acc > 0.9, "plain arbiter PUF clones: {plain_acc}");
    assert!(xor_acc < 0.75, "XOR-4 resists: {xor_acc}");
}

#[test]
fn trojan_vs_monitor_vs_discriminator() {
    // a Trojan fires; the monitor alarms; the discriminator, seeing the
    // same location hammered, rules "malicious"
    let host = seceda_netlist::random_circuit(&seceda_netlist::RandomCircuitConfig {
        num_gates: 150,
        num_inputs: 12,
        num_outputs: 6,
        with_xor: false,
        ..Default::default()
    });
    let tconfig = TrojanConfig::default();
    let trojan = insert_trojan(&host, &tconfig).expect("insert");
    let monitored = insert_rare_event_monitor(
        &trojan.netlist,
        1,
        usize::MAX,
        tconfig.rare_threshold,
        tconfig.seed,
    )
    .expect("instrument");

    let witness = trojan.activation_example.clone();
    let outs = monitored.netlist.evaluate(&witness);
    assert!(outs[outs.len() - 1], "monitor must alarm on activation");

    // the attacker re-triggers repeatedly: discriminator sees a pattern
    let mut discriminator = FaultDiscriminator::new(6, 0.5, 1e-6);
    for attempt in 0..6u64 {
        discriminator.record(trojan.trigger_net.index(), 1_000_000 * (attempt + 1));
    }
    assert_eq!(discriminator.verdict(), FaultVerdict::Malicious);
}
