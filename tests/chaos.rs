//! Deterministic chaos suite: provoke worker panics, budget
//! exhaustion, and truncated parser input at the workspace's injection
//! points, and pin that every engine degrades gracefully — and that the
//! degradation itself is bit-identical across worker counts and repeat
//! runs.
//!
//! `verify.sh` additionally runs this suite with `SECEDA_CHAOS` set to
//! two fixed seeds; every test here installs its own chaos scope (which
//! overrides the environment), except the ambient-survival test, which
//! deliberately runs under whatever the environment armed.
//!
//! Chaos scopes serialize on a process-wide lock and are NOT reentrant:
//! never nest `with_seed` / `with_forced` / `without_chaos`.

use seceda_core::{CompositionEngine, DesignUnderTest, MetricValue, SecurityEvaluation, Verdict};
use seceda_fia::codes::duplicate_with_compare;
use seceda_lock::{sat_attack_budgeted, xor_lock, SatAttackOutcome, SatAttackResult};
use seceda_netlist::{c17, majority, parse_design, write_bench, DesignFormat};
use seceda_sat::Budget;
use seceda_testkit::chaos;
use seceda_testkit::par::with_workers;
use seceda_verif::prove_detection_budgeted;

/// The two seeds `verify.sh` pins for its quick-mode chaos runs.
const VERIFY_SEEDS: [u64; 2] = [0xDEAD_BEEF, 0xCAFE];

/// One evaluation of c17 under the current chaos configuration,
/// fingerprinted as `(metric name, available?)` per metric.
fn evaluate_fingerprint(workers: usize) -> Vec<(String, bool)> {
    with_workers(workers, || {
        let mut engine =
            CompositionEngine::new(DesignUnderTest::new(c17()), SecurityEvaluation::default());
        let report = engine
            .evaluate("chaos suite")
            .expect("chaos never surfaces as a hard error")
            .clone();
        report
            .metrics
            .iter()
            .map(|m| (m.name.clone(), m.value.is_available()))
            .collect()
    })
}

#[test]
fn forced_threat_panic_degrades_exactly_one_metric_at_every_worker_count() {
    for workers in [1usize, 2, 8] {
        for run in 0..2 {
            let report = chaos::with_forced("compose.threat.panic", Some(1), || {
                with_workers(workers, || {
                    let mut engine = CompositionEngine::new(
                        DesignUnderTest::new(c17()),
                        SecurityEvaluation::default(),
                    );
                    engine
                        .evaluate("forced panic")
                        .expect("evaluation completes")
                        .clone()
                })
            });
            assert_eq!(report.metrics.len(), 4, "workers={workers} run={run}");
            let degraded = report.degraded();
            assert_eq!(degraded.len(), 1, "workers={workers} run={run}");
            assert_eq!(
                degraded[0].name, "fault-detection coverage",
                "salt 1 pins the fault-injection evaluator"
            );
            match &degraded[0].value {
                MetricValue::Unavailable { reason } => {
                    assert!(reason.contains("chaos"), "reason: {reason}")
                }
                other => panic!("degraded metric must be Unavailable, got {other:?}"),
            }
            // the other three metrics computed normally
            for m in &report.metrics {
                if m.name != "fault-detection coverage" {
                    assert!(m.value.is_available(), "{} degraded too", m.name);
                    assert_ne!(m.verdict, Verdict::Unavailable);
                }
            }
        }
    }
}

#[test]
fn seeded_evaluation_is_deterministic_across_worker_counts() {
    for seed in VERIFY_SEEDS {
        let reference = chaos::with_seed(seed, || evaluate_fingerprint(1));
        assert_eq!(reference.len(), 4);
        for workers in [2usize, 8] {
            let got = chaos::with_seed(seed, || evaluate_fingerprint(workers));
            assert_eq!(
                got, reference,
                "seed {seed:#x}: degradation pattern must not depend on \
                 worker count (workers={workers})"
            );
        }
        // and a repeat run is bit-identical
        let again = chaos::with_seed(seed, || evaluate_fingerprint(1));
        assert_eq!(again, reference, "seed {seed:#x}: repeat run differed");
    }
}

#[test]
fn truncated_parser_input_never_panics_under_pinned_seeds() {
    let texts = [
        write_bench(&c17()),
        write_bench(&majority()),
        write_bench(&xor_lock(&c17(), 8, 7).netlist),
    ];
    for seed in VERIFY_SEEDS {
        for text in &texts {
            // the truncation decision is salted by input length, so the
            // outcome for a fixed (seed, text) must be reproducible
            let first = chaos::with_seed(seed, || parse_design(text, DesignFormat::Bench).is_ok());
            let second = chaos::with_seed(seed, || parse_design(text, DesignFormat::Bench).is_ok());
            assert_eq!(first, second, "seed {seed:#x}: nondeterministic parse");
        }
    }
    // forced truncation on every call still returns a typed result
    chaos::with_forced("parse.design", None, || {
        for text in &texts {
            let _ = parse_design(text, DesignFormat::Bench);
        }
    });
}

#[test]
fn forced_sat_budget_exhaustion_degrades_proof_to_undecided_holes() {
    let protected = duplicate_with_compare(&majority());
    // a *limited* budget is chaos-eligible; forcing "sat.budget" makes
    // every solver query report chaos-injected exhaustion
    let proof = chaos::with_forced("sat.budget", None, || {
        prove_detection_budgeted(&protected, &Budget::unlimited().with_max_conflicts(1 << 20))
            .expect("encoding still works under chaos")
    });
    assert!(
        !proof.undecided.is_empty(),
        "forced exhaustion must leave queries undecided"
    );
    assert!(!proof.holds(), "undecided faults are holes in the proof");
    assert!(proof.violations.is_empty(), "no fabricated violations");
    assert_eq!(proof.proven + proof.undecided.len(), proof.total);
    // chaos-free, the same proof closes completely
    let full = chaos::without_chaos(|| {
        prove_detection_budgeted(&protected, &Budget::unlimited()).expect("prove")
    });
    assert!(full.holds());
}

#[test]
fn chaos_suspended_attack_resumes_chaos_free_to_the_straight_through_key() {
    let original = c17();
    let locked = xor_lock(&original, 8, 7);
    let oracle = |x: &[bool]| original.evaluate(x);
    let straight: SatAttackResult = chaos::without_chaos(|| {
        match sat_attack_budgeted(&locked, oracle, &Budget::unlimited(), None).expect("attack runs")
        {
            SatAttackOutcome::Complete(r) => r,
            other => panic!("unbudgeted c17 attack must complete: {other:?}"),
        }
    });
    // a limited (but ample) budget makes every constituent solve
    // chaos-eligible; ~1/8 of them report injected exhaustion, so some
    // seed in the pinned list suspends the attack mid-flight
    let ample = Budget::unlimited().with_max_conflicts(1 << 20);
    let mut suspensions = 0usize;
    for seed in VERIFY_SEEDS {
        let outcome = chaos::with_seed(seed, || {
            sat_attack_budgeted(&locked, oracle, &ample, None).expect("attack runs")
        });
        match outcome {
            SatAttackOutcome::Complete(r) => {
                assert_eq!(r.key, straight.key, "seed {seed:#x}: key diverged");
                assert_eq!(r.iterations, straight.iterations, "seed {seed:#x}");
            }
            SatAttackOutcome::Suspended { checkpoint, .. } => {
                suspensions += 1;
                let resumed = chaos::without_chaos(|| {
                    sat_attack_budgeted(&locked, oracle, &Budget::unlimited(), Some(&checkpoint))
                        .expect("resume runs")
                });
                match resumed {
                    SatAttackOutcome::Complete(r) => {
                        assert_eq!(r.key, straight.key, "seed {seed:#x}: key diverged");
                        assert_eq!(
                            r.iterations, straight.iterations,
                            "seed {seed:#x}: iteration count diverged"
                        );
                    }
                    other => panic!("chaos-free resume must complete: {other:?}"),
                }
            }
            SatAttackOutcome::NoKey => panic!("seed {seed:#x}: attack lost the key"),
        }
    }
    assert!(
        suspensions > 0,
        "at least one pinned seed must actually suspend the attack"
    );
}

#[test]
fn ambient_env_chaos_is_survivable_end_to_end() {
    // under `SECEDA_CHAOS=<seed>` (as verify.sh runs this suite) the
    // harness is ambient-active; without it, nothing fires. Either way
    // the whole pipeline must complete without an escaping panic:
    // parses return typed results, evaluations degrade per-threat, and
    // budgeted attacks complete or suspend with a checkpoint.
    let text = write_bench(&c17());
    let _ = parse_design(&text, DesignFormat::Bench);
    let mut engine =
        CompositionEngine::new(DesignUnderTest::new(c17()), SecurityEvaluation::default());
    let report = engine
        .evaluate("ambient chaos")
        .expect("evaluation completes");
    assert_eq!(report.metrics.len(), 4);
    let original = c17();
    let locked = xor_lock(&original, 8, 7);
    let outcome = sat_attack_budgeted(
        &locked,
        |x: &[bool]| original.evaluate(x),
        &Budget::unlimited().with_max_conflicts(1 << 20),
        None,
    )
    .expect("attack runs");
    match outcome {
        SatAttackOutcome::Complete(_) | SatAttackOutcome::Suspended { .. } => {}
        SatAttackOutcome::NoKey => panic!("c17 attack must not lose the key"),
    }
}
