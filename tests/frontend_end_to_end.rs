//! End-to-end coverage of the real-design frontend: checked-in `.bench`
//! files flow through the full attack/defense pipeline — logic locking
//! plus the SAT attack, packed fault simulation, and the secure
//! composition engine — exactly like in-process circuits.

use seceda_core::{CompositionEngine, DesignUnderTest, SecurityEvaluation};
use seceda_lock::{sat_attack, xor_lock};
use seceda_netlist::{parse_design_path, Netlist};
use seceda_sim::fault::stuck_at_universe;
use seceda_sim::{signal_probabilities, FaultSim};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};
use std::path::PathBuf;

fn fixture(name: &str) -> Netlist {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../netlist/tests/data")
        .join(name);
    parse_design_path(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn parsed_c17_survives_lock_and_sat_attack() {
    let nl = fixture("c17.bench");
    let locked = xor_lock(&nl, 6, 42);
    let oracle = |x: &[bool]| nl.evaluate(x);
    let attack = sat_attack(&locked, oracle)
        .expect("attack runs")
        .expect("key recovered");
    // the recovered key must be functionally correct on every input
    for pattern in 0u32..(1 << nl.inputs().len()) {
        let inputs: Vec<bool> = (0..nl.inputs().len())
            .map(|b| (pattern >> b) & 1 == 1)
            .collect();
        assert_eq!(
            locked.evaluate_with_key(&inputs, &attack.key),
            nl.evaluate(&inputs),
            "pattern {pattern}"
        );
    }
}

#[test]
fn parsed_rand300_fault_sim_packed_matches_scalar() {
    let nl = fixture("rand300.bench");
    assert_eq!(nl.num_gates(), 300);
    let faults = stuck_at_universe(&nl);
    let mut rng = StdRng::seed_from_u64(11);
    let patterns: Vec<Vec<bool>> = (0..96)
        .map(|_| (0..nl.inputs().len()).map(|_| rng.gen_bool(0.5)).collect())
        .collect();
    let sim = FaultSim::new(&nl).expect("sim");
    let (det_packed, cov_packed) = sim.coverage(&patterns, &faults);
    let (det_scalar, cov_scalar) = sim.coverage_scalar(&patterns, &faults);
    assert_eq!(det_packed, det_scalar);
    assert!((cov_packed - cov_scalar).abs() < 1e-12);
    assert!(
        cov_packed > 0.2,
        "random patterns detect a nontrivial share"
    );
    // signal probabilities run on the parsed design too
    let probs = signal_probabilities(&nl, 4, 3).expect("probs");
    assert_eq!(probs.len(), nl.num_nets());
}

#[test]
fn parsed_design_drives_composition_engine() {
    let nl = fixture("c17.bench");
    let mut engine =
        CompositionEngine::new(DesignUnderTest::new(nl), SecurityEvaluation::default());
    let baseline = engine.evaluate("baseline").expect("baseline evaluation");
    assert!(
        !baseline.metrics.is_empty(),
        "composition engine produces metrics for a parsed design"
    );
}

#[test]
fn parsed_sequential_s27_steps() {
    let nl = fixture("s27.bench");
    assert_eq!(nl.dffs().len(), 3);
    let mut state = vec![false; 3];
    let mut rng = StdRng::seed_from_u64(27);
    for _ in 0..32 {
        let inputs: Vec<bool> = (0..4).map(|_| rng.gen_bool(0.5)).collect();
        let (outs, next) = nl.step(&inputs, &state).expect("step");
        assert_eq!(outs.len(), 1);
        state = next;
    }
}
