//! Property-based integration tests: randomized designs through the
//! synthesis, mapping, masking, encoding and text-format layers, with
//! function preservation as the invariant.

use seceda_netlist::{format_netlist, parse_netlist, random_circuit, RandomCircuitConfig};
use seceda_sat::{encode_netlist, Cnf, SatResult, Solver};
use seceda_sca::mask_netlist;
use seceda_sim::{pack_patterns, PackedSim};
use seceda_synth::{
    decompose_to_two_input, map_to_nand, map_to_xag, optimize, reassociate, SynthesisMode,
};
use seceda_testkit::prelude::*;

fn small_circuit(seed: u64, gates: usize) -> seceda_netlist::Netlist {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 6,
        num_gates: gates,
        num_outputs: 4,
        with_xor: true,
        seed,
    })
}

fn truth_table(nl: &seceda_netlist::Netlist) -> Vec<Vec<bool>> {
    nl.truth_table()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn synthesis_pipeline_preserves_function(seed in 0u64..5000, gates in 10usize..60) {
        let nl = small_circuit(seed, gates);
        let reference = truth_table(&nl);
        let (reassoc, _) = reassociate(&nl, SynthesisMode::Classical);
        prop_assert_eq!(&truth_table(&reassoc), &reference);
        let optimized = optimize(&reassoc, SynthesisMode::Classical);
        prop_assert_eq!(&truth_table(&optimized), &reference);
        prop_assert!(optimized.validate().is_ok());
    }

    #[test]
    fn mapping_pipeline_preserves_function(seed in 0u64..5000, gates in 10usize..50) {
        let nl = small_circuit(seed, gates);
        let reference = truth_table(&nl);
        prop_assert_eq!(&truth_table(&decompose_to_two_input(&nl)), &reference);
        prop_assert_eq!(&truth_table(&map_to_nand(&nl)), &reference);
        prop_assert_eq!(&truth_table(&map_to_xag(&nl)), &reference);
    }

    #[test]
    fn text_format_roundtrips(seed in 0u64..5000, gates in 5usize..40) {
        let nl = small_circuit(seed, gates);
        let back = parse_netlist(&format_netlist(&nl)).expect("parse");
        prop_assert_eq!(truth_table(&back), truth_table(&nl));
    }

    #[test]
    fn cnf_encoding_agrees_with_packed_simulation(seed in 0u64..5000, gates in 5usize..30) {
        let nl = small_circuit(seed, gates);
        // pick one input pattern derived from the seed
        let pattern: Vec<bool> = (0..6).map(|b| (seed >> b) & 1 == 1).collect();
        let expected = nl.evaluate(&pattern);
        // packed simulation agrees
        let sim = PackedSim::new(&nl).expect("sim");
        let words = pack_patterns(std::slice::from_ref(&pattern), 6);
        let nets = sim.eval(&words);
        let packed: Vec<bool> = sim.outputs(&nets).iter().map(|w| w & 1 == 1).collect();
        prop_assert_eq!(&packed, &expected);
        // CNF encoding agrees
        let mut cnf = Cnf::new();
        let enc = encode_netlist(&nl, &mut cnf).expect("encode");
        let assumptions: Vec<_> = enc
            .input_vars
            .iter()
            .zip(&pattern)
            .map(|(v, &b)| v.lit(b))
            .collect();
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve_with_assumptions(&assumptions) {
            SatResult::Sat(model) => {
                let sat_outs: Vec<bool> =
                    enc.output_vars.iter().map(|v| model[v.index()]).collect();
                prop_assert_eq!(&sat_outs, &expected);
            }
            SatResult::Unsat => prop_assert!(false, "concrete inputs cannot be unsat"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn masking_preserves_function_on_random_circuits(
        seed in 0u64..1000,
        value_bits in 0u64..64,
        share_bits in 0u64..4096,
        random_bits in 0u64..(1 << 20),
    ) {
        let nl = small_circuit(seed, 14);
        let masked = mask_netlist(&nl);
        let values: Vec<bool> = (0..6).map(|b| (value_bits >> b) & 1 == 1).collect();
        let shares: Vec<bool> = (0..12).map(|b| (share_bits >> b) & 1 == 1).collect();
        let randoms: Vec<bool> = (0..masked.num_randoms)
            .map(|b| (random_bits >> (b % 20)) & 1 == 1)
            .collect();
        let inputs = masked.encode_inputs(&values, &shares, &randoms);
        let outs = masked.netlist.evaluate(&inputs);
        prop_assert_eq!(masked.decode_outputs(&outs), nl.evaluate(&values));
    }
}
