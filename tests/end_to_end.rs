//! End-to-end integration tests spanning the whole workspace: designs
//! travel from construction through synthesis, physical design,
//! protection, attack, and verification.

use seceda_cipher::ToyCipher;
use seceda_core::{run_classical_flow, run_secure_flow};
use seceda_layout::{place, proximity_attack, route, split_at, PlacementConfig, RouteConfig};
use seceda_lock::{sat_attack, xor_lock};
use seceda_netlist::{bits_to_u64, u64_to_bits, CellKind, Netlist};
use seceda_sca::{first_order_leaks, mask_netlist, ProbingModel};
use seceda_synth::{map_to_nand, optimize, SynthesisMode};
use seceda_verif::{check_equivalence, EquivResult};

fn and_gadget() -> Netlist {
    let mut nl = Netlist::new("and");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let y = nl.add_gate(CellKind::And, &[a, b]);
    nl.mark_output(y, "y");
    nl
}

#[test]
fn toy_cipher_survives_the_whole_classical_flow() {
    let nl = ToyCipher::netlist();
    let report = run_classical_flow(&nl).expect("flow");
    // function preserved on an untagged design: spot-check against the
    // software model
    for (pt, key) in [(0x1234u16, 0xBEEFu16), (0xFFFF, 0x0001), (0x0F0F, 0xA5A5)] {
        let mut inputs = u64_to_bits(pt as u64, 16);
        inputs.extend(u64_to_bits(key as u64, 16));
        let hw = bits_to_u64(&report.result.evaluate(&inputs)) as u16;
        assert_eq!(
            hw,
            ToyCipher::new(key).encrypt(pt),
            "pt {pt:#x} key {key:#x}"
        );
    }
    // and the flow should have shrunk the mux-tree S-boxes
    assert!(report.result.num_gates() <= nl.num_gates());
}

#[test]
fn masked_design_survives_only_the_secure_flow() {
    let masked = mask_netlist(&and_gadget());
    let model = ProbingModel::of(&masked);

    let classical = run_classical_flow(&masked.netlist).expect("flow");
    let secure = run_secure_flow(&masked.netlist).expect("flow");

    // the classical result still computes the right function...
    let equiv = check_equivalence(&masked.netlist, &classical.result).expect("equiv");
    assert_eq!(equiv, EquivResult::Equivalent);
    // ...but leaks; the secure result does not
    assert!(!first_order_leaks(&classical.result, &model).is_empty());
    assert!(first_order_leaks(&secure.result, &model).is_empty());
}

#[test]
fn locked_design_placed_routed_split_and_attacked() {
    // lock the toy cipher datapath, run physical design, split it, and
    // confirm both the foundry-level and the oracle-level attack models
    // behave as published
    let nl = seceda_netlist::c17();
    let locked = xor_lock(&nl, 10, 77);
    let synthesized = optimize(&locked.netlist, SynthesisMode::SecurityAware);
    // key gates must survive security-aware optimization
    let key_gates = synthesized
        .gates()
        .iter()
        .filter(|g| g.tags.key_gate)
        .count();
    assert_eq!(key_gates, 10);

    let placement = place(&synthesized, &PlacementConfig::default());
    let routed = route(&synthesized, &placement, &RouteConfig::default());
    let view = split_at(&routed, 3);
    let proximity = proximity_attack(&synthesized, &view);
    assert!(proximity.ccr < 1.0, "split must hide something");

    // oracle-guided SAT attack still defeats XOR locking
    let locked_after_synth = seceda_lock::LockedNetlist {
        netlist: synthesized,
        correct_key: locked.correct_key.clone(),
        num_original_inputs: locked.num_original_inputs,
    };
    let result = sat_attack(&locked_after_synth, |x| nl.evaluate(x))
        .expect("attack")
        .expect("key");
    for pattern in 0..32u32 {
        let inputs: Vec<bool> = (0..5).map(|b| (pattern >> b) & 1 == 1).collect();
        assert_eq!(
            locked_after_synth.evaluate_with_key(&inputs, &result.key),
            nl.evaluate(&inputs)
        );
    }
}

#[test]
fn nand_mapping_then_masking_then_probing() {
    // tech-map first (as a real flow would), then mask, then verify: the
    // masking transform must handle a NAND-only netlist
    let nand = map_to_nand(&and_gadget());
    let masked = mask_netlist(&nand);
    let model = ProbingModel::of(&masked);
    assert!(first_order_leaks(&masked.netlist, &model).is_empty());
    // functional correctness of the masked NAND-mapped design
    use seceda_testkit::rng::{Rng, SeedableRng, StdRng};
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..50 {
        let a: bool = rng.gen();
        let b: bool = rng.gen();
        let shares: Vec<bool> = (0..4).map(|_| rng.gen()).collect();
        let randoms: Vec<bool> = (0..masked.num_randoms).map(|_| rng.gen()).collect();
        let inputs = masked.encode_inputs(&[a, b], &shares, &randoms);
        let outs = masked.netlist.evaluate(&inputs);
        assert_eq!(masked.decode_outputs(&outs), vec![a & b]);
    }
}

#[test]
fn secure_flow_is_idempotent_on_its_own_output() {
    let masked = mask_netlist(&and_gadget());
    let once = run_secure_flow(&masked.netlist).expect("flow");
    let twice = run_secure_flow(&once.result).expect("flow");
    assert!(twice.equivalence_checked);
    let barriers = |n: &Netlist| n.gates().iter().filter(|g| g.tags.no_reassoc).count();
    assert_eq!(barriers(&once.result), barriers(&twice.result));
}
