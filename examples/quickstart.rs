//! Quickstart: build a design, run the classical and the security-centric
//! EDA flow over it, and see what each one reports.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use seceda_core::{run_classical_flow, run_secure_flow};
use seceda_netlist::{CellKind, Netlist};
use seceda_sca::mask_netlist;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A tiny sensitive datapath: one AND of two secret bits.
    let mut design = Netlist::new("and_gadget");
    let a = design.add_input("a");
    let b = design.add_input("b");
    let y = design.add_gate(CellKind::And, &[a, b]);
    design.mark_output(y, "y");
    println!("design `{}`: {} gates", design.name(), design.num_gates());

    // 2. Protect it with 3-share ISW masking (the countermeasure of the
    //    paper's Sec. II-B example). The gadget gates carry ordering
    //    barriers.
    let masked = mask_netlist(&design);
    println!(
        "masked: {} gates, {} fresh random bits per evaluation",
        masked.netlist.num_gates(),
        masked.num_randoms
    );

    // 3. Run the CLASSICAL flow of the paper's Fig. 1 over the masked
    //    netlist: it optimizes through the masking barriers.
    let classical = run_classical_flow(&masked.netlist)?;
    println!("\n=== classical flow (Fig. 1) ===");
    for stage in &classical.stages {
        println!(
            "  {:<38} {:>4} gates, area {:>6.1} GE, delay {:>5.1}",
            stage.stage, stage.gates, stage.area_ge, stage.delay
        );
        for note in &stage.security_notes {
            println!("      - {note}");
        }
    }

    // 4. Run the SECURITY-CENTRIC flow: same stages, but synthesis honors
    //    the barriers and every stage contributes a security check.
    let secure = run_secure_flow(&masked.netlist)?;
    println!("\n=== security-centric flow ===");
    for stage in &secure.stages {
        println!(
            "  {:<38} {:>4} gates, area {:>6.1} GE, delay {:>5.1}",
            stage.stage, stage.gates, stage.area_ge, stage.delay
        );
        for note in &stage.security_notes {
            println!("      - {note}");
        }
    }
    println!("\nsecurity metrics after the secure flow:");
    for metric in &secure.security.metrics {
        println!("  {metric}");
    }
    println!(
        "\nformal equivalence of secure-flow output: {}",
        secure.equivalence_checked
    );

    // 5. The punchline: count surviving masking barriers.
    let barriers = |nl: &Netlist| nl.gates().iter().filter(|g| g.tags.no_reassoc).count();
    println!(
        "\nmasking barrier gates: input {}, classical flow {}, secure flow {}",
        barriers(&masked.netlist),
        barriers(&classical.result),
        barriers(&secure.result),
    );
    println!("(the classical flow silently optimized the countermeasure away — Fig. 2)");
    Ok(())
}
