//! The paper's thesis in one run: countermeasures interact, so the flow
//! must re-verify *every* threat after *every* insertion.
//!
//! The engine applies Boolean masking (SCA fix), then parity-based fault
//! detection (FIA fix) — and catches the parity predictor recombining
//! the shares, the composition failure of [61]. Re-planning with
//! share-wise duplication instead composes cleanly.
//!
//! ```sh
//! cargo run --example secure_composition
//! cargo run --example secure_composition -- path/to/design.bench
//! ```
//!
//! With a design file argument the engine runs both composition
//! attempts on the external design; the conflict assertions are only
//! checked for the built-in AND gadget (other designs may compose
//! differently).

use seceda_core::{CompositionEngine, Countermeasure, DesignUnderTest, SecurityEvaluation};
use seceda_netlist::{parse_design_path, CellKind, Netlist};

fn print_outcome(tag: &str, outcome: &seceda_core::EvaluationOutcome) {
    println!("\n--- {tag} ---");
    for metric in &outcome.report.metrics {
        println!("  {metric}");
    }
    if outcome.regressions.is_empty() {
        println!("  no cross-effects");
    } else {
        println!("  !! NEGATIVE CROSS-EFFECT on: {:?}", outcome.regressions);
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let (nl, builtin) = match std::env::args().nth(1) {
        Some(path) => {
            let parsed = parse_design_path(&path)?;
            println!(
                "external design {}: {} gates, {} inputs, {} outputs",
                parsed.name(),
                parsed.num_gates(),
                parsed.inputs().len(),
                parsed.outputs().len()
            );
            (parsed, false)
        }
        None => {
            let mut nl = Netlist::new("and_gadget");
            let a = nl.add_input("a");
            let b = nl.add_input("b");
            let y = nl.add_gate(CellKind::And, &[a, b]);
            nl.mark_output(y, "y");
            (nl, true)
        }
    };

    println!("== attempt 1: masking, then parity-code fault detection ==");
    let mut engine = CompositionEngine::new(
        DesignUnderTest::new(nl.clone()),
        SecurityEvaluation::default(),
    );
    let baseline = engine.evaluate("baseline")?.clone();
    println!("baseline:");
    for metric in &baseline.metrics {
        println!("  {metric}");
    }
    let masked = engine.apply(Countermeasure::Masking)?;
    print_outcome("after masking", &masked);
    let parity = engine.apply(Countermeasure::ParityCheck)?;
    print_outcome("after parity check", &parity);
    if builtin {
        assert!(
            !parity.regressions.is_empty(),
            "the engine must catch the masking/parity conflict"
        );
    }
    println!("\n=> the parity predictor recombines the shares: its parity wire");
    println!("   carries the unmasked secret. A flow that only re-checked the");
    println!("   fault metric would have shipped this design.");

    println!("\n== attempt 2: masking, then share-wise duplication ==");
    let mut engine =
        CompositionEngine::new(DesignUnderTest::new(nl), SecurityEvaluation::default());
    engine.evaluate("baseline")?;
    let masked = engine.apply(Countermeasure::Masking)?;
    print_outcome("after masking", &masked);
    let dwc = engine.apply(Countermeasure::DuplicationCompare)?;
    print_outcome("after duplication-with-compare", &dwc);
    if builtin {
        assert!(dwc.regressions.is_empty());
    }
    println!("\n=> share-wise comparison never combines shares of one secret:");
    println!("   both the SCA and the FIA metric hold. Secure composition found.");
    Ok(())
}
