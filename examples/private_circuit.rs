//! The paper's Fig. 2, end to end: a private-circuit (ISW) AND gadget is
//! provably first-order secure; a security-unaware synthesis pass factors
//! its XOR tree and the security evaporates — visible both to the exact
//! probing checker and to simulated TVLA measurements.
//!
//! ```sh
//! cargo run --example private_circuit
//! ```

use seceda_netlist::{CellKind, Netlist};
use seceda_sca::{
    acquire_fixed_vs_random, first_order_leaks, mask_netlist, tvla, MaskedNetlist, ProbingModel,
    TraceCampaign, TVLA_THRESHOLD,
};
use seceda_synth::{reassociate, SynthesisMode};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    // the target: c = a AND b on secret a, b
    let mut nl = Netlist::new("and");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let y = nl.add_gate(CellKind::And, &[a, b]);
    nl.mark_output(y, "y");

    // ISW 3-share masking with the paper's gadget schedule
    let masked = mask_netlist(&nl);
    let model = ProbingModel::of(&masked);
    println!(
        "masked AND gadget: {} gates, {} randoms, {} shares per signal",
        masked.netlist.num_gates(),
        masked.num_randoms,
        seceda_sca::NUM_SHARES
    );

    // --- exact verification, before synthesis ---
    let leaks = first_order_leaks(&masked.netlist, &model);
    println!(
        "\nexact probing check (pre-synthesis): {} leaking wires",
        leaks.len()
    );

    // --- security-aware synthesis: barriers respected ---
    let (aware, aware_report) = reassociate(&masked.netlist, SynthesisMode::SecurityAware);
    println!(
        "\nsecurity-aware synthesis: {} trees skipped at barriers, {} rebuilt",
        aware_report.trees_skipped, aware_report.trees_rebuilt
    );
    let aware_leaks = first_order_leaks(&aware, &model);
    println!("  probing check: {} leaking wires", aware_leaks.len());

    // --- classical synthesis: XOR factoring fires (Fig. 2) ---
    let (classical, classical_report) = reassociate(&masked.netlist, SynthesisMode::Classical);
    println!(
        "\nclassical synthesis: {} trees rebuilt, {} factorings (area win!)",
        classical_report.trees_rebuilt, classical_report.factorings
    );
    let classical_leaks = first_order_leaks(&classical, &model);
    println!(
        "  probing check: {} leaking wires — the gadget is BROKEN",
        classical_leaks.len()
    );

    // --- the same verdicts from simulated measurements (TVLA) ---
    let campaign = TraceCampaign {
        traces_per_group: 2000,
        ..TraceCampaign::default()
    };
    let fixed_value = [true, true];

    let secure_groups = acquire_fixed_vs_random(&masked, &fixed_value, &campaign)?;
    let t_secure = tvla(&secure_groups.fixed, &secure_groups.random);

    let broken_masked = MaskedNetlist {
        netlist: classical,
        ..masked
    };
    let broken_groups = acquire_fixed_vs_random(&broken_masked, &fixed_value, &campaign)?;
    let t_broken = tvla(&broken_groups.fixed, &broken_groups.random);

    println!(
        "\nTVLA with {} traces per group (threshold |t| > {TVLA_THRESHOLD}):",
        2000
    );
    println!(
        "  as designed:          max |t| = {:6.2}  -> {}",
        t_secure.max_abs_t,
        if t_secure.leaks() { "LEAKS" } else { "passes" }
    );
    println!(
        "  after classical synth: max |t| = {:6.2}  -> {}",
        t_broken.max_abs_t,
        if t_broken.leaks() { "LEAKS" } else { "passes" }
    );
    println!("\nthe optimizer was correct (function preserved) and fatal (security gone):");
    println!("this is why the paper calls for security-aware EDA.");
    Ok(())
}
