//! Flow telemetry: run both EDA flows under the structured tracer and
//! inspect where the time and the solver effort go.
//!
//! ```sh
//! SECEDA_TRACE=1 cargo run --example flow-trace
//! ```
//!
//! The example force-enables the recorder so plain `cargo run` shows the
//! same output; in library use, tracing stays off unless `SECEDA_TRACE=1`
//! is set, and costs a single atomic load per probe when off.

use seceda_core::{run_classical_flow, run_secure_flow};
use seceda_netlist::{c17, Netlist, Word};
use seceda_trace::{drain, set_enabled, to_json_lines, Event, Summary};

/// A masked slice of the AES S-box: the first 8 table entries (3 address
/// bits, all 8 output bits), protected with 3-share ISW masking. The full
/// 8-bit S-box masks to ~26k gates, which a debug-build demo cannot push
/// through SAT equivalence in reasonable time; the slice keeps every
/// stage — including equivalence on masked logic — within seconds.
fn masked_sbox_slice() -> Netlist {
    let mut nl = Netlist::new("aes_sbox_slice");
    let x = Word::input(&mut nl, "x", 3);
    let table: Vec<u64> = seceda_cipher::AES_SBOX[..8]
        .iter()
        .map(|&v| v as u64)
        .collect();
    let y = seceda_cipher::table_lookup(&mut nl, &x, &table, 8);
    y.mark_output(&mut nl, "y");
    seceda_sca::mask_netlist(&nl).netlist
}

/// Runs both flows over `nl` and returns the recorded events.
fn trace_both_flows(nl: &Netlist) -> Result<Vec<Event>, Box<dyn std::error::Error>> {
    drain(); // discard anything a previous run left behind
    run_classical_flow(nl)?;
    run_secure_flow(nl)?;
    Ok(drain())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    set_enabled(true);

    // 1. c17 — small enough to print the span tree in full depth.
    let c17_events = trace_both_flows(&c17())?;
    println!("=== c17: classical + secure flow, full span tree ===");
    print!("{}", Summary::of(&c17_events).render());

    // 2. A masked AES S-box slice — here ATPG and equivalence emit
    //    hundreds of SAT spans, so prune the tree below the per-stage
    //    work spans and let the counter rollup carry the totals.
    let sbox = masked_sbox_slice();
    println!(
        "\n=== {} ({} gates masked): classical + secure flow ===",
        sbox.name(),
        sbox.num_gates()
    );
    let sbox_events = trace_both_flows(&sbox)?;
    print!("{}", Summary::of(&sbox_events).render_depth(2));

    // 3. The same events as machine-readable JSON-lines (c17 run shown;
    //    `seceda-bench`'s trace_snapshot bin emits this format for the
    //    snapshot pipeline).
    println!("\n=== c17 run as JSON-lines ===");
    print!("{}", to_json_lines(&c17_events));
    Ok(())
}
