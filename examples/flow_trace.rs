//! Flow telemetry: run both EDA flows and the four engine hot loops
//! under the flight recorder, and inspect where the time goes.
//!
//! ```sh
//! SECEDA_TRACE=1 cargo run --example flow-trace
//! ```
//!
//! The example force-enables the recorder so plain `cargo run` shows the
//! same output; in library use, tracing stays off unless `SECEDA_TRACE=1`
//! is set, and costs a single atomic load per probe when off.
//!
//! Besides the span trees it prints, the full session is written to
//! `target/flow_trace.jsonl`, ready for the `seceda_obs` CLI:
//!
//! ```sh
//! cargo run -p seceda-trace --bin seceda_obs -- top target/flow_trace.jsonl
//! cargo run -p seceda-trace --bin seceda_obs -- export target/flow_trace.jsonl -o trace.json
//! # then open trace.json in chrome://tracing or https://ui.perfetto.dev
//! ```

use seceda_core::{
    run_classical_flow, run_closure, run_secure_flow, ClosureConfig, ClosureSession,
    CompositionEngine, Countermeasure, DesignUnderTest, SecurityEvaluation,
};
use seceda_lock::{sat_attack, sat_attack_budgeted, xor_lock, SatAttackOutcome};
use seceda_netlist::{c17, parse_design, write_bench, DesignFormat, Netlist, Word};
use seceda_sat::Budget;
use seceda_sim::{fault::stuck_at_universe, FaultSim};
use seceda_testkit::bench::target_dir;
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};
use seceda_trace::{drain, set_enabled, to_json_lines, Event, Summary};

/// A masked slice of the AES S-box: the first 8 table entries (3 address
/// bits, all 8 output bits), protected with 3-share ISW masking. The full
/// 8-bit S-box masks to ~26k gates, which a debug-build demo cannot push
/// through SAT equivalence in reasonable time; the slice keeps every
/// stage — including equivalence on masked logic — within seconds.
fn masked_sbox_slice() -> Netlist {
    let mut nl = Netlist::new("aes_sbox_slice");
    let x = Word::input(&mut nl, "x", 3);
    let table: Vec<u64> = seceda_cipher::AES_SBOX[..8]
        .iter()
        .map(|&v| v as u64)
        .collect();
    let y = seceda_cipher::table_lookup(&mut nl, &x, &table, 8);
    y.mark_output(&mut nl, "y");
    seceda_sca::mask_netlist(&nl).netlist
}

/// Runs both flows over `nl` and returns the recorded events.
fn trace_both_flows(nl: &Netlist) -> Result<Vec<Event>, Box<dyn std::error::Error>> {
    drain(); // discard anything a previous run left behind
    run_classical_flow(nl)?;
    run_secure_flow(nl)?;
    Ok(drain())
}

/// Exercises each instrumented engine hot loop — `.bench` parsing, the
/// SAT-attack DIP loop, packed fault-sim batches, and the composition
/// engine's threat evaluations — so the session carries histogram
/// samples for all four subsystems.
fn trace_engine_histograms(sbox: &Netlist) -> Result<Vec<Event>, Box<dyn std::error::Error>> {
    drain();

    // parse: round-trip c17 and the masked S-box slice through .bench
    // text (each parse records parse.design_ns; topo sorts record
    // ir.topo_ns)
    for nl in [&c17(), sbox] {
        let text = write_bench(nl);
        let reparsed = parse_design(&text, DesignFormat::Bench)?;
        reparsed.topo_order()?;
    }

    // SAT attack: the incremental DIP loop records one sat.dip_iter_ns
    // sample per iteration
    let original = c17();
    let locked = xor_lock(&original, 8, 7);
    let attack = sat_attack(&locked, |x| original.evaluate(x))?.expect("c17 key recovered");
    assert!(attack.iterations > 0);

    // fault sim: 256 patterns = four 64-wide batches, one
    // sim.fault_batch_ns sample each
    let sim = FaultSim::new(&original)?;
    let faults = stuck_at_universe(&original);
    let mut rng = StdRng::seed_from_u64(0xF10A);
    let patterns: Vec<Vec<bool>> = (0..256)
        .map(|_| (0..original.inputs().len()).map(|_| rng.gen()).collect())
        .collect();
    sim.coverage(&patterns, &faults);

    // compose: one full multi-threat evaluation records four
    // compose.threat_ns samples
    let mut engine = CompositionEngine::new(
        DesignUnderTest::new(original),
        SecurityEvaluation::default(),
    );
    engine.evaluate("flow-trace baseline")?;

    Ok(drain())
}

/// Exercises the robustness paths so the session also carries the
/// degradation counters: a budget-starved SAT attack that suspends and
/// resumes (`sat.indeterminate`, `lock.attack_suspended`), and a
/// chaos-scoped threat evaluation (`chaos.injections`,
/// `compose.threats_degraded`).
fn trace_degradation_counters() -> Result<Vec<Event>, Box<dyn std::error::Error>> {
    drain();

    // budgeted attack: a one-conflict budget suspends almost
    // immediately; the checkpoint then resumes to completion unbudgeted
    let original = c17();
    let locked = xor_lock(&original, 8, 7);
    let oracle = |x: &[bool]| original.evaluate(x);
    let starved = Budget::unlimited().with_max_conflicts(1);
    let outcome = sat_attack_budgeted(&locked, oracle, &starved, None)?;
    if let SatAttackOutcome::Suspended { checkpoint, .. } = outcome {
        let resumed =
            sat_attack_budgeted(&locked, oracle, &Budget::unlimited(), Some(&checkpoint))?;
        assert!(matches!(resumed, SatAttackOutcome::Complete(_)));
    }

    // chaos-scoped evaluation: force one threat evaluator to panic; the
    // engine completes and degrades exactly that metric. The injected
    // panic is caught and converted to a degraded metric, so silence
    // the default hook's backtrace for the duration.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    seceda_testkit::chaos::with_forced("compose.threat.panic", Some(1), || {
        let mut engine =
            CompositionEngine::new(DesignUnderTest::new(c17()), SecurityEvaluation::default());
        let report = engine
            .evaluate("flow-trace chaos")
            .expect("evaluation completes under chaos")
            .clone();
        assert_eq!(report.degraded().len(), 1);
    });
    std::panic::set_hook(hook);

    Ok(drain())
}

/// Exercises the incremental-closure machinery: a small portfolio of
/// sessions with identical schedules over one shared evaluation cache,
/// so the session carries the cache telemetry (`compose.cache_hits`,
/// `compose.cache_misses`, `compose.dirty_gates`, `closure.sessions`)
/// plus `compose.reeval_ns` samples for every re-evaluation.
fn trace_closure_counters() -> Result<f64, Box<dyn std::error::Error>> {
    let design = c17();
    let schedule = vec![Countermeasure::XorLock(8), Countermeasure::TrojanMonitor];
    let sessions: Vec<ClosureSession> = (0..3)
        .map(|i| {
            ClosureSession::new(
                format!("s{i}"),
                DesignUnderTest::new(design.clone()),
                schedule.clone(),
            )
        })
        .collect();
    let report = run_closure(sessions, &ClosureConfig::default())?;
    assert!(report.cache.hits > 0, "shared schedules must hit the cache");
    Ok(report.cache.hit_rate())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    set_enabled(true);

    // 1. c17 — small enough to print the span tree in full depth.
    let c17_events = trace_both_flows(&c17())?;
    println!("=== c17: classical + secure flow, full span tree ===");
    print!("{}", Summary::of(&c17_events).render());

    // 2. A masked AES S-box slice — here ATPG and equivalence emit
    //    hundreds of SAT spans, so prune the tree below the per-stage
    //    work spans and let the counter rollup carry the totals.
    let sbox = masked_sbox_slice();
    println!(
        "\n=== {} ({} gates masked): classical + secure flow ===",
        sbox.name(),
        sbox.num_gates()
    );
    let sbox_events = trace_both_flows(&sbox)?;
    print!("{}", Summary::of(&sbox_events).render_depth(2));

    // 3. Engine latency distributions: parse, SAT attack, fault sim,
    //    and composition engine, with p50/p90/p99/max per metric.
    let engine_events = trace_engine_histograms(&sbox)?;
    let engine_summary = Summary::of(&engine_events);
    println!("\n=== engine latency histograms (parse / sat / sim / compose) ===");
    for metric in [
        "parse.design_ns",
        "ir.topo_ns",
        "sat.dip_iter_ns",
        "sim.fault_batch_ns",
        "compose.threat_ns",
        "compose.reeval_ns",
    ] {
        let h = engine_summary
            .histogram(metric)
            .unwrap_or_else(|| panic!("{metric}: no samples recorded"));
        println!(
            "{metric:<20} n={} p50={} p90={} p99={} max={}",
            h.count(),
            seceda_trace::fmt_duration(h.p50()),
            seceda_trace::fmt_duration(h.p90()),
            seceda_trace::fmt_duration(h.p99()),
            seceda_trace::fmt_duration(h.max()),
        );
    }

    // 4. Degradation counters: a suspended-and-resumed budgeted attack
    //    and one forced-chaos evaluation, so `seceda_obs top` also shows
    //    the robustness counters.
    let degradation_events = trace_degradation_counters()?;
    let degradation_summary = Summary::of(&degradation_events);
    println!("\n=== degradation counters (budgeted attack + forced chaos) ===");
    for counter in [
        "sat.indeterminate",
        "lock.attack_suspended",
        "chaos.injections",
        "compose.threats_degraded",
    ] {
        let total = degradation_summary
            .counters
            .get(counter)
            .copied()
            .unwrap_or(0);
        assert!(total > 0, "{counter}: no increments recorded");
        println!("{counter:<26} total={total}");
    }

    // 5. Incremental closure: three sessions with identical schedules
    //    over one shared cache — the cache and dirty-cone counters land
    //    in `seceda_obs top` alongside the hit rate printed here.
    drain();
    let hit_rate = trace_closure_counters()?;
    let closure_events = drain();
    let closure_summary = Summary::of(&closure_events);
    println!("\n=== incremental closure (3 sessions, shared cache) ===");
    for counter in [
        "closure.sessions",
        "compose.cache_hits",
        "compose.cache_misses",
        "compose.dirty_gates",
    ] {
        let total = closure_summary.counters.get(counter).copied().unwrap_or(0);
        assert!(total > 0, "{counter}: no increments recorded");
        println!("{counter:<26} total={total}");
    }
    println!("cache hit rate             {hit_rate:.3}");

    // 6. The whole session as JSON-lines for the seceda_obs CLI
    //    (export to Perfetto, hot-span top-N, session diffing).
    let mut all_events = c17_events;
    all_events.extend(sbox_events);
    all_events.extend(engine_events);
    all_events.extend(degradation_events);
    all_events.extend(closure_events);
    let jsonl_path = target_dir().join("flow_trace.jsonl");
    std::fs::write(&jsonl_path, to_json_lines(&all_events))?;
    println!(
        "\nwrote {} ({} events) — inspect with `seceda_obs top|summary|export`",
        jsonl_path.display(),
        all_events.len()
    );
    Ok(())
}
