//! Fault-simulate an external design: packed stuck-at coverage and
//! signal-probability profiling for any `.bench` / `.v` netlist.
//!
//! ```sh
//! cargo run --example fault_coverage -- crates/netlist/tests/data/c17.bench
//! cargo run --example fault_coverage            # built-in c17
//! ```

use seceda_netlist::{c17, parse_design_path, NetlistStats};
use seceda_sim::fault::stuck_at_universe;
use seceda_sim::{signal_probabilities, FaultSim};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let nl = match std::env::args().nth(1) {
        Some(path) => parse_design_path(&path)?,
        None => c17(),
    };
    let stats = NetlistStats::of(&nl);
    println!(
        "design {}: {} gates, {} inputs, {} outputs",
        nl.name(),
        stats.num_gates,
        stats.num_inputs,
        stats.num_outputs
    );
    if stats.num_dffs > 0 {
        println!("(sequential design: fault grading covers the combinational core)");
    }

    let faults = stuck_at_universe(&nl);
    let mut rng = StdRng::seed_from_u64(1);
    let patterns: Vec<Vec<bool>> = (0..256)
        .map(|_| (0..nl.inputs().len()).map(|_| rng.gen_bool(0.5)).collect())
        .collect();
    let sim = FaultSim::new(&nl)?;
    let (detected, coverage) = sim.coverage(&patterns, &faults);
    println!(
        "stuck-at coverage: {:.1}% of {} faults with {} random patterns",
        coverage * 100.0,
        faults.len(),
        patterns.len()
    );
    let undetected = detected.iter().filter(|&&d| !d).count();
    println!("undetected faults: {undetected}");

    let probs = signal_probabilities(&nl, 8, 2)?;
    let rare = probs
        .iter()
        .filter(|&&p| !(0.05..=0.95).contains(&p))
        .count();
    println!(
        "signal probabilities: {rare} of {} nets are rare (p outside [0.05, 0.95]) — Trojan trigger candidates",
        probs.len()
    );
    Ok(())
}
