//! Supply-chain security scenario: a design is locked against an
//! untrusted foundry, split-manufactured, screened for Trojans, and its
//! scan infrastructure hardened — every scheme evaluated against its
//! matching attack.
//!
//! ```sh
//! cargo run --example supply_chain
//! cargo run --example supply_chain -- path/to/design.bench
//! ```
//!
//! With a design file argument, section 1 (locking vs the SAT attack)
//! runs on the external design instead of the built-in c17.

use seceda_dft::{scan_attack_recover_key, scan_victim, secure_scan_wrap};
use seceda_layout::{
    lift_wires, place, proximity_attack, route, split_at, PlacementConfig, RouteConfig,
};
use seceda_lock::{output_corruption, sat_attack, sfll_hd0, xor_lock};
use seceda_netlist::{c17, parse_design_path, random_circuit, RandomCircuitConfig};
use seceda_trojan::{
    generate_mero_tests, insert_trojan, trigger_coverage, MeroConfig, TrojanConfig,
};

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== 1. logic locking vs the SAT attack ===");
    let nl = match std::env::args().nth(1) {
        Some(path) => {
            let parsed = parse_design_path(&path)?;
            println!(
                "external design {}: {} gates, {} inputs",
                parsed.name(),
                parsed.num_gates(),
                parsed.inputs().len()
            );
            parsed
        }
        None => c17(),
    };
    let xor = xor_lock(&nl, 8, 42);
    let corruption = output_corruption(&xor, 20, 20, 43);
    println!(
        "XOR locking, 8 key bits: avg output corruption {:.2}",
        corruption.avg_output_corruption
    );
    let oracle = |x: &[bool]| nl.evaluate(x);
    let attack = sat_attack(&xor, oracle)?.expect("key recovered");
    println!(
        "  -> SAT attack recovers a working key in {} oracle queries",
        attack.iterations
    );
    let protected: Vec<bool> = (0..nl.inputs().len()).map(|i| i % 2 == 0).collect();
    let sfll = sfll_hd0(&nl, &protected);
    let sfll_attack = sat_attack(&sfll, oracle)?.expect("key recovered");
    println!(
        "SFLL-HD0 resists: the attack needs {} queries (~2^inputs)",
        sfll_attack.iterations
    );

    println!("\n=== 2. split manufacturing vs the proximity attack ===");
    let host = random_circuit(&RandomCircuitConfig {
        num_gates: 120,
        num_inputs: 10,
        num_outputs: 6,
        ..RandomCircuitConfig::default()
    });
    let placement = place(&host, &PlacementConfig::default());
    let routed = route(&host, &placement, &RouteConfig::default());
    for split in [2u8, 3, 4, 5] {
        let view = split_at(&routed, split);
        let result = proximity_attack(&host, &view);
        println!(
            "  split at M{split}: {:>3} hidden wires, attacker CCR {:.2}",
            view.hidden.len(),
            result.ccr
        );
    }
    let hidden_nets: Vec<_> = split_at(&routed, 3)
        .hidden
        .iter()
        .map(|h| h.wire.net)
        .collect();
    let (lifted, cost) = lift_wires(&routed, &hidden_nets, 6);
    let lifted_ccr = proximity_attack(&host, &split_at(&lifted, 3)).ccr;
    println!("  wire lifting (cost {cost} via units): CCR drops to {lifted_ccr:.2}");

    println!("\n=== 3. Trojan insertion vs MERO test generation ===");
    let victim = random_circuit(&RandomCircuitConfig {
        num_gates: 150,
        num_inputs: 12,
        num_outputs: 6,
        with_xor: false,
        ..RandomCircuitConfig::default()
    });
    let trojan = insert_trojan(&victim, &TrojanConfig::default())?;
    println!(
        "inserted a {}-signal rare trigger (payload: {:?})",
        trojan.trigger.len(),
        trojan.payload
    );
    let tests = generate_mero_tests(&victim, &MeroConfig::default())?;
    let coverage = trigger_coverage(&victim, &tests, 2, 200, 7)?;
    println!(
        "MERO: {} patterns, {:.0}% coverage of sampled 2-node triggers",
        tests.patterns.len(),
        coverage * 100.0
    );
    let fired = tests.patterns.iter().any(|p| trojan.trigger_fires(p));
    println!("  -> the inserted Trojan is excited by the test set: {fired}");

    println!("\n=== 4. scan-chain attack vs secure scan ===");
    let key = 0x42u8;
    let chip = scan_victim(key);
    let recovered = scan_attack_recover_key(&chip, 0xA7);
    println!("plain scan chain: attacker recovers key {recovered:#04x} (true {key:#04x})");
    let secured = secure_scan_wrap(scan_victim(key), 0xBEEF);
    let inputs = seceda_netlist::u64_to_bits(0xA7, 8);
    let (_, state) = secured.capture(&vec![false; 8], &inputs);
    let scrambled = secured.dump_scrambled(&state, &inputs);
    println!(
        "secure scan: dump is keyed-scrambled ({} bits of noise to the attacker)",
        scrambled.len()
    );
    Ok(())
}
