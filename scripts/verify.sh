#!/usr/bin/env sh
# Tier-1 verification: build and test the workspace fully offline.
#
# The workspace has no external dependencies (see DESIGN.md §3), so
# --offline must always succeed — any network fetch is a regression.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo build --benches --offline"
cargo build --benches --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> verify OK"
