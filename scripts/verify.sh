#!/usr/bin/env sh
# Tier-1 verification: build and test the workspace fully offline.
#
# The workspace has no external dependencies (see DESIGN.md §3), so
# --offline must always succeed — any network fetch is a regression.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --offline -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo build --benches --offline"
cargo build --benches --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

# The chaos suite runs once per pinned seed with the harness
# ambient-armed: every injection decision is a pure function of
# (seed, point, salt), so both runs are reproducible bit for bit.
echo "==> chaos suite under two pinned ambient seeds"
SECEDA_CHAOS=0xDEADBEEF cargo test -q --offline -p seceda-core --test chaos
SECEDA_CHAOS=51966 cargo test -q --offline -p seceda-core --test chaos

echo "==> flow-trace example smoke run (release)"
SECEDA_TRACE=1 cargo run --release --offline --example flow-trace > /dev/null

echo "==> seceda_obs smoke: export + top on the flow-trace session"
cargo run --release --offline -p seceda-trace --bin seceda_obs -- \
    export "${CARGO_TARGET_DIR:-target}/flow_trace.jsonl" \
    -o "${CARGO_TARGET_DIR:-target}/flow_trace_chrome.json"
cargo run --release --offline -p seceda-trace --bin seceda_obs -- \
    top -n 5 "${CARGO_TARGET_DIR:-target}/flow_trace.jsonl" > /dev/null

echo "==> fault-sim bench smoke run (quick mode)"
SECEDA_BENCH_QUICK=1 cargo bench --offline --bench fault_sim > /dev/null

echo "==> BENCH_fault_sim.json passes schema validation"
cargo run --release --offline -p seceda-bench --bin check_json -- \
    "${CARGO_TARGET_DIR:-target}/BENCH_fault_sim.json"

echo "==> sat-attack bench smoke run (quick mode)"
SECEDA_BENCH_QUICK=1 cargo bench --offline --bench sat_attack > /dev/null

echo "==> BENCH_sat_attack.json passes schema validation"
cargo run --release --offline -p seceda-bench --bin check_json -- \
    "${CARGO_TARGET_DIR:-target}/BENCH_sat_attack.json"

echo "==> parse bench smoke run (quick mode)"
SECEDA_BENCH_QUICK=1 cargo bench --offline --bench parse > /dev/null

echo "==> BENCH_parse.json passes schema validation"
cargo run --release --offline -p seceda-bench --bin check_json -- \
    "${CARGO_TARGET_DIR:-target}/BENCH_parse.json"

echo "==> compose bench smoke run (quick mode)"
SECEDA_BENCH_QUICK=1 cargo bench --offline --bench compose > /dev/null

echo "==> BENCH_compose.json passes schema validation"
cargo run --release --offline -p seceda-bench --bin check_json -- \
    "${CARGO_TARGET_DIR:-target}/BENCH_compose.json"

# Perf-regression delta table vs the committed BENCH_baseline.json.
# Advisory by default (timings are machine-dependent); set
# SECEDA_BENCH_STRICT=1 on a dedicated perf runner to make it gate.
echo "==> bench_report vs BENCH_baseline.json (warn-only unless SECEDA_BENCH_STRICT=1)"
cargo run --release --offline -p seceda-bench --bin bench_report

# Opt-in scale test: parse + analyze a 10^6-gate design end to end.
if [ "${SECEDA_VERIFY_SCALE:-0}" != "0" ]; then
    echo "==> frontend scale smoke (10^6 gates, SECEDA_VERIFY_SCALE=1)"
    cargo test -q --release --offline -p seceda-sim \
        --test parse_differential -- --ignored
fi

echo "==> verify OK"
