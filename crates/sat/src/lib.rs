//! # seceda-sat
//!
//! A from-scratch CDCL SAT solver plus netlist-to-CNF encoding, built as
//! the reasoning substrate for the `seceda` toolkit.
//!
//! Verification-driven security schemes all reduce to satisfiability:
//! equivalence checking of locked/camouflaged logic, the oracle-guided
//! SAT attack on logic locking \[33\], SAT-based ATPG, and bounded model
//! checking. The paper (Sec. III-D) explicitly calls for EDA flows that
//! "mimic attackers leveraging satisfiability-based tools".
//!
//! * [`Solver`] — conflict-driven clause learning with two-watched
//!   literals, heap-ordered VSIDS activities, learned-clause database
//!   reduction, conflict-clause minimization, phase saving, Luby
//!   restarts, and incremental solving under assumptions with on-the-fly
//!   variable/clause addition;
//! * [`Portfolio`] — K heuristic-diversified solvers ([`SolverConfig`])
//!   racing each query with first-answer-wins cooperative cancellation
//!   and winner-to-siblings glue-clause sharing;
//! * [`Cnf`] / [`Lit`] / [`Var`] — formula representation;
//! * [`CnfBuilder`] — the clause-sink trait shared by [`Cnf`] and
//!   [`Solver`], so encodings can target a live solver incrementally;
//!   [`GatedCnf`] gates a clause group on a selector literal;
//! * [`encode`] — Tseitin encoding of netlists, miter construction, and
//!   selector-gated faulty-cone encoding for incremental ATPG;
//! * [`aig`] — structurally-hashed and-inverter graphs: netlists lower
//!   into a hash-consed AND/XOR node table (constant propagation,
//!   two-level XOR re-discovery), then to CNF through a persistent
//!   node→literal map, so repeated encodings of shared logic — the two
//!   keyed copies of a SAT-attack miter, the per-DIP observation
//!   circuits — emit each distinct cone exactly once.
//!
//! # Example
//!
//! ```
//! use seceda_sat::{Cnf, Solver, SatResult};
//!
//! let mut cnf = Cnf::new();
//! let a = cnf.new_var();
//! let b = cnf.new_var();
//! cnf.add_clause([a.pos(), b.pos()]);
//! cnf.add_clause([a.neg()]);
//! let mut solver = Solver::from_cnf(&cnf);
//! match solver.solve() {
//!     SatResult::Sat(model) => assert!(model[b.index()]),
//!     SatResult::Unsat => unreachable!(),
//! }
//! ```

pub mod aig;
pub mod encode;

mod budget;
mod cnf;
mod portfolio;
mod solver;

pub use aig::{encode_netlist_aig, lower_netlist_bound, Aig, AigCnf, AigLit};
pub use budget::{Budget, SolveOutcome, StopReason};
pub use cnf::{Cnf, CnfBuilder, GatedCnf, Lit, Var};
pub use encode::{
    encode_faulty_cone, encode_netlist, encode_netlist_bound, miter, NetlistEncoding, Signal,
};
pub use portfolio::Portfolio;
pub use solver::{SatResult, Solver, SolverConfig};
