//! Portfolio solving: K diversified CDCL solvers racing on one formula.
//!
//! Every member holds a full copy of the clause database (the
//! [`CnfBuilder`] impl broadcasts variables and clauses) but searches
//! with different heuristics — initial phases, restart cadence, VSIDS
//! decay, clause-diet aggressiveness ([`SolverConfig::portfolio_member`]).
//! A query races all members over [`seceda_testkit::par::par_map_mut`]
//! with a shared cancellation flag: the first member to answer raises
//! the flag, the rest stand down promptly, and the *lowest-index*
//! finished member is declared the winner (so the serial single-worker
//! schedule, where member 0 always runs first, is a fixed point). After
//! each race the winner's freshly learned glue clauses are imported into
//! the other members, so the portfolio's members converge on the hard
//! core of the formula instead of each rediscovering it.
//!
//! SAT/UNSAT answers are identical across members by construction (same
//! formula); *models* may differ, so callers needing run-to-run
//! determinism must canonicalize the model (as the SAT attack does with
//! its lex-min distinguishing inputs and keys).

use crate::budget::{Budget, SolveOutcome};
use crate::cnf::{CnfBuilder, Lit, Var};
use crate::solver::{SatResult, Solver, SolverConfig};
use seceda_testkit::par;
use std::sync::atomic::{AtomicBool, Ordering};

/// The default ceiling on portfolio size when sizing from the machine.
const MAX_DEFAULT_K: usize = 4;

/// K racing solvers behind one incremental [`CnfBuilder`] facade.
#[derive(Debug)]
pub struct Portfolio {
    members: Vec<Solver>,
    /// Per-member count of glue clauses already exported to siblings.
    glue_cursor: Vec<usize>,
    /// Sum over queries of the winning member's conflict delta (the
    /// portfolio-level analogue of [`Solver::num_conflicts`]).
    pub num_conflicts: u64,
    /// Winner index of the most recent query.
    last_winner: usize,
}

impl Portfolio {
    /// A portfolio of `k` members (at least 1) over `num_vars`
    /// variables, configured via [`SolverConfig::portfolio_member`].
    /// Member 0 always runs the default configuration, so `k = 1` is
    /// behaviourally identical to a plain [`Solver`].
    pub fn new(num_vars: usize, k: usize) -> Self {
        let k = k.max(1);
        Portfolio {
            members: (0..k)
                .map(|i| Solver::with_config(num_vars, SolverConfig::portfolio_member(i)))
                .collect(),
            glue_cursor: vec![0; k],
            num_conflicts: 0,
            last_winner: 0,
        }
    }

    /// Sizes the portfolio from the environment: `SECEDA_PORTFOLIO` if
    /// set, else the parallelism budget ([`par::max_workers`]) capped at
    /// 4 — racing more members than cores slows every member down.
    pub fn from_env(num_vars: usize) -> Self {
        let k = std::env::var("SECEDA_PORTFOLIO")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&k| k >= 1)
            .unwrap_or_else(|| par::max_workers().min(MAX_DEFAULT_K));
        Portfolio::new(num_vars, k)
    }

    /// Number of members.
    pub fn k(&self) -> usize {
        self.members.len()
    }

    /// Winner index of the most recent query (0 before any query).
    pub fn last_winner(&self) -> usize {
        self.last_winner
    }

    /// The primary member (index 0), for introspection.
    pub fn primary(&self) -> &Solver {
        &self.members[0]
    }

    /// Solves the formula.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under assumptions by racing every member; first answer
    /// wins, lowest index on simultaneous finishes. The winning member's
    /// conflict delta is added to [`Portfolio::num_conflicts`], and its
    /// new glue clauses are shared with the other members.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        if self.members.len() == 1 {
            let m = &mut self.members[0];
            let before = m.num_conflicts;
            let result = m.solve_with_assumptions(assumptions);
            self.num_conflicts += m.num_conflicts - before;
            self.last_winner = 0;
            return result;
        }
        let cancel = AtomicBool::new(false);
        let outcomes: Vec<Option<(SatResult, u64)>> =
            par::par_map_mut(&mut self.members, |_, solver| {
                let before = solver.num_conflicts;
                let result = solver.solve_with_assumptions_cancellable(assumptions, &cancel)?;
                cancel.store(true, Ordering::Relaxed);
                Some((result, solver.num_conflicts - before))
            });
        let (winner, (result, delta)) = outcomes
            .into_iter()
            .enumerate()
            .find_map(|(i, o)| o.map(|x| (i, x)))
            .expect("at least one member finishes: the flag-raiser");
        self.num_conflicts += delta;
        self.last_winner = winner;
        seceda_trace::counter("sat.portfolio_races", 1);
        let mut sp = seceda_trace::span("sat.portfolio_solve");
        sp.attr("sat.portfolio_winner", winner);
        sp.attr("k", self.members.len());
        self.share_winner_glue(winner);
        result
    }

    /// Races every member under `budget` (each member gets the full
    /// conflict/propagation allowance for its own lane; the deadline and
    /// cancel flag are shared — see [`Budget`]). The lowest-index member
    /// with a determined answer wins, exactly like
    /// [`Portfolio::solve_with_assumptions`]; if *every* member ran out
    /// of budget the call returns member 0's
    /// [`SolveOutcome::Indeterminate`] reason (deterministic for
    /// conflict/propagation budgets, since member 0's search is a pure
    /// function of the formula when no race cancellation fired).
    ///
    /// The ternary outcome (determined vs. indeterminate, and which
    /// determined answer) is independent of worker count and portfolio
    /// size for conflict/propagation budgets: the race flag is only
    /// raised *after* a determined answer exists, and all members agree
    /// on determined answers by construction.
    pub fn solve_budgeted(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        if self.members.len() == 1 {
            let m = &mut self.members[0];
            let before = m.num_conflicts;
            let outcome = m.solve_budgeted(assumptions, budget);
            self.num_conflicts += m.num_conflicts - before;
            self.last_winner = 0;
            return outcome;
        }
        let cancel = AtomicBool::new(false);
        let outcomes: Vec<(SolveOutcome, u64)> =
            par::par_map_mut(&mut self.members, |_, solver| {
                let before = solver.num_conflicts;
                let outcome = solver.solve_budgeted_raced(assumptions, budget, Some(&cancel));
                if outcome.is_determined() {
                    cancel.store(true, Ordering::Relaxed);
                }
                (outcome, solver.num_conflicts - before)
            });
        seceda_trace::counter("sat.portfolio_races", 1);
        let mut sp = seceda_trace::span("sat.portfolio_solve");
        sp.attr("k", self.members.len());
        match outcomes.iter().position(|(o, _)| o.is_determined()) {
            Some(winner) => {
                let (outcome, delta) = outcomes
                    .into_iter()
                    .nth(winner)
                    .expect("winner index in range");
                self.num_conflicts += delta;
                self.last_winner = winner;
                sp.attr("sat.portfolio_winner", winner);
                self.share_winner_glue(winner);
                outcome
            }
            None => {
                // every lane exhausted its budget: report member 0's
                // reason and its effort (no glue sharing — the members'
                // partial searches are schedule-dependent under a race)
                let (outcome, delta) = outcomes
                    .into_iter()
                    .next()
                    .expect("portfolio has at least one member");
                self.num_conflicts += delta;
                sp.attr("result", "indeterminate");
                outcome
            }
        }
    }

    /// Imports the winner's not-yet-shared glue clauses into every other
    /// member. Glue clauses are logical consequences of the shared
    /// formula, so importing them preserves equivalence of the members.
    fn share_winner_glue(&mut self, winner: usize) {
        let fresh = self.members[winner].export_glue(self.glue_cursor[winner]);
        self.glue_cursor[winner] = self.members[winner].num_glue();
        if fresh.is_empty() {
            return;
        }
        for (i, member) in self.members.iter_mut().enumerate() {
            if i == winner {
                continue;
            }
            for clause in &fresh {
                member.add_clause(clause.iter().copied());
            }
        }
        // imported clauses are problem clauses to the recipients; keep
        // every sibling cursor pointing at its own learned glue only
        seceda_trace::counter("sat.portfolio_shared_clauses", fresh.len() as u64);
    }
}

impl CnfBuilder for Portfolio {
    fn new_var(&mut self) -> Var {
        let mut vars = self.members.iter_mut().map(Solver::new_var);
        let v = vars.next().expect("at least one member");
        debug_assert!(vars.all(|w| w == v), "member variable spaces diverged");
        // non-debug builds still need the iterator driven
        for _ in vars {}
        v
    }

    fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for member in &mut self.members {
            member.add_clause(clause.iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;

    fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
        let mut cnf = Cnf::new();
        let mut grid = Vec::new();
        for _ in 0..pigeons {
            let row: Vec<Var> = (0..holes).map(|_| cnf.new_var()).collect();
            grid.push(row);
        }
        for row in &grid {
            cnf.add_clause(row.iter().map(|v| v.pos()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    cnf.add_clause([grid[p1][h].neg(), grid[p2][h].neg()]);
                }
            }
        }
        cnf
    }

    fn load(portfolio: &mut Portfolio, cnf: &Cnf) {
        for _ in 0..cnf.num_vars() {
            portfolio.new_var();
        }
        for clause in cnf.clauses() {
            portfolio.add_clause(clause.iter().copied());
        }
    }

    #[test]
    fn portfolio_agrees_with_single_solver_on_answers() {
        for workers in [1usize, 3] {
            par::with_workers(workers, || {
                let sat = pigeonhole(4, 4);
                let unsat = pigeonhole(5, 4);
                for (cnf, expect_sat) in [(&sat, true), (&unsat, false)] {
                    let mut p = Portfolio::new(0, 3);
                    load(&mut p, cnf);
                    let result = p.solve();
                    assert_eq!(result.is_sat(), expect_sat, "workers = {workers}");
                    if let SatResult::Sat(model) = result {
                        assert!(cnf.is_satisfied_by(&model));
                    }
                }
            });
        }
    }

    #[test]
    fn portfolio_of_one_matches_plain_solver_exactly() {
        let cnf = pigeonhole(5, 4);
        let mut p = Portfolio::new(0, 1);
        load(&mut p, &cnf);
        assert_eq!(p.solve(), SatResult::Unsat);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.solve(), SatResult::Unsat);
        // identical default config => identical search => identical stats
        assert_eq!(p.num_conflicts, s.num_conflicts);
    }

    #[test]
    fn members_diversify_but_agree_under_assumptions() {
        let mut cnf = Cnf::new();
        let vars = cnf.new_vars(6);
        for w in vars.windows(2) {
            cnf.add_clause([w[0].neg(), w[1].pos()]); // implication chain
        }
        let mut p = Portfolio::new(0, 4);
        load(&mut p, &cnf);
        assert!(p.solve_with_assumptions(&[vars[0].pos()]).is_sat());
        assert_eq!(
            p.solve_with_assumptions(&[vars[0].pos(), vars[5].neg()]),
            SatResult::Unsat
        );
        // still usable incrementally after a mixed history
        let extra = p.new_var();
        p.add_clause([extra.pos()]);
        assert!(p.solve().is_sat());
    }

    #[test]
    fn cancellable_solve_stops_when_flag_preraised() {
        let cnf = pigeonhole(7, 6); // hard enough to not finish instantly
        let mut s = Solver::from_cnf(&cnf);
        let flag = AtomicBool::new(true);
        // the flag is already raised: the solve must come back None
        // (promptly) instead of completing the full refutation
        assert_eq!(s.solve_with_assumptions_cancellable(&[], &flag), None);
        // and the solver remains usable and correct afterwards
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn conflict_accounting_sums_winner_deltas() {
        let cnf = pigeonhole(5, 4);
        let mut p = Portfolio::new(0, 2);
        load(&mut p, &cnf);
        let _ = p.solve();
        assert!(p.num_conflicts > 0);
        assert!(p.last_winner() < 2);
    }
}
