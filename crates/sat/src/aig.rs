//! Structurally-hashed AIG (and-inverter graph) intermediate form.
//!
//! Netlists lower into a node table of two-input ANDs and XORs with
//! complemented edges, built through a *structural hash*: every node
//! construction first canonicalizes its operands (constant folding,
//! absorption, operand ordering, complement normalization) and then
//! looks the shape up in a hash table, so structurally identical
//! subcircuits — whether inside one netlist copy or across many —
//! become one node. The hash is *two-level*: an AND of two complemented
//! ANDs whose children line up as `¬(p∧q) ∧ ¬(¬p∧¬q)` is recognized and
//! re-consed as the single node `XOR(p, q)`, so XOR structure built out
//! of raw ANDs and XOR structure lowered from explicit gates share.
//!
//! The payoff for the SAT attack: the two keyed circuit copies of the
//! miter share every subcircuit that does not depend on the key (they
//! read the same input nodes), and each is encoded to CNF exactly once.
//! [`AigCnf`] keeps a persistent node→literal map, so incremental
//! callers (the DIP loop) pay clauses only for nodes that are *new*
//! since the last lowering.

use crate::cnf::{CnfBuilder, Lit};
use seceda_netlist::{CellKind, Netlist, NetlistError};
use std::collections::HashMap;

/// An edge into the AIG: a node index plus a complement bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant-false edge (the reserved node 0, uncomplemented).
    pub const FALSE: AigLit = AigLit(0);
    /// The constant-true edge (the reserved node 0, complemented).
    pub const TRUE: AigLit = AigLit(1);

    fn new(node: u32, complement: bool) -> Self {
        AigLit(node << 1 | complement as u32)
    }

    /// Index of the node this edge points at.
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// `true` if the edge is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The constant edge for `b`.
    pub fn constant(b: bool) -> Self {
        if b {
            AigLit::TRUE
        } else {
            AigLit::FALSE
        }
    }

    /// The constant value of this edge, if it is one.
    pub fn as_const(self) -> Option<bool> {
        match self {
            AigLit::FALSE => Some(false),
            AigLit::TRUE => Some(true),
            _ => None,
        }
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;

    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

/// Node shapes. `Input` carries the external CNF literal the node
/// stands for; `And`/`Xor` hold canonically ordered operand edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    /// Reserved node 0: constant false.
    Const,
    /// An externally supplied literal (primary input, key bit, state).
    Input(Lit),
    And(AigLit, AigLit),
    Xor(AigLit, AigLit),
}

/// Hash-table key discriminants (the node shape after canonicalization).
const KIND_INPUT: u8 = 1;
const KIND_AND: u8 = 2;
const KIND_XOR: u8 = 3;

/// The structurally-hashed AIG node table.
///
/// Append-only: node indices are stable, so [`AigCnf`] maps can be kept
/// across many lowering calls.
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: HashMap<(u8, u32, u32), u32>,
    hash_hits: u64,
}

impl Aig {
    /// An empty AIG (just the constant node).
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::Const],
            strash: HashMap::new(),
            hash_hits: 0,
        }
    }

    /// Number of nodes in the table (including the constant node).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// How many node constructions were answered from the structural
    /// hash instead of allocating — the sharing the AIG discovered.
    pub fn hash_hits(&self) -> u64 {
        self.hash_hits
    }

    fn intern(&mut self, key: (u8, u32, u32), node: Node) -> u32 {
        if let Some(&n) = self.strash.get(&key) {
            self.hash_hits += 1;
            return n;
        }
        let n = u32::try_from(self.nodes.len()).expect("AIG node overflow");
        self.nodes.push(node);
        self.strash.insert(key, n);
        n
    }

    /// The input node carrying external literal `lit`. Complements
    /// normalize (`input(!l) == !input(l)`), so each variable gets one
    /// node.
    pub fn input(&mut self, lit: Lit) -> AigLit {
        let pos = lit.var().pos();
        let n = self.intern((KIND_INPUT, pos.code() as u32, 0), Node::Input(pos));
        AigLit::new(n, !lit.is_positive())
    }

    /// `a AND b`, canonicalized and hash-consed.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE || a == b {
            return b;
        }
        if b == AigLit::TRUE {
            return a;
        }
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        // two-level hash: ¬(p∧q) ∧ ¬(r∧s) with {r,s} = {¬p,¬q} is XOR(p,q)
        if a.is_complement() && b.is_complement() {
            if let (Node::And(p, q), Node::And(r, s)) = (self.nodes[a.node()], self.nodes[b.node()])
            {
                if (r == !p && s == !q) || (r == !q && s == !p) {
                    return self.xor(p, q);
                }
            }
        }
        AigLit::new(self.intern((KIND_AND, a.0, b.0), Node::And(a, b)), false)
    }

    /// `a OR b` via De Morgan.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// `a XOR b`, complement-normalized (signs migrate to the output
    /// edge) and hash-consed.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        if a == b {
            return AigLit::FALSE;
        }
        if a == !b {
            return AigLit::TRUE;
        }
        if let Some(c) = a.as_const() {
            return if c { !b } else { b };
        }
        if let Some(c) = b.as_const() {
            return if c { !a } else { a };
        }
        let out_neg = a.is_complement() ^ b.is_complement();
        let (a, b) = (
            AigLit::new(a.node() as u32, false),
            AigLit::new(b.node() as u32, false),
        );
        let (a, b) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        let n = self.intern((KIND_XOR, a.0, b.0), Node::Xor(a, b));
        AigLit::new(n, out_neg)
    }

    /// `s ? b : a` (the [`CellKind::Mux`] convention: select high picks
    /// the *second* data input), composed from AND/OR so the components
    /// hash-cons.
    pub fn mux(&mut self, s: AigLit, a: AigLit, b: AigLit) -> AigLit {
        let lo = self.and(!s, a);
        let hi = self.and(s, b);
        self.or(lo, hi)
    }

    /// n-ary AND fold.
    fn and_n(&mut self, ins: &[AigLit]) -> AigLit {
        ins.iter().fold(AigLit::TRUE, |acc, &l| self.and(acc, l))
    }

    /// n-ary OR fold.
    fn or_n(&mut self, ins: &[AigLit]) -> AigLit {
        ins.iter().fold(AigLit::FALSE, |acc, &l| self.or(acc, l))
    }

    /// n-ary XOR fold.
    fn xor_n(&mut self, ins: &[AigLit]) -> AigLit {
        ins.iter().fold(AigLit::FALSE, |acc, &l| self.xor(acc, l))
    }

    /// Lowers one gate function over already-lowered input edges.
    fn gate(&mut self, kind: CellKind, ins: &[AigLit]) -> AigLit {
        match kind {
            CellKind::Const0 => AigLit::FALSE,
            CellKind::Const1 => AigLit::TRUE,
            CellKind::Buf => ins[0],
            CellKind::Not => !ins[0],
            CellKind::And => self.and_n(ins),
            CellKind::Nand => !self.and_n(ins),
            CellKind::Or => self.or_n(ins),
            CellKind::Nor => !self.or_n(ins),
            CellKind::Xor => self.xor_n(ins),
            CellKind::Xnor => !self.xor_n(ins),
            CellKind::Mux => self.mux(ins[0], ins[1], ins[2]),
            CellKind::Dff => unreachable!("DFF outputs are pre-bound"),
        }
    }
}

/// Persistent node→literal map for lowering AIG edges to CNF.
///
/// Keep one alongside a long-lived [`Aig`] and a long-lived solver: each
/// [`AigCnf::lit_of`] call emits clauses only for nodes not yet lowered,
/// which is what makes repeated lowering through a shared AIG (the DIP
/// loop's observation copies) incremental.
#[derive(Debug, Clone)]
pub struct AigCnf {
    lits: Vec<Option<Lit>>,
    /// A literal false in every model, lowering the constant node.
    const_false: Lit,
}

impl AigCnf {
    /// A fresh map. `const_false` must be a literal the caller pinned
    /// false (one variable plus one unit clause, allocated once).
    pub fn new(const_false: Lit) -> Self {
        AigCnf {
            lits: Vec::new(),
            const_false,
        }
    }

    /// The CNF literal carrying edge `l`, emitting Tseitin clauses into
    /// `sink` for every not-yet-lowered node under it.
    pub fn lit_of<B: CnfBuilder>(&mut self, aig: &Aig, l: AigLit, sink: &mut B) -> Lit {
        if self.lits.len() < aig.nodes.len() {
            self.lits.resize(aig.nodes.len(), None);
        }
        let mut stack = vec![l.node()];
        while let Some(&n) = stack.last() {
            if self.lits[n].is_some() {
                stack.pop();
                continue;
            }
            match aig.nodes[n] {
                Node::Const => {
                    self.lits[n] = Some(self.const_false);
                    stack.pop();
                }
                Node::Input(lit) => {
                    self.lits[n] = Some(lit);
                    stack.pop();
                }
                Node::And(a, b) | Node::Xor(a, b) => {
                    let (la, lb) = (self.lits[a.node()], self.lits[b.node()]);
                    let (Some(la), Some(lb)) = (la, lb) else {
                        if la.is_none() {
                            stack.push(a.node());
                        }
                        if lb.is_none() {
                            stack.push(b.node());
                        }
                        continue;
                    };
                    let la = if a.is_complement() { !la } else { la };
                    let lb = if b.is_complement() { !lb } else { lb };
                    let y = sink.new_var().pos();
                    match aig.nodes[n] {
                        Node::And(..) => sink.gate_and(y, la, lb),
                        Node::Xor(..) => sink.gate_xor(y, la, lb),
                        _ => unreachable!(),
                    }
                    self.lits[n] = Some(y);
                    stack.pop();
                }
            }
        }
        let lit = self.lits[l.node()].expect("just lowered");
        if l.is_complement() {
            !lit
        } else {
            lit
        }
    }

    /// How many nodes have been lowered to CNF so far.
    pub fn num_lowered(&self) -> usize {
        self.lits.iter().filter(|l| l.is_some()).count()
    }
}

/// Lowers the combinational logic of `nl` into `aig` under *bound
/// inputs*: `bindings[k]` is the AIG edge driving primary input *k*
/// (a constant, an [`Aig::input`] node, or any internal edge). DFF
/// outputs become fresh free variables allocated from `sink`, exactly
/// as in [`crate::encode_netlist_bound`].
///
/// Returns one edge per primary output, in port order; lower them with
/// [`AigCnf::lit_of`] when (and only when) they are needed as literals.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] on cyclic logic.
///
/// # Panics
///
/// Panics unless exactly one binding per primary input is given.
pub fn lower_netlist_bound<B: CnfBuilder>(
    nl: &Netlist,
    aig: &mut Aig,
    bindings: &[AigLit],
    sink: &mut B,
) -> Result<Vec<AigLit>, NetlistError> {
    assert_eq!(
        bindings.len(),
        nl.inputs().len(),
        "one binding per primary input"
    );
    let order = nl.topo_order()?;
    let mut vals: Vec<Option<AigLit>> = vec![None; nl.num_nets()];
    for (k, &pi) in nl.inputs().iter().enumerate() {
        vals[pi.index()] = Some(bindings[k]);
    }
    for d in nl.dffs() {
        let out = nl.gate(d).output;
        let free = sink.new_var().pos();
        vals[out.index()] = Some(aig.input(free));
    }
    let mut ins: Vec<AigLit> = Vec::new();
    for gid in order {
        let g = nl.gate(gid);
        ins.clear();
        ins.extend(
            g.inputs
                .iter()
                .map(|&i| vals[i.index()].expect("topological order")),
        );
        vals[g.output.index()] = Some(aig.gate(g.kind, &ins));
    }
    Ok(nl
        .outputs()
        .iter()
        .map(|&(n, _)| vals[n.index()].expect("outputs are driven"))
        .collect())
}

/// AIG-backed variant of [`crate::encode_netlist`]: allocates one fresh
/// variable per primary input, lowers the netlist through `aig`, and
/// emits CNF for every output cone. Returns the input variables (in
/// port order) and one output literal per primary output.
///
/// Unlike the direct encoder, internal nets shared between calls (the
/// same subcircuit lowered twice, even from different netlists) cost
/// clauses once.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] on cyclic logic.
#[allow(clippy::type_complexity)]
pub fn encode_netlist_aig<B: CnfBuilder>(
    nl: &Netlist,
    aig: &mut Aig,
    map: &mut AigCnf,
    sink: &mut B,
) -> Result<(Vec<crate::cnf::Var>, Vec<Lit>), NetlistError> {
    let input_vars: Vec<crate::cnf::Var> = (0..nl.inputs().len()).map(|_| sink.new_var()).collect();
    let bindings: Vec<AigLit> = input_vars.iter().map(|v| aig.input(v.pos())).collect();
    let outs = lower_netlist_bound(nl, aig, &bindings, sink)?;
    let out_lits = outs.iter().map(|&o| map.lit_of(aig, o, sink)).collect();
    Ok((input_vars, out_lits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;
    use crate::solver::{SatResult, Solver};
    use seceda_netlist::{c17, majority, random_circuit, RandomCircuitConfig};

    fn fresh(cnf: &mut Cnf) -> (Lit, AigCnf) {
        let cf = cnf.new_var().pos();
        cnf.add_clause([!cf]);
        (cf, AigCnf::new(cf))
    }

    #[test]
    fn constant_folding_and_absorption() {
        let mut aig = Aig::new();
        let mut cnf = Cnf::new();
        let a = aig.input(cnf.new_var().pos());
        assert_eq!(aig.and(AigLit::FALSE, a), AigLit::FALSE);
        assert_eq!(aig.and(AigLit::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), AigLit::FALSE);
        assert_eq!(aig.or(a, AigLit::TRUE), AigLit::TRUE);
        assert_eq!(aig.xor(a, a), AigLit::FALSE);
        assert_eq!(aig.xor(a, !a), AigLit::TRUE);
        assert_eq!(aig.xor(a, AigLit::FALSE), a);
        assert_eq!(aig.xor(a, AigLit::TRUE), !a);
    }

    #[test]
    fn structural_hash_shares_nodes() {
        let mut aig = Aig::new();
        let mut cnf = Cnf::new();
        let a = aig.input(cnf.new_var().pos());
        let b = aig.input(cnf.new_var().pos());
        let n1 = aig.and(a, b);
        let n2 = aig.and(b, a); // operand order canonicalizes
        assert_eq!(n1, n2);
        assert_eq!(aig.hash_hits(), 1);
        let x1 = aig.xor(a, !b);
        let x2 = aig.xor(!a, b); // complements migrate to the edge
        assert_eq!(x1, x2);
    }

    #[test]
    fn two_level_hash_recognizes_xor_from_ands() {
        let mut aig = Aig::new();
        let mut cnf = Cnf::new();
        let a = aig.input(cnf.new_var().pos());
        let b = aig.input(cnf.new_var().pos());
        let explicit = aig.xor(a, b);
        // (a OR b) AND NOT(a AND b) == ¬(¬a∧¬b) ∧ ¬(a∧b)
        let n_or = aig.or(a, b);
        let n_and = aig.and(a, b);
        let built = aig.and(n_or, !n_and);
        assert_eq!(built, explicit, "AND-built XOR must cons to the XOR node");
    }

    #[test]
    fn input_complement_normalizes() {
        let mut aig = Aig::new();
        let mut cnf = Cnf::new();
        let v = cnf.new_var();
        assert_eq!(aig.input(v.neg()), !aig.input(v.pos()));
        assert_eq!(aig.num_nodes(), 2); // const + one input node
    }

    /// Every model of the AIG-encoded circuit matches simulation.
    fn check_aig_encoding(nl: &Netlist) {
        let mut cnf = Cnf::new();
        let (_cf, mut map) = fresh(&mut cnf);
        let mut aig = Aig::new();
        let (in_vars, out_lits) =
            encode_netlist_aig(nl, &mut aig, &mut map, &mut cnf).expect("encode");
        let n = nl.inputs().len();
        for pattern in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|b| (pattern >> b) & 1 == 1).collect();
            let assumptions: Vec<Lit> = in_vars
                .iter()
                .zip(&inputs)
                .map(|(&v, &b)| v.lit(b))
                .collect();
            let mut solver = Solver::from_cnf(&cnf);
            match solver.solve_with_assumptions(&assumptions) {
                SatResult::Sat(model) => {
                    let expected = nl.evaluate(&inputs);
                    for (k, &ol) in out_lits.iter().enumerate() {
                        assert_eq!(
                            ol.eval(model[ol.var().index()]),
                            expected[k],
                            "pattern {pattern} output {k}"
                        );
                    }
                }
                SatResult::Unsat => panic!("AIG encoding unsat under concrete inputs"),
            }
        }
    }

    #[test]
    fn aig_encoding_matches_simulation_on_c17_and_majority() {
        check_aig_encoding(&c17());
        check_aig_encoding(&majority());
    }

    #[test]
    fn aig_encoding_matches_simulation_on_random_circuits() {
        for seed in [2u64, 7, 23] {
            let nl = random_circuit(&RandomCircuitConfig {
                num_inputs: 5,
                num_gates: 40,
                num_outputs: 3,
                with_xor: true,
                seed,
            });
            check_aig_encoding(&nl);
        }
    }

    #[test]
    fn two_copies_share_every_non_key_node() {
        // lowering the same netlist twice over the same input nodes
        // must not allocate a single new node the second time
        let nl = c17();
        let mut cnf = Cnf::new();
        let mut aig = Aig::new();
        let ins: Vec<AigLit> = (0..5)
            .map(|_| {
                let v = cnf.new_var();
                aig.input(v.pos())
            })
            .collect();
        let o1 = lower_netlist_bound(&nl, &mut aig, &ins, &mut cnf).expect("lower");
        let nodes_after_first = aig.num_nodes();
        let o2 = lower_netlist_bound(&nl, &mut aig, &ins, &mut cnf).expect("lower");
        assert_eq!(aig.num_nodes(), nodes_after_first, "second copy is free");
        assert_eq!(o1, o2);
    }

    #[test]
    fn incremental_lowering_emits_each_node_once() {
        let mut cnf = Cnf::new();
        let (_cf, mut map) = fresh(&mut cnf);
        let mut aig = Aig::new();
        let a = aig.input(cnf.new_var().pos());
        let b = aig.input(cnf.new_var().pos());
        let ab = aig.and(a, b);
        map.lit_of(&aig, ab, &mut cnf);
        let clauses_after = cnf.clauses().len();
        // same node again: no new clauses, same literal
        let l1 = map.lit_of(&aig, ab, &mut cnf);
        let l2 = map.lit_of(&aig, !ab, &mut cnf);
        assert_eq!(cnf.clauses().len(), clauses_after);
        assert_eq!(l1, !l2);
        // a superstructure pays only for the new node
        let c = aig.input(cnf.new_var().pos());
        let abc = aig.and(ab, c);
        map.lit_of(&aig, abc, &mut cnf);
        assert_eq!(
            cnf.clauses().len(),
            clauses_after + 3,
            "one AND = 3 clauses"
        );
    }

    #[test]
    fn folded_constants_cost_nothing() {
        // all-constant bindings collapse to constant edges: no nodes
        // beyond inputs, no clauses
        let nl = c17();
        let mut cnf = Cnf::new();
        let (_cf, _map) = fresh(&mut cnf);
        let mut aig = Aig::new();
        let n = nl.inputs().len();
        for pattern in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|b| (pattern >> b) & 1 == 1).collect();
            let bindings: Vec<AigLit> = inputs.iter().map(|&b| AigLit::constant(b)).collect();
            let before = aig.num_nodes();
            let outs = lower_netlist_bound(&nl, &mut aig, &bindings, &mut cnf).expect("lower");
            assert_eq!(
                aig.num_nodes(),
                before,
                "constant lowering allocates nothing"
            );
            let expected = nl.evaluate(&inputs);
            for (k, o) in outs.iter().enumerate() {
                assert_eq!(o.as_const(), Some(expected[k]), "pattern {pattern} out {k}");
            }
        }
    }
}
