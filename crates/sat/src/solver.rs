//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! Feature set: two-watched-literal propagation, first-UIP conflict
//! analysis with non-chronological backtracking, VSIDS-style variable
//! activities, phase saving, Luby restarts, and incremental solving
//! under assumptions. Clause deletion is deliberately omitted — the
//! instances produced by the toolkit (miters and locking attacks on
//! circuits with a few thousand gates) stay comfortably in memory.

use crate::cnf::{Cnf, Lit, Var};

/// Result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment, indexed by [`Var::index`].
    Sat(Vec<bool>),
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }

    /// `true` if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

const UNASSIGNED: i8 = -1;
const NO_REASON: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

/// The CDCL solver.
///
/// # Example
///
/// ```
/// use seceda_sat::{Cnf, Solver};
///
/// let mut cnf = Cnf::new();
/// let a = cnf.new_var();
/// cnf.add_clause([a.pos()]);
/// cnf.add_clause([a.neg()]);
/// assert!(!Solver::from_cnf(&cnf).solve().is_sat());
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[l.code()]`: indices of clauses in which literal `l` is one
    /// of the two watched literals.
    watches: Vec<Vec<u32>>,
    assign: Vec<i8>, // -1 unassigned / 0 false / 1 true
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    saved_phase: Vec<bool>,
    seen: Vec<bool>,
    unsat: bool,
    /// Statistics: total conflicts encountered.
    pub num_conflicts: u64,
    /// Statistics: total decisions taken.
    pub num_decisions: u64,
    /// Statistics: total literals propagated.
    pub num_propagations: u64,
    /// Statistics: total restarts performed.
    pub num_restarts: u64,
}

impl Solver {
    /// Creates a solver over `num_vars` variables and no clauses.
    pub fn new(num_vars: usize) -> Self {
        Solver {
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            assign: vec![UNASSIGNED; num_vars],
            level: vec![0; num_vars],
            reason: vec![NO_REASON; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            saved_phase: vec![false; num_vars],
            seen: vec![false; num_vars],
            unsat: false,
            num_conflicts: 0,
            num_decisions: 0,
            num_propagations: 0,
            num_restarts: 0,
        }
    }

    /// Builds a solver preloaded with the clauses of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = Solver::new(cnf.num_vars());
        for clause in cnf.clauses() {
            s.add_clause(clause.iter().copied());
        }
        s
    }

    /// Allocates a fresh variable (for incremental encodings).
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assign.len());
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    fn value_lit(&self, l: Lit) -> i8 {
        match self.assign[l.var().index()] {
            UNASSIGNED => UNASSIGNED,
            v => i8::from((v == 1) == l.is_positive()),
        }
    }

    /// Adds a clause. May be called between [`Solver::solve`] calls; the
    /// solver backtracks to the root level first.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unknown variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.backtrack(0);
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(l.var().index() < self.num_vars(), "literal out of range");
        }
        clause.sort_unstable();
        clause.dedup();
        if clause.windows(2).any(|w| w[0] == !w[1]) {
            return; // tautology
        }
        if clause.iter().any(|&l| self.value_lit(l) == 1) {
            return; // satisfied at root level
        }
        clause.retain(|&l| self.value_lit(l) != 0); // drop root-false lits
        match clause.len() {
            0 => self.unsat = true,
            1 => {
                self.enqueue(clause[0], NO_REASON);
                if self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[clause[0].code()].push(idx);
                self.watches[clause[1].code()].push(idx);
                self.clauses.push(Clause { lits: clause });
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.value_lit(l), UNASSIGNED);
        let v = l.var().index();
        self.assign[v] = l.is_positive() as i8;
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.saved_phase[v] = l.is_positive();
        self.trail.push(l);
        self.num_propagations += 1;
    }

    /// Propagates all pending assignments; returns a conflicting clause
    /// index on conflict.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p; // literal that just became false
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut conflict = None;
            while i < watch_list.len() {
                let ci = watch_list[i];
                match self.visit_clause(ci, false_lit) {
                    VisitOutcome::Keep => i += 1,
                    VisitOutcome::Moved => {
                        watch_list.swap_remove(i);
                    }
                    VisitOutcome::Conflict => {
                        conflict = Some(ci);
                        break;
                    }
                }
            }
            self.watches[false_lit.code()] = watch_list;
            if conflict.is_some() {
                // flush the propagation queue so the trail stays coherent
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn visit_clause(&mut self, ci: u32, false_lit: Lit) -> VisitOutcome {
        // ensure the false watch sits at position 1
        {
            let c = &mut self.clauses[ci as usize].lits;
            if c[0] == false_lit {
                c.swap(0, 1);
            }
        }
        let first = self.clauses[ci as usize].lits[0];
        if self.value_lit(first) == 1 {
            return VisitOutcome::Keep;
        }
        let len = self.clauses[ci as usize].lits.len();
        for k in 2..len {
            let lk = self.clauses[ci as usize].lits[k];
            if self.value_lit(lk) != 0 {
                let c = &mut self.clauses[ci as usize].lits;
                c.swap(1, k);
                let new_watch = c[1];
                self.watches[new_watch.code()].push(ci);
                return VisitOutcome::Moved;
            }
        }
        if self.value_lit(first) == 0 {
            VisitOutcome::Conflict
        } else {
            self.enqueue(first, ci);
            VisitOutcome::Keep
        }
    }

    fn backtrack(&mut self, target_level: usize) {
        if self.trail_lim.len() <= target_level {
            return;
        }
        let lim = self.trail_lim[target_level];
        while self.trail.len() > lim {
            let l = self.trail.pop().expect("trail non-empty");
            let v = l.var().index();
            self.assign[v] = UNASSIGNED;
            self.reason[v] = NO_REASON;
        }
        self.trail_lim.truncate(target_level);
        self.qhead = self.trail.len();
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns `(learned clause, backtrack
    /// level)` with the asserting literal at position 0.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, usize) {
        let current = self.trail_lim.len() as u32;
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut index = self.trail.len();
        let mut p: Option<Lit> = None;
        let mut reason_clause = confl;
        loop {
            // For reason clauses, lits[0] is the literal that was asserted
            // (p); skip it. For the initial conflict clause take all.
            let start = usize::from(p.is_some());
            for j in start..self.clauses[reason_clause as usize].lits.len() {
                let q = self.clauses[reason_clause as usize].lits[j];
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // walk the trail backwards to the next marked literal
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                break;
            }
            reason_clause = self.reason[v];
            debug_assert_ne!(reason_clause, NO_REASON, "non-UIP literal lacks reason");
        }
        let uip = !p.expect("1-UIP literal");
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        // backtrack to the second-highest decision level in the clause
        let mut bt = 0usize;
        let mut max_idx = 0usize;
        for (i, l) in learnt.iter().enumerate() {
            let lv = self.level[l.var().index()] as usize;
            if lv > bt {
                bt = lv;
                max_idx = i;
            }
        }
        if !learnt.is_empty() {
            learnt.swap(0, max_idx);
        }
        let mut clause = Vec::with_capacity(learnt.len() + 1);
        clause.push(uip);
        clause.extend(learnt);
        (clause, bt)
    }

    /// Installs a learned clause; returns its index if it is non-unit.
    fn learn(&mut self, clause: &[Lit]) -> u32 {
        if clause.len() < 2 {
            return NO_REASON;
        }
        let idx = self.clauses.len() as u32;
        self.watches[clause[0].code()].push(idx);
        self.watches[clause[1].code()].push(idx);
        self.clauses.push(Clause {
            lits: clause.to_vec(),
        });
        idx
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<usize> = None;
        let mut best_act = f64::NEG_INFINITY;
        for v in 0..self.num_vars() {
            if self.assign[v] == UNASSIGNED && self.activity[v] > best_act {
                best_act = self.activity[v];
                best = Some(v);
            }
        }
        best.map(|v| Var::from_index(v).lit(self.saved_phase[v]))
    }

    /// Solves the formula.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumptions (literals forced true for this
    /// call only). The solver can be reused afterwards with different
    /// assumptions or additional clauses.
    ///
    /// Each call emits one `sat.solve` trace span plus per-call deltas of
    /// the decision/propagation/conflict/restart statistics.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        let mut sp = seceda_trace::span("sat.solve");
        sp.attr("vars", self.num_vars());
        sp.attr("clauses", self.clauses.len());
        sp.attr("assumptions", assumptions.len());
        let (d0, p0, c0, r0) = (
            self.num_decisions,
            self.num_propagations,
            self.num_conflicts,
            self.num_restarts,
        );
        let result = self.solve_inner(assumptions);
        seceda_trace::counter("sat.decisions", self.num_decisions - d0);
        seceda_trace::counter("sat.propagations", self.num_propagations - p0);
        seceda_trace::counter("sat.conflicts", self.num_conflicts - c0);
        seceda_trace::counter("sat.restarts", self.num_restarts - r0);
        sp.attr("result", if result.is_sat() { "sat" } else { "unsat" });
        result
    }

    fn solve_inner(&mut self, assumptions: &[Lit]) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        for a in assumptions {
            assert!(a.var().index() < self.num_vars(), "assumption out of range");
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        let mut restart_count = 0u32;
        let mut conflicts_until_restart = 64 * luby(restart_count);
        loop {
            match self.propagate() {
                Some(confl) => {
                    self.num_conflicts += 1;
                    if self.trail_lim.is_empty() {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                    let (clause, bt) = self.analyze(confl);
                    self.backtrack(bt);
                    let asserting = clause[0];
                    let reason = self.learn(&clause);
                    debug_assert_eq!(self.value_lit(asserting), UNASSIGNED);
                    self.enqueue(asserting, reason);
                    self.var_inc /= 0.95;
                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                    if conflicts_until_restart == 0 {
                        restart_count += 1;
                        self.num_restarts += 1;
                        conflicts_until_restart = 64 * luby(restart_count);
                        self.backtrack(0);
                    }
                }
                None => {
                    // place assumptions as pseudo-decisions first
                    if self.trail_lim.len() < assumptions.len() {
                        let a = assumptions[self.trail_lim.len()];
                        match self.value_lit(a) {
                            1 => self.trail_lim.push(self.trail.len()),
                            0 => {
                                self.backtrack(0);
                                return SatResult::Unsat;
                            }
                            _ => {
                                self.trail_lim.push(self.trail.len());
                                self.enqueue(a, NO_REASON);
                            }
                        }
                        continue;
                    }
                    match self.decide() {
                        None => {
                            let model: Vec<bool> = self.assign.iter().map(|&v| v == 1).collect();
                            self.backtrack(0);
                            return SatResult::Sat(model);
                        }
                        Some(d) => {
                            self.num_decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(d, NO_REASON);
                        }
                    }
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VisitOutcome {
    Keep,
    Moved,
    Conflict,
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...).
fn luby(i: u32) -> u64 {
    // find k with 2^k - 1 > i, i.e. the subsequence containing i
    let mut i = i as u64 + 1;
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    loop {
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
        k = 1;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;

    #[test]
    fn trivial_sat() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.pos(), b.pos()]);
        cnf.add_clause([a.neg(), b.pos()]);
        let result = Solver::from_cnf(&cnf).solve();
        let model = result.model().expect("sat");
        assert!(model[b.index()]);
    }

    #[test]
    fn trivial_unsat() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause([a.pos()]);
        cnf.add_clause([a.neg()]);
        assert_eq!(Solver::from_cnf(&cnf).solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = Cnf::new();
        assert!(Solver::from_cnf(&cnf).solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        let _ = cnf.new_var();
        cnf.add_clause([]);
        assert_eq!(Solver::from_cnf(&cnf).solve(), SatResult::Unsat);
    }

    /// Pigeonhole PHP(n+1, n): n+1 pigeons in n holes — UNSAT and forces
    /// real conflict analysis.
    fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
        let mut cnf = Cnf::new();
        let mut grid = Vec::new();
        for _ in 0..pigeons {
            let row: Vec<Var> = (0..holes).map(|_| cnf.new_var()).collect();
            grid.push(row);
        }
        for row in &grid {
            cnf.add_clause(row.iter().map(|v| v.pos()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    cnf.add_clause([grid[p1][h].neg(), grid[p2][h].neg()]);
                }
            }
        }
        cnf
    }

    #[test]
    fn pigeonhole_unsat() {
        for n in 2..=5 {
            let cnf = pigeonhole(n + 1, n);
            assert_eq!(
                Solver::from_cnf(&cnf).solve(),
                SatResult::Unsat,
                "PHP({}, {n})",
                n + 1
            );
        }
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let cnf = pigeonhole(4, 4);
        let result = Solver::from_cnf(&cnf).solve();
        let model = result.model().expect("sat");
        assert!(cnf.is_satisfied_by(model));
    }

    #[test]
    fn assumptions_flip_result() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.pos(), b.pos()]);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve_with_assumptions(&[a.neg(), b.pos()]).is_sat());
        assert_eq!(
            solver.solve_with_assumptions(&[a.neg(), b.neg()]),
            SatResult::Unsat
        );
        // solver remains usable
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn incremental_clause_addition() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.pos(), b.pos()]);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve().is_sat());
        solver.add_clause([a.neg()]);
        assert!(solver.solve().is_sat());
        solver.add_clause([b.neg()]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use seceda_testkit::rng::{Rng, SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(99);
        for iter in 0..80 {
            let nv = rng.gen_range(3..10usize);
            let nc = rng.gen_range(1..45usize);
            let mut cnf = Cnf::new();
            let vars = cnf.new_vars(nv);
            for _ in 0..nc {
                let lits: Vec<Lit> = (0..3)
                    .map(|_| vars[rng.gen_range(0..nv)].lit(rng.gen_bool(0.5)))
                    .collect();
                cnf.add_clause(lits);
            }
            let brute_sat = (0..(1u32 << nv)).any(|m| {
                let model: Vec<bool> = (0..nv).map(|i| (m >> i) & 1 == 1).collect();
                cnf.is_satisfied_by(&model)
            });
            let result = Solver::from_cnf(&cnf).solve();
            assert_eq!(result.is_sat(), brute_sat, "iteration {iter}");
            if let SatResult::Sat(model) = result {
                assert!(cnf.is_satisfied_by(&model), "iteration {iter} bad model");
            }
        }
    }

    #[test]
    fn assumptions_agree_with_unit_clauses() {
        use seceda_testkit::rng::{Rng, SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(1234);
        for iter in 0..40 {
            let nv = rng.gen_range(4..9usize);
            let nc = rng.gen_range(5..30usize);
            let mut cnf = Cnf::new();
            let vars = cnf.new_vars(nv);
            for _ in 0..nc {
                let lits: Vec<Lit> = (0..3)
                    .map(|_| vars[rng.gen_range(0..nv)].lit(rng.gen_bool(0.5)))
                    .collect();
                cnf.add_clause(lits);
            }
            let assumps: Vec<Lit> = (0..rng.gen_range(1..=3))
                .map(|_| vars[rng.gen_range(0..nv)].lit(rng.gen_bool(0.5)))
                .collect();
            let via_assumptions = Solver::from_cnf(&cnf)
                .solve_with_assumptions(&assumps)
                .is_sat();
            let mut cnf2 = cnf.clone();
            for &a in &assumps {
                cnf2.add_clause([a]);
            }
            let via_units = Solver::from_cnf(&cnf2).solve().is_sat();
            assert_eq!(via_assumptions, via_units, "iteration {iter}");
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u32), e, "luby({i})");
        }
    }

    #[test]
    fn statistics_accumulate() {
        let cnf = pigeonhole(5, 4);
        let mut solver = Solver::from_cnf(&cnf);
        let _ = solver.solve();
        assert!(solver.num_conflicts > 0);
        assert!(solver.num_propagations > 0);
    }
}
