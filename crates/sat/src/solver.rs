//! Conflict-driven clause-learning (CDCL) SAT solver.
//!
//! Feature set: two-watched-literal propagation with blocking literals,
//! first-UIP conflict analysis with self-subsumption clause minimization
//! and non-chronological backtracking, heap-ordered VSIDS decisions,
//! phase saving, Luby restarts, learned-clause database reduction (LBD +
//! clause activities, glue clauses kept), incremental solving under
//! assumptions with on-the-fly variable/clause addition, cooperative
//! cancellation (for portfolio racing), and tunable search heuristics
//! via [`SolverConfig`].

use crate::budget::{Budget, SolveOutcome, StopReason};
use crate::cnf::{Cnf, CnfBuilder, Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Fully resolved per-call limits: absolute targets computed from a
/// [`Budget`]'s relative caps at solve entry, plus up to two cancel
/// flags (the budget's own and the portfolio race flag).
struct Limits<'a> {
    /// Stop once `num_conflicts` reaches this (absolute, not a delta).
    conflict_target: u64,
    /// Stop once `num_propagations` reaches this (absolute).
    prop_target: u64,
    deadline: Option<Instant>,
    cancel: Option<&'a AtomicBool>,
    race: Option<&'a AtomicBool>,
}

impl Limits<'_> {
    /// The cheap poll run every [`CANCEL_POLL_MASK`]` + 1` propagations.
    fn check_poll(&self, propagations: u64) -> Option<StopReason> {
        if let Some(flag) = self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(flag) = self.race {
            if flag.load(Ordering::Relaxed) {
                return Some(StopReason::Cancelled);
            }
        }
        if propagations >= self.prop_target {
            return Some(StopReason::Propagations);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::Deadline);
            }
        }
        None
    }

    /// Checked once at solve entry, so an already-spent budget (a
    /// `Budget::minus` remainder with nothing left, or a passed
    /// deadline) stops deterministically *before* any search — even on
    /// formulas small enough that no in-search poll would ever fire.
    fn check_entry(&self, conflicts: u64, propagations: u64) -> Option<StopReason> {
        if conflicts >= self.conflict_target {
            return Some(StopReason::Conflicts);
        }
        self.check_poll(propagations)
    }
}

/// Result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment, indexed by [`Var::index`].
    Sat(Vec<bool>),
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SatResult::Sat(m) => Some(m),
            SatResult::Unsat => None,
        }
    }

    /// `true` if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

const UNASSIGNED: i8 = -1;
const NO_REASON: u32 = u32::MAX;
/// Learned clauses with LBD at or below this are "glue" and never deleted.
const GLUE_LBD: u32 = 2;
/// Cancellation flag poll cadence in propagated literals (power of two).
const CANCEL_POLL_MASK: u64 = 0x3FF;

/// Tunable search heuristics, the axis a portfolio diversifies over.
///
/// [`SolverConfig::default`] reproduces the solver's historical
/// behaviour bit-for-bit (all-false initial phases, Luby base 64, VSIDS
/// decay 0.95, 1.2× reduction growth), so a default-configured solver is
/// a drop-in for every pinned differential test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Seed for initial saved phases: `0` means all-false (the
    /// historical default); any other value assigns each variable a
    /// pseudorandom initial phase.
    pub phase_seed: u64,
    /// Conflicts-per-restart multiplier on the Luby sequence.
    pub restart_base: u64,
    /// VSIDS activity decay (`var_inc /= var_decay` per conflict).
    pub var_decay: f64,
    /// Growth factor of the learned-clause budget after each reduction.
    pub reduce_growth: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            phase_seed: 0,
            restart_base: 64,
            var_decay: 0.95,
            reduce_growth: 1.2,
        }
    }
}

impl SolverConfig {
    /// The portfolio preset for member `i`: member 0 is always the
    /// default configuration (so a 1-member portfolio degenerates to the
    /// plain solver), later members diversify phases, restart cadence,
    /// activity decay, and clause-diet aggressiveness.
    pub fn portfolio_member(i: usize) -> Self {
        let d = SolverConfig::default();
        match i % 4 {
            0 => d,
            1 => SolverConfig {
                // random phases + rapid restarts: a scout for easy models
                phase_seed: 0x9E37_79B9_7F4A_7C15 ^ (i as u64),
                restart_base: 16,
                ..d
            },
            2 => SolverConfig {
                // slow restarts + slow decay: deep-dive for hard proofs
                restart_base: 256,
                var_decay: 0.99,
                ..d
            },
            _ => SolverConfig {
                // random phases + aggressive clause diet
                phase_seed: 0xD134_2543_DE82_EF95 ^ (i as u64),
                var_decay: 0.90,
                reduce_growth: 1.1,
                ..d
            },
        }
    }
}

/// splitmix64, for seeding per-variable initial phases.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
    lbd: u32,
    activity: f64,
}

/// A watch-list entry: the clause index plus a *blocking literal* — some
/// other literal of the clause (usually the other watch). If the blocker
/// is already true the clause is satisfied and propagation skips the
/// clause body entirely, avoiding the cache miss on `Clause::lits`.
#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

/// Indexed binary max-heap over variable activities.
///
/// Ordering: higher activity first, lowest variable index on ties — the
/// same variable a linear argmax scan would pick. Assigned variables are
/// removed lazily (skipped at pop time, re-inserted on backtrack).
#[derive(Debug, Clone, Default)]
struct VarOrder {
    heap: Vec<u32>,
    /// `pos[v]` is the heap slot of `v`, or `ABSENT`.
    pos: Vec<u32>,
}

impl VarOrder {
    const ABSENT: u32 = u32::MAX;

    fn new(num_vars: usize, activity: &[f64]) -> Self {
        let mut order = VarOrder {
            heap: Vec::with_capacity(num_vars),
            pos: Vec::with_capacity(num_vars),
        };
        for v in 0..num_vars {
            order.pos.push(Self::ABSENT);
            order.insert(activity, v);
        }
        order
    }

    fn better(activity: &[f64], a: u32, b: u32) -> bool {
        let (aa, ab) = (activity[a as usize], activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn in_heap(&self, v: usize) -> bool {
        self.pos[v] != Self::ABSENT
    }

    /// Registers a freshly allocated variable and inserts it.
    fn push_var(&mut self, activity: &[f64], v: usize) {
        debug_assert_eq!(self.pos.len(), v);
        self.pos.push(Self::ABSENT);
        self.insert(activity, v);
    }

    fn insert(&mut self, activity: &[f64], v: usize) {
        if self.in_heap(v) {
            return;
        }
        let slot = self.heap.len();
        self.heap.push(v as u32);
        self.pos[v] = slot as u32;
        self.sift_up(activity, slot);
    }

    fn swap_slots(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }

    fn sift_up(&mut self, activity: &[f64], mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::better(activity, self.heap[i], self.heap[parent]) {
                self.swap_slots(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, activity: &[f64], mut i: usize) {
        loop {
            let left = 2 * i + 1;
            let right = left + 1;
            let mut best = i;
            if left < self.heap.len() && Self::better(activity, self.heap[left], self.heap[best]) {
                best = left;
            }
            if right < self.heap.len() && Self::better(activity, self.heap[right], self.heap[best])
            {
                best = right;
            }
            if best == i {
                break;
            }
            self.swap_slots(i, best);
            i = best;
        }
    }

    fn peek(&self) -> Option<usize> {
        self.heap.first().map(|&v| v as usize)
    }

    fn pop(&mut self, activity: &[f64]) -> Option<usize> {
        let top = *self.heap.first()? as usize;
        let last = self.heap.pop().expect("non-empty heap");
        self.pos[top] = Self::ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(activity, 0);
        }
        Some(top)
    }

    /// Restores heap order after `v`'s activity increased.
    fn bumped(&mut self, activity: &[f64], v: usize) {
        if self.in_heap(v) {
            self.sift_up(activity, self.pos[v] as usize);
        }
    }

    /// Re-heapifies after a global activity rescale (which can collapse
    /// distinct activities into ties, invalidating the order).
    fn rebuild(&mut self, activity: &[f64]) {
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(activity, i);
        }
    }
}

/// The CDCL solver.
///
/// # Example
///
/// ```
/// use seceda_sat::{Cnf, Solver};
///
/// let mut cnf = Cnf::new();
/// let a = cnf.new_var();
/// cnf.add_clause([a.pos()]);
/// cnf.add_clause([a.neg()]);
/// assert!(!Solver::from_cnf(&cnf).solve().is_sat());
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[l.code()]`: entries for clauses in which literal `l` is
    /// one of the two watched literals, each with a blocking literal.
    watches: Vec<Vec<Watch>>,
    assign: Vec<i8>, // -1 unassigned / 0 false / 1 true
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    cla_inc: f64,
    /// Live learned clauses that reduction may delete (LBD above the
    /// glue threshold). Glue clauses are kept forever, so counting them
    /// against the budget would wedge the trigger permanently open once
    /// enough glue accumulates.
    num_deletable_live: usize,
    /// Budget of deletable learned clauses before the next
    /// [`reduce_db`]; `0.0` means "initialize from the problem size at
    /// first solve".
    max_learnts: f64,
    /// `true` once [`Solver::set_reduce_db_limit`] pinned the budget.
    reduce_pinned: bool,
    saved_phase: Vec<bool>,
    seen: Vec<bool>,
    unsat: bool,
    config: SolverConfig,
    /// Statistics: total conflicts encountered.
    pub num_conflicts: u64,
    /// Statistics: total decisions taken.
    pub num_decisions: u64,
    /// Statistics: total literals propagated.
    pub num_propagations: u64,
    /// Statistics: total restarts performed.
    pub num_restarts: u64,
    /// Statistics: total clauses learned from conflicts.
    pub num_learned: u64,
    /// Statistics: learned-clause database reductions performed.
    pub num_db_reductions: u64,
    /// Statistics: literals removed from learned clauses by
    /// self-subsumption minimization.
    pub num_minimized_lits: u64,
    /// Statistics: budgeted solve calls made so far (the chaos salt for
    /// the `sat.budget` injection point).
    pub num_budgeted_solves: u64,
}

impl Solver {
    /// Creates a solver over `num_vars` variables and no clauses.
    pub fn new(num_vars: usize) -> Self {
        Solver::with_config(num_vars, SolverConfig::default())
    }

    /// Creates a solver with explicit search heuristics (see
    /// [`SolverConfig`]); the default config reproduces [`Solver::new`].
    pub fn with_config(num_vars: usize, config: SolverConfig) -> Self {
        let activity = vec![0.0; num_vars];
        let saved_phase: Vec<bool> = (0..num_vars)
            .map(|v| config.phase_seed != 0 && splitmix64(config.phase_seed ^ v as u64) & 1 == 1)
            .collect();
        Solver {
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            assign: vec![UNASSIGNED; num_vars],
            level: vec![0; num_vars],
            reason: vec![NO_REASON; num_vars],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            order: VarOrder::new(num_vars, &activity),
            activity,
            var_inc: 1.0,
            cla_inc: 1.0,
            num_deletable_live: 0,
            max_learnts: 0.0,
            reduce_pinned: false,
            saved_phase,
            seen: vec![false; num_vars],
            unsat: false,
            config,
            num_conflicts: 0,
            num_decisions: 0,
            num_propagations: 0,
            num_restarts: 0,
            num_learned: 0,
            num_db_reductions: 0,
            num_minimized_lits: 0,
            num_budgeted_solves: 0,
        }
    }

    /// Builds a solver preloaded with the clauses of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = Solver::new(cnf.num_vars());
        for clause in cnf.clauses() {
            s.add_clause(clause.iter().copied());
        }
        s
    }

    /// Allocates a fresh variable (for incremental encodings).
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assign.len());
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.saved_phase.push(
            self.config.phase_seed != 0
                && splitmix64(self.config.phase_seed ^ v.index() as u64) & 1 == 1,
        );
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push_var(&self.activity, v.index());
        v
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses currently stored (problem + live learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of problem (non-learned) clauses currently stored — the
    /// size of the encoding as delivered by [`CnfBuilder::add_clause`],
    /// excluding anything the search derived itself.
    pub fn num_problem_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.learned).count()
    }

    /// The current VSIDS activity of a variable.
    pub fn var_activity(&self, v: Var) -> f64 {
        self.activity[v.index()]
    }

    /// The root-level value of a variable, if the solver is idle at the
    /// root (after a [`Solver::solve`] call the trail is backtracked, so
    /// only root-implied variables report a value).
    pub fn var_value(&self, v: Var) -> Option<bool> {
        match self.assign[v.index()] {
            UNASSIGNED => None,
            x => Some(x == 1),
        }
    }

    fn value_lit(&self, l: Lit) -> i8 {
        match self.assign[l.var().index()] {
            UNASSIGNED => UNASSIGNED,
            v => i8::from((v == 1) == l.is_positive()),
        }
    }

    /// Adds a clause. May be called between [`Solver::solve`] calls; the
    /// solver backtracks to the root level first.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unknown variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        self.backtrack(0);
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(l.var().index() < self.num_vars(), "literal out of range");
        }
        clause.sort_unstable();
        clause.dedup();
        if clause.windows(2).any(|w| w[0] == !w[1]) {
            return; // tautology
        }
        if clause.iter().any(|&l| self.value_lit(l) == 1) {
            return; // satisfied at root level
        }
        clause.retain(|&l| self.value_lit(l) != 0); // drop root-false lits
        match clause.len() {
            0 => self.unsat = true,
            1 => {
                self.enqueue(clause[0], NO_REASON);
                if matches!(self.propagate(None), Propagation::Conflict(_)) {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watch(clause[0], idx, clause[1]);
                self.watch(clause[1], idx, clause[0]);
                self.clauses.push(Clause {
                    lits: clause,
                    learned: false,
                    lbd: 0,
                    activity: 0.0,
                });
            }
        }
    }

    fn watch(&mut self, on: Lit, clause: u32, blocker: Lit) {
        self.watches[on.code()].push(Watch { clause, blocker });
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.value_lit(l), UNASSIGNED);
        let v = l.var().index();
        self.assign[v] = l.is_positive() as i8;
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.saved_phase[v] = l.is_positive();
        self.trail.push(l);
        self.num_propagations += 1;
    }

    /// Propagates all pending assignments; returns a conflicting clause
    /// index on conflict. `limits` (when given) is polled every
    /// [`CANCEL_POLL_MASK`]` + 1` propagated literals; on a raised flag
    /// or an exhausted budget the queue is left unfinished and
    /// [`Propagation::Stopped`] is returned — the caller must abandon
    /// the solve (the unpropagated tail is picked up by the next solve's
    /// root propagation).
    fn propagate(&mut self, limits: Option<&Limits<'_>>) -> Propagation {
        while self.qhead < self.trail.len() {
            if let Some(lim) = limits {
                if self.num_propagations & CANCEL_POLL_MASK == 0 {
                    if let Some(reason) = lim.check_poll(self.num_propagations) {
                        return Propagation::Stopped(reason);
                    }
                }
            }
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p; // literal that just became false
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            let mut conflict = None;
            while i < watch_list.len() {
                let w = watch_list[i];
                // blocking literal: clause already satisfied, skip body
                if self.value_lit(w.blocker) == 1 {
                    i += 1;
                    continue;
                }
                match self.visit_clause(w.clause, false_lit) {
                    VisitOutcome::Keep => {
                        // refresh the blocker to the other watch, which
                        // visit_clause left (or made) satisfied-or-free
                        watch_list[i].blocker = self.clauses[w.clause as usize].lits[0];
                        i += 1;
                    }
                    VisitOutcome::Moved => {
                        watch_list.swap_remove(i);
                    }
                    VisitOutcome::Conflict => {
                        conflict = Some(w.clause);
                        break;
                    }
                }
            }
            self.watches[false_lit.code()] = watch_list;
            if let Some(ci) = conflict {
                // flush the propagation queue so the trail stays coherent
                self.qhead = self.trail.len();
                return Propagation::Conflict(ci);
            }
        }
        Propagation::Quiescent
    }

    fn visit_clause(&mut self, ci: u32, false_lit: Lit) -> VisitOutcome {
        // ensure the false watch sits at position 1
        {
            let c = &mut self.clauses[ci as usize].lits;
            if c[0] == false_lit {
                c.swap(0, 1);
            }
        }
        let first = self.clauses[ci as usize].lits[0];
        if self.value_lit(first) == 1 {
            return VisitOutcome::Keep;
        }
        let len = self.clauses[ci as usize].lits.len();
        for k in 2..len {
            let lk = self.clauses[ci as usize].lits[k];
            if self.value_lit(lk) != 0 {
                let c = &mut self.clauses[ci as usize].lits;
                c.swap(1, k);
                let (new_watch, blocker) = (c[1], c[0]);
                self.watch(new_watch, ci, blocker);
                return VisitOutcome::Moved;
            }
        }
        if self.value_lit(first) == 0 {
            VisitOutcome::Conflict
        } else {
            self.enqueue(first, ci);
            VisitOutcome::Keep
        }
    }

    fn backtrack(&mut self, target_level: usize) {
        if self.trail_lim.len() <= target_level {
            return;
        }
        let lim = self.trail_lim[target_level];
        while self.trail.len() > lim {
            let l = self.trail.pop().expect("trail non-empty");
            let v = l.var().index();
            self.assign[v] = UNASSIGNED;
            self.reason[v] = NO_REASON;
            self.order.insert(&self.activity, v);
        }
        self.trail_lim.truncate(target_level);
        self.qhead = self.trail.len();
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            // rescaling can merge activities into ties; restore heap order
            self.order.rebuild(&self.activity);
        } else {
            self.order.bumped(&self.activity, v);
        }
    }

    fn bump_clause(&mut self, ci: u32) {
        let c = &mut self.clauses[ci as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis with self-subsumption minimization.
    /// Returns `(learned clause, backtrack level, LBD)` with the asserting
    /// literal at position 0.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, usize, u32) {
        let current = self.trail_lim.len() as u32;
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut index = self.trail.len();
        let mut p: Option<Lit> = None;
        let mut reason_clause = confl;
        loop {
            if self.clauses[reason_clause as usize].learned {
                self.bump_clause(reason_clause);
            }
            // For reason clauses, lits[0] is the literal that was asserted
            // (p); skip it. For the initial conflict clause take all.
            let start = usize::from(p.is_some());
            for j in start..self.clauses[reason_clause as usize].lits.len() {
                let q = self.clauses[reason_clause as usize].lits[j];
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // walk the trail backwards to the next marked literal
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var().index();
            self.seen[v] = false;
            counter -= 1;
            p = Some(lit);
            if counter == 0 {
                break;
            }
            reason_clause = self.reason[v];
            debug_assert_ne!(reason_clause, NO_REASON, "non-UIP literal lacks reason");
        }
        let uip = !p.expect("1-UIP literal");
        // Self-subsumption against reason clauses: a literal whose reason's
        // other literals are all already in the clause (seen) or root-false
        // is implied by the rest and can be dropped. Reasons form an
        // acyclic implication graph, so dropping several such literals at
        // once stays sound. The `seen` marks of dropped literals are kept
        // until all checks ran, then cleared together.
        let premin_vars: Vec<usize> = learnt.iter().map(|l| l.var().index()).collect();
        let before = learnt.len();
        learnt.retain(|&l| {
            let r = self.reason[l.var().index()];
            if r == NO_REASON {
                return true;
            }
            // lits[0] of a reason clause is the asserted literal (= !l)
            !self.clauses[r as usize].lits[1..].iter().all(|&q| {
                let qv = q.var().index();
                self.seen[qv] || self.level[qv] == 0
            })
        });
        self.num_minimized_lits += (before - learnt.len()) as u64;
        for v in premin_vars {
            self.seen[v] = false;
        }
        // backtrack to the second-highest decision level in the clause
        let mut bt = 0usize;
        let mut max_idx = 0usize;
        for (i, l) in learnt.iter().enumerate() {
            let lv = self.level[l.var().index()] as usize;
            if lv > bt {
                bt = lv;
                max_idx = i;
            }
        }
        if !learnt.is_empty() {
            learnt.swap(0, max_idx);
        }
        // LBD: number of distinct decision levels in the clause (the UIP
        // sits at the current level, distinct from every other literal)
        let mut levels: Vec<u32> = learnt.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32 + 1;
        let mut clause = Vec::with_capacity(learnt.len() + 1);
        clause.push(uip);
        clause.extend(learnt);
        (clause, bt, lbd)
    }

    /// Installs a learned clause; returns its index if it is non-unit.
    fn learn(&mut self, clause: &[Lit], lbd: u32) -> u32 {
        self.num_learned += 1;
        if clause.len() < 2 {
            return NO_REASON;
        }
        let idx = self.clauses.len() as u32;
        self.watch(clause[0], idx, clause[1]);
        self.watch(clause[1], idx, clause[0]);
        self.clauses.push(Clause {
            lits: clause.to_vec(),
            learned: true,
            lbd,
            activity: self.cla_inc,
        });
        if lbd > GLUE_LBD {
            self.num_deletable_live += 1;
        }
        idx
    }

    /// Pins the learned-clause budget that triggers database reduction
    /// (a test/tuning hook). The budget counts deletable (non-glue)
    /// learned clauses. By default it starts at
    /// `max(2000, problem clauses / 3)` and grows 1.2× per reduction;
    /// a pinned budget never grows.
    pub fn set_reduce_db_limit(&mut self, limit: usize) {
        self.max_learnts = limit.max(1) as f64;
        self.reduce_pinned = true;
    }

    /// Learned-clause database reduction with root-level simplification.
    ///
    /// Runs at the root level with a fully propagated trail. Deletes the
    /// worst half of the non-glue learned clauses (highest LBD, then
    /// lowest activity), drops every clause satisfied at the root, strips
    /// root-false literals, and rebuilds the watch lists over the
    /// compacted arena. Root-level reason links are cleared first — they
    /// are never dereferenced (conflict analysis skips level-0 literals),
    /// and clearing them unlocks every clause for deletion.
    fn reduce_db(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "reduce_db runs at root level");
        debug_assert_eq!(self.qhead, self.trail.len(), "trail fully propagated");
        self.num_db_reductions += 1;
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().index();
            self.reason[v] = NO_REASON;
        }
        let mut victims: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learned && c.lbd > GLUE_LBD
            })
            .collect();
        // worst first: high LBD, then low activity, then oldest
        victims.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            cb.lbd
                .cmp(&ca.lbd)
                .then(ca.activity.total_cmp(&cb.activity))
                .then(a.cmp(&b))
        });
        victims.truncate(victims.len() / 2);
        let mut drop = vec![false; self.clauses.len()];
        for &i in &victims {
            drop[i as usize] = true;
        }
        let old = std::mem::take(&mut self.clauses);
        for w in &mut self.watches {
            w.clear();
        }
        for (i, mut c) in old.into_iter().enumerate() {
            if drop[i] {
                continue;
            }
            if c.lits.iter().any(|&l| self.value_lit(l) == 1) {
                continue; // satisfied at root, forever
            }
            c.lits.retain(|&l| self.value_lit(l) != 0);
            // full root propagation guarantees >= 2 unassigned literals in
            // any clause that is not root-satisfied
            debug_assert!(c.lits.len() >= 2, "root propagation incomplete");
            let idx = self.clauses.len() as u32;
            self.watch(c.lits[0], idx, c.lits[1]);
            self.watch(c.lits[1], idx, c.lits[0]);
            self.clauses.push(c);
        }
        self.num_deletable_live = self
            .clauses
            .iter()
            .filter(|c| c.learned && c.lbd > GLUE_LBD)
            .count();
    }

    /// Picks the unassigned variable with the highest activity (lowest
    /// index on ties) from the order heap — O(log n) per call.
    fn decide(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[v] == UNASSIGNED {
                return Some(Var::from_index(v).lit(self.saved_phase[v]));
            }
        }
        None
    }

    /// The variable [`decide`](Self::decide) would branch on next: highest
    /// activity, lowest index on ties. Introspection hook pinned by the
    /// differential suite against a linear argmax scan. Lazily drops
    /// assigned entries from the heap top; otherwise read-only.
    pub fn next_decision_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.peek() {
            if self.assign[v] == UNASSIGNED {
                return Some(Var::from_index(v));
            }
            self.order.pop(&self.activity);
        }
        None
    }

    /// Solves the formula.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumptions (literals forced true for this
    /// call only). The solver can be reused afterwards with different
    /// assumptions or additional clauses.
    ///
    /// Each call emits one `sat.solve` trace span plus per-call deltas of
    /// the decision/propagation/conflict/restart/learning statistics.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        match self.solve_traced(assumptions, None) {
            SolveOutcome::Sat(m) => SatResult::Sat(m),
            SolveOutcome::Unsat => SatResult::Unsat,
            SolveOutcome::Indeterminate(r) => {
                unreachable!("unlimited solve stopped early: {r}")
            }
        }
    }

    /// Like [`Solver::solve_with_assumptions`] but cooperatively
    /// cancellable: the flag is polled inside propagation, and a raised
    /// flag makes the call return `None` (promptly, not instantly). The
    /// solver stays fully usable afterwards — everything learned before
    /// the cancellation is kept. This is the portfolio-racing primitive:
    /// the first member to answer raises the flag and the rest stand
    /// down.
    pub fn solve_with_assumptions_cancellable(
        &mut self,
        assumptions: &[Lit],
        cancel: &AtomicBool,
    ) -> Option<SatResult> {
        let limits = Limits {
            conflict_target: u64::MAX,
            prop_target: u64::MAX,
            deadline: None,
            cancel: Some(cancel),
            race: None,
        };
        self.solve_traced(assumptions, Some(&limits))
            .into_sat_result()
    }

    /// Solves under `budget`: a determined [`SolveOutcome::Sat`] /
    /// [`SolveOutcome::Unsat`], or [`SolveOutcome::Indeterminate`] once
    /// any limit trips. The solver stays fully usable afterwards and
    /// keeps everything it learned — re-solving with a larger budget
    /// resumes from accumulated knowledge.
    ///
    /// Conflict/propagation limits cap this call's *delta*; the deadline
    /// is absolute (see [`Budget`]). Budget checks ride the existing
    /// every-1024-propagations cancellation poll (plus one comparison
    /// per conflict), so an unlimited budget costs nothing on the hot
    /// path. An exhausted wall-clock deadline additionally emits a
    /// watchdog stall report naming the live span stack (see
    /// `seceda_trace::report_budget_stall`).
    pub fn solve_budgeted(&mut self, assumptions: &[Lit], budget: &Budget) -> SolveOutcome {
        self.solve_budgeted_raced(assumptions, budget, None)
    }

    /// [`Solver::solve_budgeted`] with an extra portfolio race flag,
    /// polled alongside the budget's own cancel flag.
    pub(crate) fn solve_budgeted_raced(
        &mut self,
        assumptions: &[Lit],
        budget: &Budget,
        race: Option<&AtomicBool>,
    ) -> SolveOutcome {
        if !budget.is_limited() && race.is_none() {
            return self.solve_traced(assumptions, None);
        }
        // Chaos-injected exhaustion: only limited budgets are eligible,
        // so the unlimited wrappers (solve / solve_with_assumptions)
        // keep their total contract even under chaos. Salted by the
        // budgeted-call ordinal, which is deterministic per solver.
        if budget.is_limited() && seceda_testkit::chaos::active() {
            let salt = self.num_budgeted_solves;
            self.num_budgeted_solves += 1;
            if seceda_testkit::chaos::maybe_exhaust("sat.budget", salt) {
                seceda_trace::counter("chaos.injections", 1);
                seceda_trace::counter("sat.indeterminate", 1);
                return SolveOutcome::Indeterminate(StopReason::ChaosInjected);
            }
        } else {
            self.num_budgeted_solves += 1;
        }
        let limits = Limits {
            conflict_target: budget
                .max_conflicts()
                .map_or(u64::MAX, |n| self.num_conflicts.saturating_add(n)),
            prop_target: budget
                .max_propagations()
                .map_or(u64::MAX, |n| self.num_propagations.saturating_add(n)),
            deadline: budget.deadline(),
            cancel: budget.cancel_flag().map(Arc::as_ref),
            race,
        };
        self.solve_traced(assumptions, Some(&limits))
    }

    fn solve_traced(&mut self, assumptions: &[Lit], limits: Option<&Limits<'_>>) -> SolveOutcome {
        let mut sp = seceda_trace::span("sat.solve");
        sp.attr("vars", self.num_vars());
        sp.attr("clauses", self.clauses.len());
        sp.attr("assumptions", assumptions.len());
        let (d0, p0, c0, r0) = (
            self.num_decisions,
            self.num_propagations,
            self.num_conflicts,
            self.num_restarts,
        );
        let (l0, db0, m0) = (
            self.num_learned,
            self.num_db_reductions,
            self.num_minimized_lits,
        );
        let result = self.solve_inner(assumptions, limits);
        seceda_trace::counter("sat.decisions", self.num_decisions - d0);
        seceda_trace::counter("sat.propagations", self.num_propagations - p0);
        seceda_trace::counter("sat.conflicts", self.num_conflicts - c0);
        seceda_trace::counter("sat.restarts", self.num_restarts - r0);
        seceda_trace::counter("sat.learned", self.num_learned - l0);
        seceda_trace::counter("sat.db_reductions", self.num_db_reductions - db0);
        seceda_trace::counter("sat.minimized_lits", self.num_minimized_lits - m0);
        match &result {
            SolveOutcome::Sat(_) => sp.attr("result", "sat"),
            SolveOutcome::Unsat => sp.attr("result", "unsat"),
            SolveOutcome::Indeterminate(reason) => {
                seceda_trace::counter("sat.indeterminate", 1);
                sp.attr("result", "indeterminate");
                if seceda_trace::enabled() {
                    sp.attr("stop_reason", format!("{reason}"));
                }
                if *reason == StopReason::Deadline {
                    // event-driven stall report while the sat.solve span
                    // is still open, so armed watchdogs see the stack
                    seceda_trace::report_budget_stall("sat.solve wall-clock deadline");
                }
            }
        }
        result
    }

    fn solve_inner(&mut self, assumptions: &[Lit], limits: Option<&Limits<'_>>) -> SolveOutcome {
        if self.unsat {
            return SolveOutcome::Unsat;
        }
        for a in assumptions {
            assert!(a.var().index() < self.num_vars(), "assumption out of range");
        }
        if self.max_learnts == 0.0 {
            self.max_learnts = (self.clauses.len() as f64 / 3.0).max(2000.0);
        }
        if let Some(lim) = limits {
            if let Some(reason) = lim.check_entry(self.num_conflicts, self.num_propagations) {
                return SolveOutcome::Indeterminate(reason);
            }
        }
        self.backtrack(0);
        match self.propagate(None) {
            Propagation::Conflict(_) => {
                self.unsat = true;
                return SolveOutcome::Unsat;
            }
            Propagation::Quiescent | Propagation::Stopped(_) => {}
        }
        let mut restart_count = 0u32;
        let mut conflicts_until_restart = self.config.restart_base * luby(restart_count);
        loop {
            match self.propagate(limits) {
                Propagation::Stopped(reason) => {
                    self.backtrack(0);
                    return SolveOutcome::Indeterminate(reason);
                }
                Propagation::Conflict(confl) => {
                    self.num_conflicts += 1;
                    if self.trail_lim.is_empty() {
                        self.unsat = true;
                        return SolveOutcome::Unsat;
                    }
                    // the conflict budget is checked here — once per
                    // conflict, off the propagation fast path; root
                    // conflicts above still return the determined Unsat
                    if let Some(lim) = limits {
                        if self.num_conflicts >= lim.conflict_target {
                            self.backtrack(0);
                            return SolveOutcome::Indeterminate(StopReason::Conflicts);
                        }
                    }
                    let (clause, bt, lbd) = self.analyze(confl);
                    self.backtrack(bt);
                    let asserting = clause[0];
                    let reason = self.learn(&clause, lbd);
                    debug_assert_eq!(self.value_lit(asserting), UNASSIGNED);
                    self.enqueue(asserting, reason);
                    self.var_inc /= self.config.var_decay;
                    self.cla_inc /= 0.999;
                    conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                    if conflicts_until_restart == 0 {
                        restart_count += 1;
                        self.num_restarts += 1;
                        conflicts_until_restart = self.config.restart_base * luby(restart_count);
                        self.backtrack(0);
                    }
                    // an oversized learned DB forces a restart so the
                    // reduction below runs from a fully propagated root
                    if self.num_deletable_live as f64 >= self.max_learnts {
                        self.backtrack(0);
                    }
                }
                Propagation::Quiescent => {
                    if self.trail_lim.is_empty()
                        && self.num_deletable_live as f64 >= self.max_learnts
                    {
                        self.reduce_db();
                        if !self.reduce_pinned {
                            self.max_learnts *= self.config.reduce_growth;
                        }
                    }
                    // place assumptions as pseudo-decisions first
                    if self.trail_lim.len() < assumptions.len() {
                        let a = assumptions[self.trail_lim.len()];
                        match self.value_lit(a) {
                            1 => self.trail_lim.push(self.trail.len()),
                            0 => {
                                self.backtrack(0);
                                return SolveOutcome::Unsat;
                            }
                            _ => {
                                self.trail_lim.push(self.trail.len());
                                self.enqueue(a, NO_REASON);
                            }
                        }
                        continue;
                    }
                    match self.decide() {
                        None => {
                            let model: Vec<bool> = self.assign.iter().map(|&v| v == 1).collect();
                            self.backtrack(0);
                            return SolveOutcome::Sat(model);
                        }
                        Some(d) => {
                            self.num_decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(d, NO_REASON);
                        }
                    }
                }
            }
        }
    }

    /// Exports glue learned clauses (LBD at or below the keep-forever
    /// threshold) past the first `skip`, for portfolio clause sharing.
    /// Glue clauses are never deleted and database reduction preserves
    /// their relative order, so `skip` is a stable cursor.
    pub fn export_glue(&self, skip: usize) -> Vec<Vec<Lit>> {
        self.clauses
            .iter()
            .filter(|c| c.learned && c.lbd <= GLUE_LBD)
            .skip(skip)
            .map(|c| c.lits.clone())
            .collect()
    }

    /// Number of live glue learned clauses (the [`Solver::export_glue`]
    /// cursor space).
    pub fn num_glue(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| c.learned && c.lbd <= GLUE_LBD)
            .count()
    }
}

impl CnfBuilder for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        Solver::add_clause(self, lits);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VisitOutcome {
    Keep,
    Moved,
    Conflict,
}

/// Outcome of a [`Solver::propagate`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Propagation {
    /// Queue drained without conflict.
    Quiescent,
    /// Conflict in the given clause.
    Conflict(u32),
    /// A limit tripped mid-propagation (cancel flag, budget, deadline).
    Stopped(StopReason),
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...).
fn luby(i: u32) -> u64 {
    // find k with 2^k - 1 > i, i.e. the subsequence containing i
    let mut i = i as u64 + 1;
    let mut k = 1u32;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    loop {
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
        k = 1;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;

    #[test]
    fn trivial_sat() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.pos(), b.pos()]);
        cnf.add_clause([a.neg(), b.pos()]);
        let result = Solver::from_cnf(&cnf).solve();
        let model = result.model().expect("sat");
        assert!(model[b.index()]);
    }

    #[test]
    fn trivial_unsat() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause([a.pos()]);
        cnf.add_clause([a.neg()]);
        assert_eq!(Solver::from_cnf(&cnf).solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = Cnf::new();
        assert!(Solver::from_cnf(&cnf).solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        let _ = cnf.new_var();
        cnf.add_clause([]);
        assert_eq!(Solver::from_cnf(&cnf).solve(), SatResult::Unsat);
    }

    /// Pigeonhole PHP(n+1, n): n+1 pigeons in n holes — UNSAT and forces
    /// real conflict analysis.
    fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
        let mut cnf = Cnf::new();
        let mut grid = Vec::new();
        for _ in 0..pigeons {
            let row: Vec<Var> = (0..holes).map(|_| cnf.new_var()).collect();
            grid.push(row);
        }
        for row in &grid {
            cnf.add_clause(row.iter().map(|v| v.pos()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    cnf.add_clause([grid[p1][h].neg(), grid[p2][h].neg()]);
                }
            }
        }
        cnf
    }

    #[test]
    fn pigeonhole_unsat() {
        for n in 2..=5 {
            let cnf = pigeonhole(n + 1, n);
            assert_eq!(
                Solver::from_cnf(&cnf).solve(),
                SatResult::Unsat,
                "PHP({}, {n})",
                n + 1
            );
        }
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let cnf = pigeonhole(4, 4);
        let result = Solver::from_cnf(&cnf).solve();
        let model = result.model().expect("sat");
        assert!(cnf.is_satisfied_by(model));
    }

    #[test]
    fn pigeonhole_unsat_with_forced_db_reduction() {
        // A tiny pinned budget forces constant reduction; the proof must
        // still go through (PHP(6,5) alone needs hundreds of reductions
        // at this budget). Much smaller budgets make resolution-hard
        // instances blow up combinatorially, which is the expected
        // trade-off of an aggressive clause diet, not a bug.
        for n in 3..=5 {
            let cnf = pigeonhole(n + 1, n);
            let mut solver = Solver::from_cnf(&cnf);
            solver.set_reduce_db_limit(16);
            assert_eq!(solver.solve(), SatResult::Unsat, "PHP({}, {n})", n + 1);
            if n == 5 {
                assert!(
                    solver.num_db_reductions > 0,
                    "limit 16 must force reductions on PHP({}, {n})",
                    n + 1
                );
            }
        }
    }

    #[test]
    fn assumptions_flip_result() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.pos(), b.pos()]);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve_with_assumptions(&[a.neg(), b.pos()]).is_sat());
        assert_eq!(
            solver.solve_with_assumptions(&[a.neg(), b.neg()]),
            SatResult::Unsat
        );
        // solver remains usable
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn incremental_clause_addition() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.pos(), b.pos()]);
        let mut solver = Solver::from_cnf(&cnf);
        assert!(solver.solve().is_sat());
        solver.add_clause([a.neg()]);
        assert!(solver.solve().is_sat());
        solver.add_clause([b.neg()]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn incremental_vars_and_clauses_between_solves() {
        let mut solver = Solver::new(0);
        let a = CnfBuilder::new_var(&mut solver);
        solver.add_clause([a.pos()]);
        assert!(solver.solve().is_sat());
        let b = CnfBuilder::new_var(&mut solver);
        solver.gate_buf(b.pos(), a.neg());
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(model[a.index()]);
                assert!(!model[b.index()]);
            }
            SatResult::Unsat => panic!("satisfiable"),
        }
        solver.add_clause([b.pos()]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use seceda_testkit::rng::{Rng, SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(99);
        for iter in 0..80 {
            let nv = rng.gen_range(3..10usize);
            let nc = rng.gen_range(1..45usize);
            let mut cnf = Cnf::new();
            let vars = cnf.new_vars(nv);
            for _ in 0..nc {
                let lits: Vec<Lit> = (0..3)
                    .map(|_| vars[rng.gen_range(0..nv)].lit(rng.gen_bool(0.5)))
                    .collect();
                cnf.add_clause(lits);
            }
            let brute_sat = (0..(1u32 << nv)).any(|m| {
                let model: Vec<bool> = (0..nv).map(|i| (m >> i) & 1 == 1).collect();
                cnf.is_satisfied_by(&model)
            });
            let result = Solver::from_cnf(&cnf).solve();
            assert_eq!(result.is_sat(), brute_sat, "iteration {iter}");
            if let SatResult::Sat(model) = result {
                assert!(cnf.is_satisfied_by(&model), "iteration {iter} bad model");
            }
        }
    }

    #[test]
    fn assumptions_agree_with_unit_clauses() {
        use seceda_testkit::rng::{Rng, SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(1234);
        for iter in 0..40 {
            let nv = rng.gen_range(4..9usize);
            let nc = rng.gen_range(5..30usize);
            let mut cnf = Cnf::new();
            let vars = cnf.new_vars(nv);
            for _ in 0..nc {
                let lits: Vec<Lit> = (0..3)
                    .map(|_| vars[rng.gen_range(0..nv)].lit(rng.gen_bool(0.5)))
                    .collect();
                cnf.add_clause(lits);
            }
            let assumps: Vec<Lit> = (0..rng.gen_range(1..=3))
                .map(|_| vars[rng.gen_range(0..nv)].lit(rng.gen_bool(0.5)))
                .collect();
            let via_assumptions = Solver::from_cnf(&cnf)
                .solve_with_assumptions(&assumps)
                .is_sat();
            let mut cnf2 = cnf.clone();
            for &a in &assumps {
                cnf2.add_clause([a]);
            }
            let via_units = Solver::from_cnf(&cnf2).solve().is_sat();
            assert_eq!(via_assumptions, via_units, "iteration {iter}");
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u32), e, "luby({i})");
        }
    }

    #[test]
    fn statistics_accumulate() {
        let cnf = pigeonhole(5, 4);
        let mut solver = Solver::from_cnf(&cnf);
        let _ = solver.solve();
        assert!(solver.num_conflicts > 0);
        assert!(solver.num_propagations > 0);
        assert!(solver.num_learned > 0);
    }

    #[test]
    fn fresh_solver_decides_lowest_index_on_equal_activity() {
        // all activities zero: the tie-break must pick the lowest index,
        // exactly like the old linear scan
        let mut solver = Solver::new(8);
        assert_eq!(solver.next_decision_var(), Some(Var::from_index(0)));
        let mut cnf = Cnf::new();
        let vars = cnf.new_vars(6);
        cnf.add_clause([vars[2].pos(), vars[4].pos()]);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.next_decision_var(), Some(Var::from_index(0)));
    }

    #[test]
    fn minimization_shrinks_clauses_without_changing_results() {
        // pigeonhole instances exercise minimization heavily; the result
        // must stay UNSAT and literals must actually be removed
        let cnf = pigeonhole(6, 5);
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(solver.solve(), SatResult::Unsat);
        assert!(
            solver.num_minimized_lits > 0,
            "PHP(6,5) must trigger self-subsumption"
        );
    }
}
