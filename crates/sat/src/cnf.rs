//! CNF formula representation: variables, literals, clauses.

use std::fmt;
use std::ops::Not;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a variable from a dense index.
    pub fn from_index(index: usize) -> Self {
        Var(u32::try_from(index).expect("variable index overflow"))
    }

    /// The positive literal of this variable.
    pub fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    // named for symmetry with `pos`; this is literal polarity, not
    // arithmetic negation, so `std::ops::Neg` would be misleading
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given sign (`true` = positive).
    pub fn lit(self, sign: bool) -> Lit {
        if sign {
            self.pos()
        } else {
            self.neg()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, encoded as `2*var + sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code (used to index watch lists).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Evaluates the literal under a variable assignment.
    pub fn eval(self, value: bool) -> bool {
        value == self.is_positive()
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// A sink for CNF clauses: anything that can allocate variables and
/// receive clauses.
///
/// Implemented by [`Cnf`] (builds a formula in memory) and by
/// [`Solver`](crate::Solver) (adds clauses to a *live* solver, enabling
/// incremental encodings that keep learned clauses across queries — the
/// persistent-solver SAT attack and incremental ATPG encode netlist
/// copies straight into the solver through this trait). The gate helpers
/// ([`gate_and`](CnfBuilder::gate_and) etc.) are provided for every
/// implementation.
pub trait CnfBuilder {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause (a disjunction of literals).
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>);

    /// Allocates `n` fresh variables.
    fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Adds clauses forcing `y <-> (a AND b)`.
    fn gate_and(&mut self, y: Lit, a: Lit, b: Lit) {
        self.add_clause([!y, a]);
        self.add_clause([!y, b]);
        self.add_clause([y, !a, !b]);
    }

    /// Adds clauses forcing `y <-> (a OR b)`.
    fn gate_or(&mut self, y: Lit, a: Lit, b: Lit) {
        self.add_clause([y, !a]);
        self.add_clause([y, !b]);
        self.add_clause([!y, a, b]);
    }

    /// Adds clauses forcing `y <-> (a XOR b)`.
    fn gate_xor(&mut self, y: Lit, a: Lit, b: Lit) {
        self.add_clause([!y, a, b]);
        self.add_clause([!y, !a, !b]);
        self.add_clause([y, !a, b]);
        self.add_clause([y, a, !b]);
    }

    /// Adds clauses forcing `y <-> (s ? b : a)`.
    fn gate_mux(&mut self, y: Lit, s: Lit, a: Lit, b: Lit) {
        // s=0: y <-> a ; s=1: y <-> b
        self.add_clause([s, !y, a]);
        self.add_clause([s, y, !a]);
        self.add_clause([!s, !y, b]);
        self.add_clause([!s, y, !b]);
    }

    /// Adds clauses forcing `y <-> a`.
    fn gate_buf(&mut self, y: Lit, a: Lit) {
        self.add_clause([!y, a]);
        self.add_clause([y, !a]);
    }
}

/// A [`CnfBuilder`] adapter that appends a fixed guard literal to every
/// clause, making the whole clause group conditional: the clauses bind
/// only under the assumption `!guard`, and a root-level unit `guard`
/// retires the group forever.
///
/// This is the selector mechanism behind incremental ATPG and the
/// fault-coverage proofs: each fault's faulty cone is encoded gated on a
/// fresh selector, activated via assumptions, and retired after its
/// query instead of rebuilding the solver.
pub struct GatedCnf<'a, B: CnfBuilder> {
    inner: &'a mut B,
    guard: Lit,
}

impl<'a, B: CnfBuilder> GatedCnf<'a, B> {
    /// Wraps `inner`, adding `guard` to every clause added through the
    /// wrapper. Variables are allocated ungated.
    pub fn new(inner: &'a mut B, guard: Lit) -> Self {
        GatedCnf { inner, guard }
    }
}

impl<B: CnfBuilder> CnfBuilder for GatedCnf<'_, B> {
    fn new_var(&mut self) -> Var {
        self.inner.new_var()
    }

    fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let guard = self.guard;
        self.inner.add_clause(lits.into_iter().chain([guard]));
    }
}

/// A CNF formula under construction.
///
/// # Example
///
/// ```
/// use seceda_sat::Cnf;
///
/// let mut cnf = Cnf::new();
/// let x = cnf.new_var();
/// let y = cnf.new_var();
/// cnf.add_clause([x.pos(), y.neg()]);
/// assert_eq!(cnf.num_vars(), 2);
/// assert_eq!(cnf.clauses().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(l.var().0 < self.num_vars, "literal {l} out of range");
        }
        self.clauses.push(clause);
    }

    /// The clauses added so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Checks a full assignment against every clause (testing helper).
    pub fn is_satisfied_by(&self, model: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|&l| l.eval(model[l.var().index()])))
    }
}

impl CnfBuilder for Cnf {
    fn new_var(&mut self) -> Var {
        Cnf::new_var(self)
    }

    fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        Cnf::add_clause(self, lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var::from_index(5);
        assert_eq!(v.pos().code(), 10);
        assert_eq!(v.neg().code(), 11);
        assert_eq!(!v.pos(), v.neg());
        assert_eq!((!v.neg()).var(), v);
        assert!(v.pos().is_positive());
        assert!(!v.neg().is_positive());
        assert_eq!(v.lit(true), v.pos());
        assert_eq!(v.lit(false), v.neg());
    }

    #[test]
    fn literal_eval() {
        let v = Var::from_index(0);
        assert!(v.pos().eval(true));
        assert!(!v.pos().eval(false));
        assert!(v.neg().eval(false));
    }

    #[test]
    fn gate_encodings_match_semantics() {
        // exhaustively check each gate encoding against its truth table
        let check = |build: &dyn Fn(&mut Cnf, Lit, Lit, Lit), f: &dyn Fn(bool, bool) -> bool| {
            for a_val in [false, true] {
                for b_val in [false, true] {
                    for y_val in [false, true] {
                        let mut cnf = Cnf::new();
                        let y = cnf.new_var();
                        let a = cnf.new_var();
                        let b = cnf.new_var();
                        build(&mut cnf, y.pos(), a.pos(), b.pos());
                        let model = vec![y_val, a_val, b_val];
                        let consistent = y_val == f(a_val, b_val);
                        assert_eq!(cnf.is_satisfied_by(&model), consistent);
                    }
                }
            }
        };
        check(&|c, y, a, b| c.gate_and(y, a, b), &|a, b| a & b);
        check(&|c, y, a, b| c.gate_or(y, a, b), &|a, b| a | b);
        check(&|c, y, a, b| c.gate_xor(y, a, b), &|a, b| a ^ b);
    }

    #[test]
    fn mux_encoding() {
        for s in [false, true] {
            for a in [false, true] {
                for b in [false, true] {
                    for y in [false, true] {
                        let mut cnf = Cnf::new();
                        let vy = cnf.new_var();
                        let vs = cnf.new_var();
                        let va = cnf.new_var();
                        let vb = cnf.new_var();
                        cnf.gate_mux(vy.pos(), vs.pos(), va.pos(), vb.pos());
                        let expect = if s { b } else { a };
                        assert_eq!(
                            cnf.is_satisfied_by(&[y, s, a, b]),
                            y == expect,
                            "s={s} a={a} b={b} y={y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn clause_with_unallocated_var_panics() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Var::from_index(3).pos()]);
    }
}
