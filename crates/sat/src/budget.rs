//! Execution budgets and ternary solve outcomes.
//!
//! NP-hard queries (SAT attacks, ATPG on redundant logic, formal
//! detection proofs) can run unbounded; a closure loop that re-evaluates
//! every threat after every edit cannot afford that. A [`Budget`] caps a
//! solve by conflicts, propagations, a wall-clock deadline, and/or an
//! external cancel flag; a budgeted solve returns [`SolveOutcome`],
//! whose third state — [`SolveOutcome::Indeterminate`] — carries *why*
//! the search gave up ([`StopReason`]) instead of wedging the caller.
//!
//! Budget semantics:
//!
//! * **Conflict and propagation limits are per solver, per call** —
//!   they cap the *delta* each solve may spend on top of whatever the
//!   solver already consumed. In a K-member portfolio every member gets
//!   the full limit for its own search (the portfolio races lanes, it
//!   does not meter a shared pool).
//! * **The deadline is absolute** ([`std::time::Instant`]), so one
//!   budget threaded through a multi-solve computation (the DIP loop)
//!   bounds the whole computation's wall clock, not each solve.
//! * **The cancel flag is shared** — raising it stops every solve that
//!   carries the budget.
//!
//! Determinism: conflict- and propagation-limited outcomes are pure
//! functions of the formula (budget checks happen at deterministic
//! points of a deterministic search), so they are reproducible across
//! machines, worker counts, and portfolio sizes. Deadline and cancel
//! outcomes are inherently wall-clock-dependent; property tests pin the
//! former, not the latter.

use crate::solver::SatResult;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Limits on how much work a solve may spend before returning
/// [`SolveOutcome::Indeterminate`]. The default is unlimited; builder
/// methods add limits independently.
///
/// ```
/// use seceda_sat::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::unlimited()
///     .with_max_conflicts(10_000)
///     .with_wall_clock(Duration::from_secs(5));
/// assert!(budget.is_limited());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    max_conflicts: Option<u64>,
    max_propagations: Option<u64>,
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// No limits: a solve under this budget always returns a determined
    /// answer (and pays no budget-checking overhead).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Caps the conflicts a single solve may spend (per solver).
    pub fn with_max_conflicts(mut self, n: u64) -> Budget {
        self.max_conflicts = Some(n);
        self
    }

    /// Caps the literals a single solve may propagate (per solver).
    /// Checked on the existing every-1024-propagations poll, so the
    /// effective stop point is the first poll at or past the limit.
    pub fn with_max_propagations(mut self, n: u64) -> Budget {
        self.max_propagations = Some(n);
        self
    }

    /// Sets an absolute wall-clock deadline at `now + d`.
    pub fn with_wall_clock(self, d: Duration) -> Budget {
        self.with_deadline(Instant::now() + d)
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, at: Instant) -> Budget {
        self.deadline = Some(at);
        self
    }

    /// Attaches a shared cancel flag; raising it stops any solve running
    /// under this budget at the next poll.
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Budget {
        self.cancel = Some(flag);
        self
    }

    /// Whether any limit is set. Unlimited budgets skip budget checks
    /// entirely (and are immune to chaos-injected exhaustion, so
    /// `solve_with_assumptions` keeps its total contract).
    pub fn is_limited(&self) -> bool {
        self.max_conflicts.is_some()
            || self.max_propagations.is_some()
            || self.deadline.is_some()
            || self.cancel.is_some()
    }

    /// The conflict cap, if any.
    pub fn max_conflicts(&self) -> Option<u64> {
        self.max_conflicts
    }

    /// The propagation cap, if any.
    pub fn max_propagations(&self) -> Option<u64> {
        self.max_propagations
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The attached cancel flag, if any.
    pub fn cancel_flag(&self) -> Option<&Arc<AtomicBool>> {
        self.cancel.as_ref()
    }

    /// The budget left after spending `conflicts` / `propagations` of
    /// this one: relative limits shrink (saturating at zero — the next
    /// solve then stops at its first conflict / first poll), the
    /// absolute deadline and the cancel flag carry over unchanged.
    /// Multi-solve computations (the DIP loop) use this to thread one
    /// budget through every constituent solve.
    pub fn minus(&self, conflicts: u64, propagations: u64) -> Budget {
        Budget {
            max_conflicts: self.max_conflicts.map(|n| n.saturating_sub(conflicts)),
            max_propagations: self
                .max_propagations
                .map(|n| n.saturating_sub(propagations)),
            deadline: self.deadline,
            cancel: self.cancel.clone(),
        }
    }
}

/// Why a budgeted solve stopped without an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The per-call conflict limit was reached.
    Conflicts,
    /// The per-call propagation limit was reached.
    Propagations,
    /// The wall-clock deadline passed.
    Deadline,
    /// The budget's cancel flag (or a portfolio race) was raised.
    Cancelled,
    /// The `testkit::chaos` harness injected budget exhaustion.
    ChaosInjected,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopReason::Conflicts => "conflict budget exhausted",
            StopReason::Propagations => "propagation budget exhausted",
            StopReason::Deadline => "wall-clock deadline exhausted",
            StopReason::Cancelled => "cancelled",
            StopReason::ChaosInjected => "chaos-injected budget exhaustion",
        })
    }
}

/// The ternary result of a budgeted solve: a determined answer, or a
/// principled refusal with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A satisfying assignment, indexed by variable.
    Sat(Vec<bool>),
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The budget ran out first; the solver remains usable and keeps
    /// everything it learned.
    Indeterminate(StopReason),
}

impl SolveOutcome {
    /// `true` if a satisfying assignment was found.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveOutcome::Sat(_))
    }

    /// `true` for `Sat` or `Unsat` — the budget did not run out.
    pub fn is_determined(&self) -> bool {
        !matches!(self, SolveOutcome::Indeterminate(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveOutcome::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// Converts a determined outcome into a [`SatResult`]; `None` for
    /// [`SolveOutcome::Indeterminate`].
    pub fn into_sat_result(self) -> Option<SatResult> {
        match self {
            SolveOutcome::Sat(m) => Some(SatResult::Sat(m)),
            SolveOutcome::Unsat => Some(SatResult::Unsat),
            SolveOutcome::Indeterminate(_) => None,
        }
    }
}

impl From<SatResult> for SolveOutcome {
    fn from(r: SatResult) -> SolveOutcome {
        match r {
            SatResult::Sat(m) => SolveOutcome::Sat(m),
            SatResult::Unsat => SolveOutcome::Unsat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_not_limited() {
        assert!(!Budget::unlimited().is_limited());
        assert!(Budget::unlimited().with_max_conflicts(5).is_limited());
        assert!(Budget::unlimited()
            .with_wall_clock(Duration::from_secs(1))
            .is_limited());
    }

    #[test]
    fn minus_saturates_and_keeps_deadline() {
        let at = Instant::now() + Duration::from_secs(60);
        let b = Budget::unlimited()
            .with_max_conflicts(100)
            .with_max_propagations(1000)
            .with_deadline(at);
        let rest = b.minus(30, 2000);
        assert_eq!(rest.max_conflicts(), Some(70));
        assert_eq!(rest.max_propagations(), Some(0));
        assert_eq!(rest.deadline(), Some(at));
        // unlimited axes stay unlimited
        let u = Budget::unlimited().minus(1_000_000, 1_000_000);
        assert!(!u.is_limited());
    }

    #[test]
    fn outcome_conversions() {
        let sat = SolveOutcome::Sat(vec![true, false]);
        assert!(sat.is_sat() && sat.is_determined());
        assert_eq!(sat.model(), Some(&[true, false][..]));
        assert_eq!(
            sat.into_sat_result(),
            Some(SatResult::Sat(vec![true, false]))
        );
        let ind = SolveOutcome::Indeterminate(StopReason::Conflicts);
        assert!(!ind.is_determined());
        assert_eq!(ind.into_sat_result(), None);
        assert_eq!(SolveOutcome::from(SatResult::Unsat), SolveOutcome::Unsat);
    }
}
