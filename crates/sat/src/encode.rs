//! Tseitin encoding of netlists and miter construction.
//!
//! The bridge between the circuit world and the solver: every net becomes
//! a variable, every gate a handful of clauses. [`miter`] builds the
//! classical equivalence-checking construction — two circuits sharing
//! inputs, with an output asserting that *some* primary output differs.

use crate::cnf::{Cnf, Lit, Var};
use seceda_netlist::{CellKind, Netlist, NetlistError};

/// The variable mapping produced by encoding a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistEncoding {
    /// `vars[net.index()]` is the CNF variable of that net.
    pub vars: Vec<Var>,
    /// Variables of the primary inputs, in port order.
    pub input_vars: Vec<Var>,
    /// Variables of the primary outputs, in port order.
    pub output_vars: Vec<Var>,
}

impl NetlistEncoding {
    /// The variable of a specific net.
    pub fn var_of(&self, net: seceda_netlist::NetId) -> Var {
        self.vars[net.index()]
    }
}

fn encode_nary(cnf: &mut Cnf, kind: CellKind, y: Lit, ins: &[Lit]) {
    match kind {
        CellKind::And | CellKind::Nand => {
            let yy = if kind == CellKind::Nand { !y } else { y };
            // yy <-> AND(ins)
            let mut big: Vec<Lit> = ins.iter().map(|&l| !l).collect();
            big.push(yy);
            for &l in ins {
                cnf.add_clause([!yy, l]);
            }
            cnf.add_clause(big);
        }
        CellKind::Or | CellKind::Nor => {
            let yy = if kind == CellKind::Nor { !y } else { y };
            let mut big: Vec<Lit> = ins.to_vec();
            big.push(!yy);
            for &l in ins {
                cnf.add_clause([yy, !l]);
            }
            cnf.add_clause(big);
        }
        CellKind::Xor | CellKind::Xnor => {
            // chain through auxiliaries
            let mut acc = ins[0];
            for &l in &ins[1..ins.len() - 1] {
                let t = cnf.new_var().pos();
                cnf.gate_xor(t, acc, l);
                acc = t;
            }
            let last = ins[ins.len() - 1];
            let yy = if kind == CellKind::Xnor { !y } else { y };
            cnf.gate_xor(yy, acc, last);
        }
        _ => unreachable!("encode_nary only handles n-ary kinds"),
    }
}

/// Encodes the combinational logic of `nl` into `cnf`, allocating one
/// variable per net (plus auxiliaries for wide XORs). DFF outputs are
/// left unconstrained (free variables), which models an arbitrary state —
/// callers doing bounded model checking unroll explicitly.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] on cyclic logic.
pub fn encode_netlist(nl: &Netlist, cnf: &mut Cnf) -> Result<NetlistEncoding, NetlistError> {
    let order = nl.topo_order()?;
    let vars: Vec<Var> = (0..nl.num_nets()).map(|_| cnf.new_var()).collect();
    for gid in order {
        let g = nl.gate(gid);
        let y = vars[g.output.index()].pos();
        let ins: Vec<Lit> = g.inputs.iter().map(|&i| vars[i.index()].pos()).collect();
        match g.kind {
            CellKind::Const0 => cnf.add_clause([!y]),
            CellKind::Const1 => cnf.add_clause([y]),
            CellKind::Buf => cnf.gate_buf(y, ins[0]),
            CellKind::Not => cnf.gate_buf(y, !ins[0]),
            CellKind::Mux => cnf.gate_mux(y, ins[0], ins[1], ins[2]),
            CellKind::And | CellKind::Nand | CellKind::Or | CellKind::Nor => {
                if ins.len() == 2 {
                    match g.kind {
                        CellKind::And => cnf.gate_and(y, ins[0], ins[1]),
                        CellKind::Nand => cnf.gate_and(!y, ins[0], ins[1]),
                        CellKind::Or => cnf.gate_or(y, ins[0], ins[1]),
                        CellKind::Nor => cnf.gate_or(!y, ins[0], ins[1]),
                        _ => unreachable!(),
                    }
                } else {
                    encode_nary(cnf, g.kind, y, &ins);
                }
            }
            CellKind::Xor | CellKind::Xnor => {
                if ins.len() == 2 {
                    let yy = if g.kind == CellKind::Xnor { !y } else { y };
                    cnf.gate_xor(yy, ins[0], ins[1]);
                } else {
                    encode_nary(cnf, g.kind, y, &ins);
                }
            }
            CellKind::Dff => { /* output stays free */ }
        }
    }
    Ok(NetlistEncoding {
        input_vars: nl.inputs().iter().map(|&n| vars[n.index()]).collect(),
        output_vars: nl.outputs().iter().map(|&(n, _)| vars[n.index()]).collect(),
        vars,
    })
}

/// Builds a miter of two combinational netlists with identical interfaces:
/// shared primary inputs, and a single literal (returned) that is true iff
/// at least one primary output differs.
///
/// Asking the solver for that literal answers equivalence: UNSAT under
/// `[diff]` means the circuits agree on every input.
///
/// # Errors
///
/// Returns a netlist error if either circuit is cyclic.
///
/// # Panics
///
/// Panics if the interfaces (input/output counts) do not match.
pub fn miter(
    a: &Netlist,
    b: &Netlist,
    cnf: &mut Cnf,
) -> Result<(NetlistEncoding, NetlistEncoding, Lit), NetlistError> {
    assert_eq!(
        a.inputs().len(),
        b.inputs().len(),
        "miter needs matching input counts"
    );
    assert_eq!(
        a.outputs().len(),
        b.outputs().len(),
        "miter needs matching output counts"
    );
    let enc_a = encode_netlist(a, cnf)?;
    let enc_b = encode_netlist(b, cnf)?;
    // tie the inputs together
    for (&va, &vb) in enc_a.input_vars.iter().zip(&enc_b.input_vars) {
        cnf.gate_buf(va.pos(), vb.pos());
    }
    // per-output difference bits
    let mut diffs = Vec::with_capacity(enc_a.output_vars.len());
    for (&oa, &ob) in enc_a.output_vars.iter().zip(&enc_b.output_vars) {
        let d = cnf.new_var().pos();
        cnf.gate_xor(d, oa.pos(), ob.pos());
        diffs.push(d);
    }
    // diff <-> OR(diffs)
    let diff = cnf.new_var().pos();
    for &d in &diffs {
        cnf.add_clause([diff, !d]);
    }
    let mut big = diffs.clone();
    big.push(!diff);
    cnf.add_clause(big);
    Ok((enc_a, enc_b, diff))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SatResult, Solver};
    use seceda_netlist::{c17, majority, CellKind};

    /// Checks every CNF model of an encoded netlist against simulation.
    fn check_encoding_consistency(nl: &Netlist) {
        let mut cnf = Cnf::new();
        let enc = encode_netlist(nl, &mut cnf).expect("encode");
        let n_inputs = nl.inputs().len();
        for pattern in 0..(1u32 << n_inputs) {
            let inputs: Vec<bool> = (0..n_inputs).map(|b| (pattern >> b) & 1 == 1).collect();
            let expected = nl.evaluate(&inputs);
            let assumptions: Vec<Lit> = enc
                .input_vars
                .iter()
                .zip(&inputs)
                .map(|(&v, &b)| v.lit(b))
                .collect();
            let mut solver = Solver::from_cnf(&cnf);
            match solver.solve_with_assumptions(&assumptions) {
                SatResult::Sat(model) => {
                    for (k, &ov) in enc.output_vars.iter().enumerate() {
                        assert_eq!(
                            model[ov.index()],
                            expected[k],
                            "pattern {pattern} output {k}"
                        );
                    }
                }
                SatResult::Unsat => panic!("encoding unsat under concrete inputs"),
            }
        }
    }

    #[test]
    fn c17_encoding_matches_simulation() {
        check_encoding_consistency(&c17());
    }

    #[test]
    fn majority_encoding_matches_simulation() {
        check_encoding_consistency(&majority());
    }

    #[test]
    fn wide_gates_encoding() {
        let mut nl = Netlist::new("wide");
        let ins: Vec<_> = (0..5).map(|i| nl.add_input(format!("i{i}"))).collect();
        let a = nl.add_gate(CellKind::And, &ins);
        let o = nl.add_gate(CellKind::Or, &ins);
        let x = nl.add_gate(CellKind::Xor, &ins);
        let nx = nl.add_gate(CellKind::Xnor, &ins);
        let na = nl.add_gate(CellKind::Nand, &ins);
        let no = nl.add_gate(CellKind::Nor, &ins);
        for (net, name) in [
            (a, "a"),
            (o, "o"),
            (x, "x"),
            (nx, "nx"),
            (na, "na"),
            (no, "no"),
        ] {
            nl.mark_output(net, name);
        }
        check_encoding_consistency(&nl);
    }

    #[test]
    fn miter_proves_equivalence() {
        // two structurally different implementations of XOR
        let mut a = Netlist::new("xor1");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let out = a.add_gate(CellKind::Xor, &[x, y]);
        a.mark_output(out, "o");

        let mut b = Netlist::new("xor2");
        let x2 = b.add_input("x");
        let y2 = b.add_input("y");
        let nx = b.add_gate(CellKind::Not, &[x2]);
        let ny = b.add_gate(CellKind::Not, &[y2]);
        let t1 = b.add_gate(CellKind::And, &[x2, ny]);
        let t2 = b.add_gate(CellKind::And, &[nx, y2]);
        let out2 = b.add_gate(CellKind::Or, &[t1, t2]);
        b.mark_output(out2, "o");

        let mut cnf = Cnf::new();
        let (_, _, diff) = miter(&a, &b, &mut cnf).expect("miter");
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(
            solver.solve_with_assumptions(&[diff]),
            SatResult::Unsat,
            "equivalent circuits must have an unsat miter"
        );
    }

    #[test]
    fn miter_finds_counterexample() {
        let mut a = Netlist::new("and");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let out = a.add_gate(CellKind::And, &[x, y]);
        a.mark_output(out, "o");

        let mut b = Netlist::new("or");
        let x2 = b.add_input("x");
        let y2 = b.add_input("y");
        let out2 = b.add_gate(CellKind::Or, &[x2, y2]);
        b.mark_output(out2, "o");

        let mut cnf = Cnf::new();
        let (enc_a, _, diff) = miter(&a, &b, &mut cnf).expect("miter");
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve_with_assumptions(&[diff]) {
            SatResult::Sat(model) => {
                let xi = model[enc_a.input_vars[0].index()];
                let yi = model[enc_a.input_vars[1].index()];
                // AND and OR differ exactly when inputs differ
                assert_ne!(xi & yi, xi | yi);
            }
            SatResult::Unsat => panic!("AND vs OR must differ"),
        }
    }
}
