//! Tseitin encoding of netlists and miter construction.
//!
//! The bridge between the circuit world and the solver: every net becomes
//! a variable, every gate a handful of clauses. [`miter`] builds the
//! classical equivalence-checking construction — two circuits sharing
//! inputs, with an output asserting that *some* primary output differs.

use crate::cnf::{CnfBuilder, GatedCnf, Lit, Var};
use seceda_netlist::{CellKind, NetId, Netlist, NetlistError};

/// The variable mapping produced by encoding a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistEncoding {
    /// `vars[net.index()]` is the CNF variable of that net.
    pub vars: Vec<Var>,
    /// Variables of the primary inputs, in port order.
    pub input_vars: Vec<Var>,
    /// Variables of the primary outputs, in port order.
    pub output_vars: Vec<Var>,
}

impl NetlistEncoding {
    /// The variable of a specific net.
    pub fn var_of(&self, net: seceda_netlist::NetId) -> Var {
        self.vars[net.index()]
    }
}

fn encode_nary<B: CnfBuilder>(cnf: &mut B, kind: CellKind, y: Lit, ins: &[Lit]) {
    match kind {
        CellKind::And | CellKind::Nand => {
            let yy = if kind == CellKind::Nand { !y } else { y };
            // yy <-> AND(ins)
            let mut big: Vec<Lit> = ins.iter().map(|&l| !l).collect();
            big.push(yy);
            for &l in ins {
                cnf.add_clause([!yy, l]);
            }
            cnf.add_clause(big);
        }
        CellKind::Or | CellKind::Nor => {
            let yy = if kind == CellKind::Nor { !y } else { y };
            let mut big: Vec<Lit> = ins.to_vec();
            big.push(!yy);
            for &l in ins {
                cnf.add_clause([yy, !l]);
            }
            cnf.add_clause(big);
        }
        CellKind::Xor | CellKind::Xnor => {
            // chain through auxiliaries
            let mut acc = ins[0];
            for &l in &ins[1..ins.len() - 1] {
                let t = cnf.new_var().pos();
                cnf.gate_xor(t, acc, l);
                acc = t;
            }
            let last = ins[ins.len() - 1];
            let yy = if kind == CellKind::Xnor { !y } else { y };
            cnf.gate_xor(yy, acc, last);
        }
        _ => unreachable!("encode_nary only handles n-ary kinds"),
    }
}

/// Encodes one gate's function `y <-> kind(ins)` as clauses. DFFs are a
/// no-op (their outputs model free state variables).
fn encode_gate<B: CnfBuilder>(cnf: &mut B, kind: CellKind, y: Lit, ins: &[Lit]) {
    match kind {
        CellKind::Const0 => cnf.add_clause([!y]),
        CellKind::Const1 => cnf.add_clause([y]),
        CellKind::Buf => cnf.gate_buf(y, ins[0]),
        CellKind::Not => cnf.gate_buf(y, !ins[0]),
        CellKind::Mux => cnf.gate_mux(y, ins[0], ins[1], ins[2]),
        CellKind::And | CellKind::Nand | CellKind::Or | CellKind::Nor => {
            if ins.len() == 2 {
                match kind {
                    CellKind::And => cnf.gate_and(y, ins[0], ins[1]),
                    CellKind::Nand => cnf.gate_and(!y, ins[0], ins[1]),
                    CellKind::Or => cnf.gate_or(y, ins[0], ins[1]),
                    CellKind::Nor => cnf.gate_or(!y, ins[0], ins[1]),
                    _ => unreachable!(),
                }
            } else {
                encode_nary(cnf, kind, y, ins);
            }
        }
        CellKind::Xor | CellKind::Xnor => {
            if ins.len() == 2 {
                let yy = if kind == CellKind::Xnor { !y } else { y };
                cnf.gate_xor(yy, ins[0], ins[1]);
            } else {
                encode_nary(cnf, kind, y, ins);
            }
        }
        CellKind::Dff => { /* output stays free */ }
    }
}

/// Encodes the combinational logic of `nl` into `cnf`, allocating one
/// variable per net (plus auxiliaries for wide XORs). DFF outputs are
/// left unconstrained (free variables), which models an arbitrary state —
/// callers doing bounded model checking unroll explicitly.
///
/// The sink is any [`CnfBuilder`]: a [`Cnf`](crate::Cnf) under
/// construction, or a live [`Solver`](crate::Solver) for incremental
/// encodings.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] on cyclic logic.
pub fn encode_netlist<B: CnfBuilder>(
    nl: &Netlist,
    cnf: &mut B,
) -> Result<NetlistEncoding, NetlistError> {
    let order = nl.topo_order()?;
    let vars: Vec<Var> = (0..nl.num_nets()).map(|_| cnf.new_var()).collect();
    for gid in order {
        let g = nl.gate(gid);
        let y = vars[g.output.index()].pos();
        let ins: Vec<Lit> = g.inputs.iter().map(|&i| vars[i.index()].pos()).collect();
        encode_gate(cnf, g.kind, y, &ins);
    }
    Ok(NetlistEncoding {
        input_vars: nl.inputs().iter().map(|&n| vars[n.index()]).collect(),
        output_vars: nl.outputs().iter().map(|&(n, _)| vars[n.index()]).collect(),
        vars,
    })
}

/// Incrementally encodes the *fan-out cone* of a fault on `net` against
/// an existing good-circuit encoding, gating every added clause on
/// `guard` (add `guard.var()` as a selector: assume `!guard` to activate
/// the cone, add a root-level unit `guard` to retire it).
///
/// `faulty_source` is the literal carrying the faulty value of `net`
/// (a forced-constant variable for stuck-at faults, the inverted good
/// literal for bit flips). Only gates with at least one cone input are
/// re-encoded with fresh variables; every net outside the cone reuses
/// the good encoding, so the incremental cost is proportional to the
/// cone, not the circuit. Cones stop at DFFs: both copies share the same
/// free state variables, so a fault cannot fake a difference through an
/// unconstrained next-state value.
///
/// Returns `(output port index, faulty output literal)` for each primary
/// output whose value can differ — an empty result proves the fault
/// cannot reach any output (untestable by structure alone).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] on cyclic logic.
///
/// # Panics
///
/// Panics if `good` was not produced by encoding `nl`.
pub fn encode_faulty_cone<B: CnfBuilder>(
    nl: &Netlist,
    good: &NetlistEncoding,
    net: NetId,
    faulty_source: Lit,
    guard: Lit,
    sink: &mut B,
) -> Result<Vec<(usize, Lit)>, NetlistError> {
    assert_eq!(
        good.vars.len(),
        nl.num_nets(),
        "good encoding does not match the netlist"
    );
    let order = nl.topo_order()?;
    let mut faulty: Vec<Option<Lit>> = vec![None; nl.num_nets()];
    faulty[net.index()] = Some(faulty_source);
    let mut gated = GatedCnf::new(sink, guard);
    for gid in order {
        let g = nl.gate(gid);
        if faulty[g.output.index()].is_some() {
            continue; // the fault site itself: its driver is bypassed
        }
        if g.inputs.iter().all(|&i| faulty[i.index()].is_none()) {
            continue; // outside the cone: reuse the good encoding
        }
        let ins: Vec<Lit> = g
            .inputs
            .iter()
            .map(|&i| faulty[i.index()].unwrap_or_else(|| good.vars[i.index()].pos()))
            .collect();
        let y = gated.new_var().pos();
        faulty[g.output.index()] = Some(y);
        encode_gate(&mut gated, g.kind, y, &ins);
    }
    Ok(nl
        .outputs()
        .iter()
        .enumerate()
        .filter_map(|(k, &(onet, _))| faulty[onet.index()].map(|l| (k, l)))
        .collect())
}

/// A value in a partially evaluated encoding: a known constant, or a
/// solver literal carrying the value symbolically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// The net is a known constant under the given input bindings.
    Const(bool),
    /// The net's value is carried by this literal.
    Lit(Lit),
}

impl Signal {
    /// Lowers the signal to a literal, mapping constants onto a literal
    /// that is false in every model (`const_false`).
    fn as_lit(self, const_false: Lit) -> Lit {
        match self {
            Signal::Const(false) => const_false,
            Signal::Const(true) => !const_false,
            Signal::Lit(l) => l,
        }
    }
}

/// Encodes one gate under partially constant inputs, folding away
/// whatever the constants decide: fully constant gates evaluate on the
/// spot, absorbing inputs (a 0 into an AND, a 1 into an OR) kill the
/// gate, neutral inputs are dropped, and single-survivor gates collapse
/// to a (possibly negated) wire.
fn fold_gate<B: CnfBuilder>(
    cnf: &mut B,
    const_false: Lit,
    kind: CellKind,
    ins: &[Signal],
) -> Signal {
    if kind != CellKind::Dff && ins.iter().all(|v| matches!(v, Signal::Const(_))) {
        let bools: Vec<bool> = ins
            .iter()
            .map(|v| match v {
                Signal::Const(b) => *b,
                Signal::Lit(_) => unreachable!(),
            })
            .collect();
        return Signal::Const(kind.eval(&bools));
    }
    match kind {
        CellKind::Const0 => Signal::Const(false),
        CellKind::Const1 => Signal::Const(true),
        CellKind::Buf => ins[0],
        CellKind::Not => match ins[0] {
            Signal::Const(b) => Signal::Const(!b),
            Signal::Lit(l) => Signal::Lit(!l),
        },
        CellKind::Dff => unreachable!("DFF outputs are pre-bound as free variables"),
        CellKind::And | CellKind::Nand => {
            let inv = kind == CellKind::Nand;
            if ins.contains(&Signal::Const(false)) {
                return Signal::Const(inv);
            }
            // remaining constants are all true, hence neutral
            let syms: Vec<Lit> = ins
                .iter()
                .filter_map(|v| match v {
                    Signal::Lit(l) => Some(*l),
                    Signal::Const(_) => None,
                })
                .collect();
            match syms[..] {
                [l] => Signal::Lit(if inv { !l } else { l }),
                _ => {
                    let y = cnf.new_var().pos();
                    for &l in &syms {
                        cnf.add_clause([!y, l]);
                    }
                    let mut big: Vec<Lit> = syms.iter().map(|&l| !l).collect();
                    big.push(y);
                    cnf.add_clause(big);
                    Signal::Lit(if inv { !y } else { y })
                }
            }
        }
        CellKind::Or | CellKind::Nor => {
            let inv = kind == CellKind::Nor;
            if ins.contains(&Signal::Const(true)) {
                return Signal::Const(!inv);
            }
            let syms: Vec<Lit> = ins
                .iter()
                .filter_map(|v| match v {
                    Signal::Lit(l) => Some(*l),
                    Signal::Const(_) => None,
                })
                .collect();
            match syms[..] {
                [l] => Signal::Lit(if inv { !l } else { l }),
                _ => {
                    let y = cnf.new_var().pos();
                    for &l in &syms {
                        cnf.add_clause([y, !l]);
                    }
                    let mut big = syms.clone();
                    big.push(!y);
                    cnf.add_clause(big);
                    Signal::Lit(if inv { !y } else { y })
                }
            }
        }
        CellKind::Xor | CellKind::Xnor => {
            let mut parity = kind == CellKind::Xnor;
            let mut syms: Vec<Lit> = Vec::new();
            for v in ins {
                match v {
                    Signal::Const(b) => parity ^= b,
                    Signal::Lit(l) => syms.push(*l),
                }
            }
            let mut acc = syms[0];
            for &l in &syms[1..] {
                let t = cnf.new_var().pos();
                cnf.gate_xor(t, acc, l);
                acc = t;
            }
            Signal::Lit(if parity { !acc } else { acc })
        }
        CellKind::Mux => match ins[0] {
            Signal::Const(s) => ins[if s { 2 } else { 1 }],
            Signal::Lit(sel) => match (ins[1], ins[2]) {
                (Signal::Const(a), Signal::Const(b)) if a == b => Signal::Const(a),
                (Signal::Const(false), Signal::Const(true)) => Signal::Lit(sel),
                (Signal::Const(true), Signal::Const(false)) => Signal::Lit(!sel),
                (a, b) => {
                    let y = cnf.new_var().pos();
                    cnf.gate_mux(y, sel, a.as_lit(const_false), b.as_lit(const_false));
                    Signal::Lit(y)
                }
            },
        },
    }
}

/// Encodes `nl` under *bound inputs* — each primary input is either a
/// known constant or an externally supplied literal — folding constants
/// through the circuit so only the logic that actually depends on
/// symbolic inputs costs variables and clauses.
///
/// This is the workhorse of the persistent-solver SAT attack: an
/// observation copy has all functional inputs constant and only the key
/// inputs symbolic, so the folded copy shrinks to the key-dependent
/// cone. `const_false` must be a literal that is false in every model
/// (callers allocate one variable and add a unit clause once); it is
/// only used to lower residual constants inside mixed MUXes. DFF outputs
/// are fresh free variables, exactly as in [`encode_netlist`].
///
/// Returns one [`Signal`] per primary output, in port order.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] on cyclic logic.
///
/// # Panics
///
/// Panics unless exactly one binding per primary input is given.
pub fn encode_netlist_bound<B: CnfBuilder>(
    nl: &Netlist,
    bindings: &[Signal],
    const_false: Lit,
    sink: &mut B,
) -> Result<Vec<Signal>, NetlistError> {
    assert_eq!(
        bindings.len(),
        nl.inputs().len(),
        "one binding per primary input"
    );
    let order = nl.topo_order()?;
    let mut vals: Vec<Option<Signal>> = vec![None; nl.num_nets()];
    for (k, &pi) in nl.inputs().iter().enumerate() {
        vals[pi.index()] = Some(bindings[k]);
    }
    for d in nl.dffs() {
        let out = nl.gate(d).output;
        vals[out.index()] = Some(Signal::Lit(sink.new_var().pos()));
    }
    for gid in order {
        let g = nl.gate(gid);
        let ins: Vec<Signal> = g
            .inputs
            .iter()
            .map(|&i| vals[i.index()].expect("topological order"))
            .collect();
        vals[g.output.index()] = Some(fold_gate(sink, const_false, g.kind, &ins));
    }
    Ok(nl
        .outputs()
        .iter()
        .map(|&(n, _)| vals[n.index()].expect("outputs are driven"))
        .collect())
}

/// Builds a miter of two combinational netlists with identical interfaces:
/// shared primary inputs, and a single literal (returned) that is true iff
/// at least one primary output differs.
///
/// Asking the solver for that literal answers equivalence: UNSAT under
/// `[diff]` means the circuits agree on every input.
///
/// # Errors
///
/// Returns a netlist error if either circuit is cyclic.
///
/// # Panics
///
/// Panics if the interfaces (input/output counts) do not match.
pub fn miter<B: CnfBuilder>(
    a: &Netlist,
    b: &Netlist,
    cnf: &mut B,
) -> Result<(NetlistEncoding, NetlistEncoding, Lit), NetlistError> {
    assert_eq!(
        a.inputs().len(),
        b.inputs().len(),
        "miter needs matching input counts"
    );
    assert_eq!(
        a.outputs().len(),
        b.outputs().len(),
        "miter needs matching output counts"
    );
    let enc_a = encode_netlist(a, cnf)?;
    let enc_b = encode_netlist(b, cnf)?;
    // tie the inputs together
    for (&va, &vb) in enc_a.input_vars.iter().zip(&enc_b.input_vars) {
        cnf.gate_buf(va.pos(), vb.pos());
    }
    // per-output difference bits
    let mut diffs = Vec::with_capacity(enc_a.output_vars.len());
    for (&oa, &ob) in enc_a.output_vars.iter().zip(&enc_b.output_vars) {
        let d = cnf.new_var().pos();
        cnf.gate_xor(d, oa.pos(), ob.pos());
        diffs.push(d);
    }
    // diff <-> OR(diffs)
    let diff = cnf.new_var().pos();
    for &d in &diffs {
        cnf.add_clause([diff, !d]);
    }
    let mut big = diffs.clone();
    big.push(!diff);
    cnf.add_clause(big);
    Ok((enc_a, enc_b, diff))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;
    use crate::solver::{SatResult, Solver};
    use seceda_netlist::{c17, majority, CellKind};

    /// Checks every CNF model of an encoded netlist against simulation.
    fn check_encoding_consistency(nl: &Netlist) {
        let mut cnf = Cnf::new();
        let enc = encode_netlist(nl, &mut cnf).expect("encode");
        let n_inputs = nl.inputs().len();
        for pattern in 0..(1u32 << n_inputs) {
            let inputs: Vec<bool> = (0..n_inputs).map(|b| (pattern >> b) & 1 == 1).collect();
            let expected = nl.evaluate(&inputs);
            let assumptions: Vec<Lit> = enc
                .input_vars
                .iter()
                .zip(&inputs)
                .map(|(&v, &b)| v.lit(b))
                .collect();
            let mut solver = Solver::from_cnf(&cnf);
            match solver.solve_with_assumptions(&assumptions) {
                SatResult::Sat(model) => {
                    for (k, &ov) in enc.output_vars.iter().enumerate() {
                        assert_eq!(
                            model[ov.index()],
                            expected[k],
                            "pattern {pattern} output {k}"
                        );
                    }
                }
                SatResult::Unsat => panic!("encoding unsat under concrete inputs"),
            }
        }
    }

    #[test]
    fn c17_encoding_matches_simulation() {
        check_encoding_consistency(&c17());
    }

    #[test]
    fn majority_encoding_matches_simulation() {
        check_encoding_consistency(&majority());
    }

    #[test]
    fn wide_gates_encoding() {
        let mut nl = Netlist::new("wide");
        let ins: Vec<_> = (0..5).map(|i| nl.add_input(format!("i{i}"))).collect();
        let a = nl.add_gate(CellKind::And, &ins);
        let o = nl.add_gate(CellKind::Or, &ins);
        let x = nl.add_gate(CellKind::Xor, &ins);
        let nx = nl.add_gate(CellKind::Xnor, &ins);
        let na = nl.add_gate(CellKind::Nand, &ins);
        let no = nl.add_gate(CellKind::Nor, &ins);
        for (net, name) in [
            (a, "a"),
            (o, "o"),
            (x, "x"),
            (nx, "nx"),
            (na, "na"),
            (no, "no"),
        ] {
            nl.mark_output(net, name);
        }
        check_encoding_consistency(&nl);
    }

    #[test]
    fn miter_proves_equivalence() {
        // two structurally different implementations of XOR
        let mut a = Netlist::new("xor1");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let out = a.add_gate(CellKind::Xor, &[x, y]);
        a.mark_output(out, "o");

        let mut b = Netlist::new("xor2");
        let x2 = b.add_input("x");
        let y2 = b.add_input("y");
        let nx = b.add_gate(CellKind::Not, &[x2]);
        let ny = b.add_gate(CellKind::Not, &[y2]);
        let t1 = b.add_gate(CellKind::And, &[x2, ny]);
        let t2 = b.add_gate(CellKind::And, &[nx, y2]);
        let out2 = b.add_gate(CellKind::Or, &[t1, t2]);
        b.mark_output(out2, "o");

        let mut cnf = Cnf::new();
        let (_, _, diff) = miter(&a, &b, &mut cnf).expect("miter");
        let mut solver = Solver::from_cnf(&cnf);
        assert_eq!(
            solver.solve_with_assumptions(&[diff]),
            SatResult::Unsat,
            "equivalent circuits must have an unsat miter"
        );
    }

    #[test]
    fn miter_finds_counterexample() {
        let mut a = Netlist::new("and");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let out = a.add_gate(CellKind::And, &[x, y]);
        a.mark_output(out, "o");

        let mut b = Netlist::new("or");
        let x2 = b.add_input("x");
        let y2 = b.add_input("y");
        let out2 = b.add_gate(CellKind::Or, &[x2, y2]);
        b.mark_output(out2, "o");

        let mut cnf = Cnf::new();
        let (enc_a, _, diff) = miter(&a, &b, &mut cnf).expect("miter");
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve_with_assumptions(&[diff]) {
            SatResult::Sat(model) => {
                let xi = model[enc_a.input_vars[0].index()];
                let yi = model[enc_a.input_vars[1].index()];
                // AND and OR differ exactly when inputs differ
                assert_ne!(xi & yi, xi | yi);
            }
            SatResult::Unsat => panic!("AND vs OR must differ"),
        }
    }

    #[test]
    fn fully_bound_encoding_folds_to_evaluation() {
        // with every input constant, the folded encoding must collapse to
        // plain evaluation without emitting a single clause or variable
        for nl in [c17(), majority()] {
            let n = nl.inputs().len();
            for pattern in 0..(1u32 << n) {
                let inputs: Vec<bool> = (0..n).map(|b| (pattern >> b) & 1 == 1).collect();
                let mut cnf = Cnf::new();
                let cf = cnf.new_var().pos();
                let vars_before = cnf.num_vars();
                let clauses_before = cnf.clauses().len();
                let bindings: Vec<Signal> = inputs.iter().map(|&b| Signal::Const(b)).collect();
                let outs = encode_netlist_bound(&nl, &bindings, cf, &mut cnf).expect("encode");
                assert_eq!(
                    cnf.num_vars(),
                    vars_before,
                    "no variables for constant logic"
                );
                assert_eq!(cnf.clauses().len(), clauses_before, "no clauses either");
                let expected = nl.evaluate(&inputs);
                for (k, out) in outs.iter().enumerate() {
                    assert_eq!(
                        *out,
                        Signal::Const(expected[k]),
                        "pattern {pattern} output {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn bound_encoding_matches_full_encoding_on_symbolic_inputs() {
        // all-symbolic bindings: the folded encoding must define the same
        // function as encode_netlist — check every model on every input
        use seceda_netlist::{random_circuit, RandomCircuitConfig};
        for seed in [3u64, 8, 19] {
            let nl = random_circuit(&RandomCircuitConfig {
                num_inputs: 5,
                num_gates: 40,
                num_outputs: 3,
                with_xor: true,
                seed,
            });
            let mut cnf = Cnf::new();
            let cf = cnf.new_var().pos();
            cnf.add_clause([!cf]);
            let in_lits: Vec<Lit> = (0..5).map(|_| cnf.new_var().pos()).collect();
            let bindings: Vec<Signal> = in_lits.iter().map(|&l| Signal::Lit(l)).collect();
            let outs = encode_netlist_bound(&nl, &bindings, cf, &mut cnf).expect("encode");
            for pattern in 0..(1u32 << 5) {
                let inputs: Vec<bool> = (0..5).map(|b| (pattern >> b) & 1 == 1).collect();
                let assumptions: Vec<Lit> = in_lits
                    .iter()
                    .zip(&inputs)
                    .map(|(&l, &b)| if b { l } else { !l })
                    .collect();
                let mut solver = Solver::from_cnf(&cnf);
                match solver.solve_with_assumptions(&assumptions) {
                    SatResult::Sat(model) => {
                        let expected = nl.evaluate(&inputs);
                        for (k, out) in outs.iter().enumerate() {
                            let got = match out {
                                Signal::Const(b) => *b,
                                Signal::Lit(l) => l.eval(model[l.var().index()]),
                            };
                            assert_eq!(got, expected[k], "seed {seed} pattern {pattern} out {k}");
                        }
                    }
                    SatResult::Unsat => panic!("bound encoding unsat under concrete inputs"),
                }
            }
        }
    }

    #[test]
    fn partially_bound_encoding_matches_cofactor() {
        // half constants, half symbolic — the folded cone must equal the
        // cofactor of the circuit under the fixed bits
        let nl = c17();
        let fixed = [true, false, true];
        let mut cnf = Cnf::new();
        let cf = cnf.new_var().pos();
        cnf.add_clause([!cf]);
        let free: Vec<Lit> = (0..2).map(|_| cnf.new_var().pos()).collect();
        let bindings: Vec<Signal> = fixed
            .iter()
            .map(|&b| Signal::Const(b))
            .chain(free.iter().map(|&l| Signal::Lit(l)))
            .collect();
        let outs = encode_netlist_bound(&nl, &bindings, cf, &mut cnf).expect("encode");
        for pattern in 0..4u32 {
            let tail: Vec<bool> = (0..2).map(|b| (pattern >> b) & 1 == 1).collect();
            let mut inputs = fixed.to_vec();
            inputs.extend(&tail);
            let assumptions: Vec<Lit> = free
                .iter()
                .zip(&tail)
                .map(|(&l, &b)| if b { l } else { !l })
                .collect();
            let mut solver = Solver::from_cnf(&cnf);
            match solver.solve_with_assumptions(&assumptions) {
                SatResult::Sat(model) => {
                    let expected = nl.evaluate(&inputs);
                    for (k, out) in outs.iter().enumerate() {
                        let got = match out {
                            Signal::Const(b) => *b,
                            Signal::Lit(l) => l.eval(model[l.var().index()]),
                        };
                        assert_eq!(got, expected[k], "pattern {pattern} out {k}");
                    }
                }
                SatResult::Unsat => panic!("cofactor encoding unsat under concrete inputs"),
            }
        }
    }
}
