//! Property-based tests for the SAT solver and the netlist encoder.

use seceda_sat::{encode_netlist, Cnf, Lit, SatResult, Solver};
use seceda_testkit::prelude::*;

fn random_cnf(num_vars: usize, clause_spec: &[Vec<(usize, bool)>]) -> Cnf {
    let mut cnf = Cnf::new();
    let vars = cnf.new_vars(num_vars);
    for clause in clause_spec {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(v, sign)| vars[v % num_vars].lit(sign))
            .collect();
        cnf.add_clause(lits);
    }
    cnf
}

fn brute_force_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars();
    (0..(1u32 << n)).any(|m| {
        let model: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
        cnf.is_satisfied_by(&model)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_agrees_with_brute_force(
        num_vars in 2usize..9,
        clauses in proptest::collection::vec(
            proptest::collection::vec((0usize..16, any::<bool>()), 1..4),
            0..30
        ),
    ) {
        let cnf = random_cnf(num_vars, &clauses);
        let brute = brute_force_sat(&cnf);
        let result = Solver::from_cnf(&cnf).solve();
        prop_assert_eq!(result.is_sat(), brute);
        if let SatResult::Sat(model) = result {
            prop_assert!(cnf.is_satisfied_by(&model));
        }
    }

    #[test]
    fn assumptions_behave_like_units(
        num_vars in 2usize..8,
        clauses in proptest::collection::vec(
            proptest::collection::vec((0usize..16, any::<bool>()), 1..4),
            1..20
        ),
        assumption_spec in proptest::collection::vec((0usize..16, any::<bool>()), 1..4),
    ) {
        let cnf = random_cnf(num_vars, &clauses);
        let mut with_units = cnf.clone();
        let mut assumptions = Vec::new();
        {
            // reconstruct the vars by index
            for &(v, sign) in &assumption_spec {
                let var = seceda_sat::Var::from_index(v % num_vars);
                assumptions.push(var.lit(sign));
                with_units.add_clause([var.lit(sign)]);
            }
        }
        let via_assumptions = Solver::from_cnf(&cnf)
            .solve_with_assumptions(&assumptions)
            .is_sat();
        let via_units = Solver::from_cnf(&with_units).solve().is_sat();
        prop_assert_eq!(via_assumptions, via_units);
    }

    #[test]
    fn solver_is_reusable_across_queries(
        num_vars in 2usize..7,
        clauses in proptest::collection::vec(
            proptest::collection::vec((0usize..16, any::<bool>()), 1..4),
            1..15
        ),
    ) {
        let cnf = random_cnf(num_vars, &clauses);
        let expect = Solver::from_cnf(&cnf).solve().is_sat();
        let mut solver = Solver::from_cnf(&cnf);
        for _ in 0..3 {
            prop_assert_eq!(solver.solve().is_sat(), expect);
        }
    }

    #[test]
    fn reduce_db_never_flips_result(
        num_vars in 2usize..9,
        clauses in proptest::collection::vec(
            proptest::collection::vec((0usize..16, any::<bool>()), 1..4),
            0..30
        ),
    ) {
        // an aggressively small pinned clause budget forces constant
        // database reduction; satisfiability must be unaffected
        let cnf = random_cnf(num_vars, &clauses);
        let brute = brute_force_sat(&cnf);
        let mut solver = Solver::from_cnf(&cnf);
        solver.set_reduce_db_limit(16);
        let result = solver.solve();
        prop_assert_eq!(result.is_sat(), brute);
        if let SatResult::Sat(model) = result {
            prop_assert!(cnf.is_satisfied_by(&model));
        }
        // the solver stays sound for reuse after reductions
        prop_assert_eq!(solver.solve().is_sat(), brute);
    }

    #[test]
    fn heap_decide_matches_linear_scan(
        num_vars in 2usize..9,
        clauses in proptest::collection::vec(
            proptest::collection::vec((0usize..16, any::<bool>()), 1..4),
            1..30
        ),
    ) {
        // the order heap must pick exactly the variable a linear argmax
        // over VSIDS activities would pick: highest activity, lowest
        // index on ties — both on a fresh solver (all activities equal)
        // and after a solve has bumped and rescaled activities
        let cnf = random_cnf(num_vars, &clauses);
        let mut solver = Solver::from_cnf(&cnf);
        let check = |solver: &mut Solver| {
            let heap_pick = solver.next_decision_var();
            let mut best: Option<seceda_sat::Var> = None;
            for i in 0..solver.num_vars() {
                let v = seceda_sat::Var::from_index(i);
                if solver.var_value(v).is_some() {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => solver.var_activity(v) > solver.var_activity(b),
                };
                if better {
                    best = Some(v);
                }
            }
            (heap_pick, best)
        };
        let (h0, l0) = check(&mut solver);
        prop_assert_eq!(h0, l0, "fresh solver");
        solver.solve();
        let (h1, l1) = check(&mut solver);
        prop_assert_eq!(h1, l1, "after solve");
    }

    #[test]
    fn encoded_circuit_models_respect_simulation(seed in 0u64..3000, gates in 3usize..25) {
        let nl = seceda_netlist::random_circuit(&seceda_netlist::RandomCircuitConfig {
            num_inputs: 4,
            num_gates: gates,
            num_outputs: 2,
            with_xor: true,
            seed,
        });
        let mut cnf = Cnf::new();
        let enc = encode_netlist(&nl, &mut cnf).expect("encode");
        // any unconstrained model of the encoding must be consistent with
        // simulating the circuit on the model's own inputs
        if let SatResult::Sat(model) = Solver::from_cnf(&cnf).solve() {
            let inputs: Vec<bool> = enc.input_vars.iter().map(|v| model[v.index()]).collect();
            let expected = nl.evaluate(&inputs);
            let got: Vec<bool> = enc.output_vars.iter().map(|v| model[v.index()]).collect();
            prop_assert_eq!(got, expected);
        } else {
            prop_assert!(false, "circuit encodings are always satisfiable");
        }
    }
}
