//! Budget property suite: budgeted solving must be *monotone* (a larger
//! budget never flips a determined answer, and never un-determines a
//! query a smaller budget could finish), *deterministic* (conflict- and
//! propagation-limited outcomes are pure functions of the formula,
//! independent of worker counts and portfolio size), and *prompt* (an
//! already-spent budget stops before any search; a passed deadline
//! reports to armed watchdogs).

use seceda_sat::{Budget, Cnf, CnfBuilder, Lit, Portfolio, SolveOutcome, Solver, StopReason};
use seceda_testkit::par::with_workers;
use seceda_testkit::prelude::*;
use seceda_trace::{StallSink, Watchdog, WatchdogConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The pigeonhole principle PHP(pigeons, holes): satisfiable iff
/// `pigeons <= holes`, and famously resolution-hard when `pigeons =
/// holes + 1` — the standard way to make a small formula burn an
/// honest number of conflicts.
fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
    let mut cnf = Cnf::new();
    let vars = cnf.new_vars(pigeons * holes);
    let p = |i: usize, j: usize| vars[i * holes + j];
    for i in 0..pigeons {
        cnf.add_clause((0..holes).map(|j| p(i, j).pos()));
    }
    for j in 0..holes {
        for a in 0..pigeons {
            for b in a + 1..pigeons {
                cnf.add_clause([p(a, j).neg(), p(b, j).neg()]);
            }
        }
    }
    cnf
}

fn portfolio_from_cnf(cnf: &Cnf, k: usize) -> Portfolio {
    let mut portfolio = Portfolio::new(cnf.num_vars(), k);
    for clause in cnf.clauses() {
        portfolio.add_clause(clause.iter().copied());
    }
    portfolio
}

fn random_cnf(num_vars: usize, clause_spec: &[Vec<(usize, bool)>]) -> Cnf {
    let mut cnf = Cnf::new();
    let vars = cnf.new_vars(num_vars);
    for clause in clause_spec {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(v, sign)| vars[v % num_vars].lit(sign))
            .collect();
        cnf.add_clause(lits);
    }
    cnf
}

/// Asserts the monotonicity contract over a growing budget ladder:
/// once some budget determines the query, every larger budget
/// determines it with the same answer (each solve on a fresh solver, so
/// the trajectories are directly comparable).
fn assert_budget_monotone(cnf: &Cnf, budgets: &[u64], make: impl Fn(u64) -> Budget) {
    let reference = Solver::from_cnf(cnf).solve().is_sat();
    let mut first_determined: Option<(u64, bool)> = None;
    for &b in budgets {
        let outcome = Solver::from_cnf(cnf).solve_budgeted(&[], &make(b));
        match outcome {
            SolveOutcome::Sat(_) | SolveOutcome::Unsat => {
                assert_eq!(
                    outcome.is_sat(),
                    reference,
                    "budget {b} flipped the determined answer"
                );
                if first_determined.is_none() {
                    first_determined = Some((b, outcome.is_sat()));
                }
            }
            SolveOutcome::Indeterminate(reason) => {
                assert!(
                    first_determined.is_none(),
                    "budget {b} ({reason}) un-determined a query budget \
                     {:?} could finish",
                    first_determined
                );
            }
        }
    }
    assert!(
        first_determined.is_some(),
        "the largest budget must determine the query"
    );
}

#[test]
fn conflict_budget_is_monotone_on_hard_formulas() {
    // unsat and resolution-hard: small budgets genuinely truncate
    let budgets: Vec<u64> = (0..18).map(|i| 1u64 << i).collect();
    assert_budget_monotone(&pigeonhole(6, 5), &budgets, |b| {
        Budget::unlimited().with_max_conflicts(b)
    });
    // satisfiable sibling
    assert_budget_monotone(&pigeonhole(5, 5), &budgets, |b| {
        Budget::unlimited().with_max_conflicts(b)
    });
}

#[test]
fn propagation_budget_is_monotone_on_hard_formulas() {
    let budgets: Vec<u64> = (0..26).map(|i| 1u64 << i).collect();
    assert_budget_monotone(&pigeonhole(6, 5), &budgets, |b| {
        Budget::unlimited().with_max_propagations(b)
    });
    assert_budget_monotone(&pigeonhole(5, 5), &budgets, |b| {
        Budget::unlimited().with_max_propagations(b)
    });
}

#[test]
fn small_conflict_budget_truncates_the_pigeonhole_proof() {
    // sanity that the ladder above actually exercises both regimes:
    // 50 conflicts cannot refute PHP(6,5), a million can
    let starved = Solver::from_cnf(&pigeonhole(6, 5))
        .solve_budgeted(&[], &Budget::unlimited().with_max_conflicts(50));
    assert_eq!(starved, SolveOutcome::Indeterminate(StopReason::Conflicts));
    let ample = Solver::from_cnf(&pigeonhole(6, 5))
        .solve_budgeted(&[], &Budget::unlimited().with_max_conflicts(1 << 20));
    assert_eq!(ample, SolveOutcome::Unsat);
}

#[test]
fn zero_budgets_stop_before_any_search() {
    // an already-spent budget (a `Budget::minus` remainder) must refuse
    // deterministically even on formulas too small for in-search polls
    let cnf = pigeonhole(3, 3);
    let mut solver = Solver::from_cnf(&cnf);
    assert_eq!(
        solver.solve_budgeted(&[], &Budget::unlimited().with_max_conflicts(0)),
        SolveOutcome::Indeterminate(StopReason::Conflicts)
    );
    assert_eq!(
        solver.solve_budgeted(&[], &Budget::unlimited().with_max_propagations(0)),
        SolveOutcome::Indeterminate(StopReason::Propagations)
    );
    // the refusals spent nothing and the solver answers normally after
    assert!(solver.solve_budgeted(&[], &Budget::unlimited()).is_sat());
}

#[test]
fn outcome_is_deterministic_across_workers_and_portfolio_sizes() {
    let cnf = pigeonhole(6, 5);
    let starved = Budget::unlimited().with_max_conflicts(50);
    let ample = Budget::unlimited().with_max_conflicts(1 << 20);
    for workers in [1usize, 2, 8] {
        for k in [1usize, 2, 4] {
            let (under, over) = with_workers(workers, || {
                let under = portfolio_from_cnf(&cnf, k).solve_budgeted(&[], &starved);
                let over = portfolio_from_cnf(&cnf, k).solve_budgeted(&[], &ample);
                (under, over)
            });
            assert_eq!(
                under,
                SolveOutcome::Indeterminate(StopReason::Conflicts),
                "workers={workers} k={k}"
            );
            assert_eq!(over, SolveOutcome::Unsat, "workers={workers} k={k}");
        }
    }
}

#[test]
fn passed_deadline_is_indeterminate_and_reports_to_armed_watchdog() {
    // the watchdog's own stall timeout is far beyond the test; only the
    // event-driven budget report can reach the buffer sink
    let buffer = Arc::new(Mutex::new(String::new()));
    let mut config = WatchdogConfig::new(Duration::from_secs(600));
    config.sink = StallSink::Buffer(Arc::clone(&buffer));
    let wd = Watchdog::start_with(config);
    let outcome = Solver::from_cnf(&pigeonhole(6, 5))
        .solve_budgeted(&[], &Budget::unlimited().with_deadline(Instant::now()));
    assert_eq!(outcome, SolveOutcome::Indeterminate(StopReason::Deadline));
    assert!(wd.stall_reports() >= 1, "deadline must reach the watchdog");
    let report = buffer.lock().expect("buffer").clone();
    assert!(
        report.contains("BUDGET EXHAUSTED in sat.solve wall-clock deadline"),
        "stall report missing or wrong: {report:?}"
    );
    wd.stop();
}

#[test]
fn pre_raised_cancel_flag_stops_before_search() {
    let flag = Arc::new(AtomicBool::new(true));
    let cnf = pigeonhole(4, 4);
    let mut solver = Solver::from_cnf(&cnf);
    let outcome = solver.solve_budgeted(&[], &Budget::unlimited().with_cancel(Arc::clone(&flag)));
    assert_eq!(outcome, SolveOutcome::Indeterminate(StopReason::Cancelled));
    // lowering the flag lets the same budget through
    flag.store(false, Ordering::Relaxed);
    let outcome = solver.solve_budgeted(&[], &Budget::unlimited().with_cancel(flag));
    assert!(outcome.is_sat());
}

#[test]
fn suspended_solver_keeps_learning_and_finishes_under_slices() {
    // one solver, repeated 100-conflict slices: clauses learned in a
    // suspended slice carry over, so the slices converge on the same
    // answer one unbudgeted call produces (PHP(7,6) needs several
    // hundred conflicts from scratch)
    let cnf = pigeonhole(7, 6);
    let slice = Budget::unlimited().with_max_conflicts(100);
    let mut solver = Solver::from_cnf(&cnf);
    let mut suspensions = 0usize;
    let final_outcome = loop {
        match solver.solve_budgeted(&[], &slice) {
            SolveOutcome::Indeterminate(StopReason::Conflicts) => {
                suspensions += 1;
                assert!(suspensions < 10_000, "slices must converge");
            }
            other => break other,
        }
    };
    assert_eq!(final_outcome, SolveOutcome::Unsat);
    assert!(
        suspensions > 0,
        "PHP(7,6) must not fit one 100-conflict slice"
    );
    assert!(solver.num_conflicts >= 100 * suspensions as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conflict_budget_monotone_on_random_cnf(
        num_vars in 2usize..9,
        clauses in proptest::collection::vec(
            proptest::collection::vec((0usize..16, any::<bool>()), 1..4),
            0..30
        ),
    ) {
        let cnf = random_cnf(num_vars, &clauses);
        let reference = Solver::from_cnf(&cnf).solve().is_sat();
        let mut determined_at: Option<u64> = None;
        for b in [1u64, 2, 4, 16, 256, 1 << 16] {
            let outcome = Solver::from_cnf(&cnf)
                .solve_budgeted(&[], &Budget::unlimited().with_max_conflicts(b));
            if outcome.is_determined() {
                prop_assert_eq!(outcome.is_sat(), reference, "budget {}", b);
                determined_at.get_or_insert(b);
            } else {
                prop_assert!(determined_at.is_none(), "budget {} regressed", b);
            }
        }
        prop_assert!(determined_at.is_some());
    }

    #[test]
    fn propagation_budget_monotone_on_random_cnf(
        num_vars in 2usize..9,
        clauses in proptest::collection::vec(
            proptest::collection::vec((0usize..16, any::<bool>()), 1..4),
            0..30
        ),
    ) {
        let cnf = random_cnf(num_vars, &clauses);
        let reference = Solver::from_cnf(&cnf).solve().is_sat();
        let mut determined_at: Option<u64> = None;
        for b in [1u64, 64, 1024, 1 << 14, 1 << 22] {
            let outcome = Solver::from_cnf(&cnf)
                .solve_budgeted(&[], &Budget::unlimited().with_max_propagations(b));
            if outcome.is_determined() {
                prop_assert_eq!(outcome.is_sat(), reference, "budget {}", b);
                determined_at.get_or_insert(b);
            } else {
                prop_assert!(determined_at.is_none(), "budget {} regressed", b);
            }
        }
        prop_assert!(determined_at.is_some());
    }
}
