//! Tracer behaviour tests: nesting, self-time, rollups, thread safety,
//! disabled mode, and JSON-lines round-tripping.
//!
//! Every test runs inside [`seceda_trace::session`], which serializes on
//! a process-wide lock — parallel test threads cannot leak events into
//! each other's captures.

use seceda_testkit::json::Json;
use seceda_trace::{counter, drain, gauge, session, set_enabled, span, Event, Summary};
use std::time::Duration;

#[test]
fn spans_nest_and_account_self_time() {
    let ((), events) = session(|| {
        let mut root = span("outer");
        root.attr("label", "root");
        {
            let _child = span("inner");
            std::thread::sleep(Duration::from_millis(5));
        }
        {
            let _child = span("inner");
            std::thread::sleep(Duration::from_millis(5));
        }
    });
    let summary = Summary::of(&events);
    let outer = summary.spans_named("outer").next().expect("outer span");
    let inners: Vec<_> = summary.spans_named("inner").collect();
    assert_eq!(inners.len(), 2);
    for inner in &inners {
        assert_eq!(inner.parent, Some(outer.id), "inner nests under outer");
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
    }
    let children_total: u64 = inners.iter().map(|s| s.duration_ns()).sum();
    assert_eq!(
        summary.self_time_ns(outer),
        outer.duration_ns() - children_total,
        "self time is total minus direct children"
    );
    assert!(
        summary.self_time_ns(outer) < outer.duration_ns(),
        "sleeping children must shrink the parent's self time"
    );
    // the rendered tree shows the hierarchy and the attribute
    let tree = summary.render();
    assert!(tree.contains("outer"));
    assert!(tree.contains("  inner"));
    assert!(tree.contains("label=\"root\""));
}

#[test]
fn counters_and_gauges_roll_up() {
    let ((), events) = session(|| {
        counter("work.items", 3);
        counter("work.items", 4);
        counter("other.items", 1);
        gauge("depth", 2.0);
        gauge("depth", 5.0);
    });
    let summary = Summary::of(&events);
    assert_eq!(summary.counters["work.items"], 7);
    assert_eq!(summary.counters["other.items"], 1);
    assert_eq!(summary.gauges["depth"], 5.0, "gauges keep the last value");
    let rendered = summary.render();
    assert!(rendered.contains("work.items"));
    assert!(rendered.contains('7'));
}

#[test]
fn recorder_is_thread_safe_under_fanout() {
    const THREADS: usize = 8;
    const OPS: usize = 50;
    let ((), events) = session(|| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..OPS {
                        let mut sp = span("mt.op");
                        sp.attr("thread_local", true);
                        counter("mt.ops", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread");
        }
    });
    let summary = Summary::of(&events);
    assert_eq!(summary.counters["mt.ops"], (THREADS * OPS) as u64);
    assert_eq!(summary.spans_named("mt.op").count(), THREADS * OPS);
    // span nesting is per thread: worker spans are roots, not children
    // of whatever happened to be open elsewhere
    assert!(summary.spans_named("mt.op").all(|s| s.parent.is_none()));
}

#[test]
fn disabled_mode_records_nothing() {
    let (observed, events) = session(|| {
        set_enabled(false);
        let mut sp = span("off.work");
        assert!(!sp.is_recording());
        assert!(sp.id().is_none());
        sp.attr("ignored", 1usize);
        counter("off.count", 5);
        gauge("off.gauge", 1.0);
        drop(sp);
        let leaked = drain();
        set_enabled(true);
        leaked
    });
    assert!(observed.is_empty(), "disabled probes must record nothing");
    assert!(events.is_empty());
}

#[test]
fn json_lines_round_trip_through_testkit() {
    let ((), events) = session(|| {
        let mut root = span("export.root");
        root.attr("gates", 6usize);
        root.attr("area", 9.5);
        root.attr("stage", "logic synthesis");
        root.attr("ok", true);
        counter("export.count", 11);
        gauge("export.gauge", 0.25);
    });
    let lines = seceda_trace::to_json_lines(&events);
    let parsed: Vec<Json> = lines
        .lines()
        .map(|l| Json::parse(l).expect("every line is valid JSON"))
        .collect();
    assert_eq!(parsed.len(), events.len());
    let span_line = parsed
        .iter()
        .find(|j| j.get("type") == Some(&Json::Str("span".into())))
        .expect("span line");
    assert_eq!(
        span_line.get("name"),
        Some(&Json::Str("export.root".into()))
    );
    let attrs = span_line.get("attrs").expect("attrs object");
    assert_eq!(attrs.get("gates"), Some(&Json::Int(6)));
    assert_eq!(attrs.get("area"), Some(&Json::Num(9.5)));
    assert_eq!(attrs.get("ok"), Some(&Json::Bool(true)));
    let counter_line = parsed
        .iter()
        .find(|j| j.get("type") == Some(&Json::Str("counter".into())))
        .expect("counter line");
    assert_eq!(counter_line.get("delta"), Some(&Json::Int(11)));
    let gauge_line = parsed
        .iter()
        .find(|j| j.get("type") == Some(&Json::Str("gauge".into())))
        .expect("gauge line");
    assert_eq!(gauge_line.get("value"), Some(&Json::Num(0.25)));
}

#[test]
fn counters_attach_to_the_open_span() {
    let ((), events) = session(|| {
        let _sp = span("ctx");
        counter("ctx.count", 1);
    });
    let span_id = events
        .iter()
        .find_map(|e| match e {
            Event::Span(s) => Some(s.id),
            _ => None,
        })
        .expect("span recorded");
    let counter_span = events
        .iter()
        .find_map(|e| match e {
            Event::Counter(c) => Some(c.span),
            _ => None,
        })
        .expect("counter recorded");
    assert_eq!(counter_span, Some(span_id));
}
