//! Flight-recorder layer tests: histogram sessions, allocation
//! accounting determinism under threads, Chrome-trace export (JSON
//! escaping round-trip through `seceda_testkit::json`), the stall
//! watchdog's fire-then-clear behaviour, and lossless drains of
//! unfinished spans.
//!
//! Every recorder-touching test runs inside [`seceda_trace::session`],
//! which serializes on a process-wide lock.

use seceda_testkit::json::Json;
use seceda_trace::{
    drain, from_json_lines, hist_timer, histogram, progress, session, span, to_chrome_trace,
    to_json_lines, Event, StallSink, Summary, Watchdog, WatchdogConfig,
};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[test]
fn histogram_samples_aggregate_per_metric_in_summary() {
    let ((), events) = session(|| {
        for v in [100u64, 200, 400, 800, 100_000] {
            histogram("t.sample_ns", v);
        }
        histogram("t.other", 7);
        let _t = hist_timer("t.timed_ns");
    });
    let summary = Summary::of(&events);
    let h = summary.histogram("t.sample_ns").expect("histogram present");
    assert_eq!(h.count(), 5);
    assert_eq!(h.max(), 100_000);
    assert!(h.p50() >= 200 && h.p50() <= 500, "p50 = {}", h.p50());
    assert_eq!(summary.histogram("t.other").unwrap().count(), 1);
    assert_eq!(summary.histogram("t.timed_ns").unwrap().count(), 1);
    // the render carries the percentile line
    let rendered = summary.render();
    assert!(rendered.contains("histograms:"));
    assert!(rendered.contains("t.sample_ns"));
    assert!(rendered.contains("p99="));
}

#[test]
fn histogram_samples_attach_to_the_open_span() {
    let ((), events) = session(|| {
        let _sp = span("hctx");
        histogram("hctx.value", 42);
    });
    let span_id = events
        .iter()
        .find_map(|e| match e {
            Event::Span(s) => Some(s.id),
            _ => None,
        })
        .expect("span recorded");
    let hist_span = events
        .iter()
        .find_map(|e| match e {
            Event::Hist(h) => Some(h.span),
            _ => None,
        })
        .expect("hist recorded");
    assert_eq!(hist_span, Some(span_id));
}

#[test]
fn alloc_accounting_attributes_each_threads_allocations_to_its_own_span() {
    const PER_THREAD_BYTES: usize = 1 << 20;
    let ((), events) = session(|| {
        seceda_trace::alloc::set_alloc_counting(true);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut sp = span("alloc.worker");
                    sp.attr("worker", i as usize);
                    // a worker allocates exactly one big buffer; its span
                    // must see at least that, and a span that allocates
                    // nothing big must not inherit a sibling's megabyte
                    let buf = vec![i as u8; PER_THREAD_BYTES];
                    std::hint::black_box(&buf);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        seceda_trace::alloc::set_alloc_counting(false);
    });
    let summary = Summary::of(&events);
    let workers: Vec<_> = summary.spans_named("alloc.worker").collect();
    assert_eq!(workers.len(), 4);
    for w in &workers {
        let bytes = match w.attr("alloc_bytes") {
            Some(seceda_trace::AttrValue::Int(b)) => *b as usize,
            other => panic!("alloc_bytes attr missing/typed wrong: {other:?}"),
        };
        let count = match w.attr("alloc_count") {
            Some(seceda_trace::AttrValue::Int(c)) => *c,
            other => panic!("alloc_count attr missing/typed wrong: {other:?}"),
        };
        assert!(
            bytes >= PER_THREAD_BYTES,
            "span must cover its own 1MiB buffer, saw {bytes}"
        );
        assert!(
            bytes < 3 * PER_THREAD_BYTES,
            "span must not absorb sibling threads' buffers, saw {bytes}"
        );
        assert!(count >= 1);
    }
}

#[test]
fn alloc_accounting_is_deterministic_for_a_fixed_workload() {
    // same single-thread workload twice -> identical byte attribution
    let run = || {
        let ((), events) = session(|| {
            seceda_trace::alloc::set_alloc_counting(true);
            let sp = span("alloc.fixed");
            let v: Vec<u64> = Vec::with_capacity(1000);
            std::hint::black_box(&v);
            drop(v);
            drop(sp);
            seceda_trace::alloc::set_alloc_counting(false);
        });
        let summary = Summary::of(&events);
        let s = summary.spans_named("alloc.fixed").next().unwrap().clone();
        match s.attr("alloc_bytes") {
            Some(seceda_trace::AttrValue::Int(b)) => *b,
            _ => panic!("alloc_bytes missing"),
        }
    };
    // warm-up run: lets process-global capacity (live-span registry,
    // thread-local span stack) settle so the measured runs see an
    // identical allocation sequence
    let _ = run();
    let a = run();
    let b = run();
    assert_eq!(a, b, "same workload must attribute the same bytes");
    assert!(a >= 8000, "the 1000-u64 buffer must be visible, saw {a}");
}

#[test]
fn chrome_trace_round_trips_escaped_strings_through_testkit_json() {
    let ((), events) = session(|| {
        let mut sp = span("escape \"quotes\" and \\slashes\\");
        sp.attr("note", "line1\nline2\ttab \"quoted\" \u{1F980} \u{7}");
        counter_with_weird_name();
        histogram("h.samples", 3);
    });
    // JSONL round-trip: parse back and compare the span payloads
    let lines = to_json_lines(&events);
    let back = from_json_lines(&lines).expect("jsonl parses back");
    assert_eq!(back, events, "JSONL import is the exact inverse of export");

    // chrome export is one valid JSON array (escaping included)
    let chrome = to_chrome_trace(&events);
    let parsed = Json::parse(&chrome).expect("chrome trace is valid JSON");
    let Json::Arr(entries) = &parsed else {
        panic!("chrome trace must be a JSON array");
    };
    assert!(!entries.is_empty());
    for entry in entries {
        let ph = entry.get("ph").expect("every event has a phase");
        assert!(matches!(ph, Json::Str(_)));
        assert!(entry.get("pid").is_some());
    }
    // the escaped span survived with its exact name and attr
    let escaped = entries
        .iter()
        .find(|e| e.get("name") == Some(&Json::Str("escape \"quotes\" and \\slashes\\".into())))
        .expect("escaped span exported");
    let args = escaped.get("args").expect("args");
    assert_eq!(
        args.get("note"),
        Some(&Json::Str(
            "line1\nline2\ttab \"quoted\" \u{1F980} \u{7}".into()
        ))
    );
    // spans are complete events with microsecond ts/dur
    assert_eq!(escaped.get("ph"), Some(&Json::Str("X".into())));
    assert!(matches!(
        escaped.get("ts"),
        Some(Json::Num(_)) | Some(Json::Int(_))
    ));
}

fn counter_with_weird_name() {
    seceda_trace::counter("weird.\"name\"", 2);
}

#[test]
fn chrome_counters_carry_running_totals() {
    let ((), events) = session(|| {
        seceda_trace::counter("c.total", 3);
        seceda_trace::counter("c.total", 4);
    });
    let chrome = to_chrome_trace(&events);
    let Json::Arr(entries) = Json::parse(&chrome).unwrap() else {
        panic!("array expected");
    };
    let totals: Vec<i64> = entries
        .iter()
        .filter(|e| e.get("name") == Some(&Json::Str("c.total".into())))
        .filter_map(|e| match e.get("args").and_then(|a| a.get("c.total")) {
            Some(Json::Int(i)) => Some(*i),
            _ => None,
        })
        .collect();
    assert_eq!(totals, vec![3, 7], "counter track accumulates");
}

#[test]
fn drain_emits_open_spans_as_marked_unfinished_records() {
    let ((), events) = session(|| {
        let outer = span("snap.outer");
        let inner = span("snap.inner");
        // snapshot mid-flight: both spans still open
        let snapshot = drain();
        let unfinished: Vec<String> = snapshot
            .iter()
            .filter_map(|e| match e {
                Event::Span(s) if s.unfinished => Some(s.name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(unfinished, vec!["snap.outer", "snap.inner"]);
        for e in &snapshot {
            if let Event::Span(s) = e {
                assert!(s.end_ns >= s.start_ns);
            }
        }
        drop(inner);
        drop(outer);
    });
    // after the guards drop, the final drain carries the *finished*
    // records — same ids, unfinished = false
    let finished: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            Event::Span(s) if !s.unfinished => Some(s.name.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(finished, vec!["snap.inner", "snap.outer"]);
    assert!(
        events.iter().all(|e| match e {
            Event::Span(s) => !s.unfinished,
            _ => true,
        }),
        "nothing is open at session end"
    );
}

#[test]
fn unfinished_records_render_with_a_marker_and_export_the_flag() {
    let ((), _events) = session(|| {
        let sp = span("live.one");
        let snapshot = drain();
        let summary = Summary::of(&snapshot);
        assert!(summary.render().contains("[UNFINISHED]"));
        let lines = to_json_lines(&snapshot);
        let parsed = Json::parse(lines.lines().next().unwrap()).unwrap();
        assert_eq!(parsed.get("unfinished"), Some(&Json::Bool(true)));
        let back = from_json_lines(&lines).expect("parses");
        match &back[0] {
            Event::Span(s) => assert!(s.unfinished),
            other => panic!("expected span, got {other:?}"),
        }
        drop(sp);
    });
}

/// Waits until `cond` holds, failing after `deadline`.
fn wait_for(deadline: Duration, what: &str, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(
            start.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn watchdog_fires_on_stall_then_clears_on_progress() {
    // Property checked over several rounds: a silent period at least as
    // long as the timeout is always flagged, and resuming progress
    // always clears the flag without extra reports.
    let reports = Arc::new(Mutex::new(String::new()));
    let ((), _events) = session(|| {
        let wd = Watchdog::start_with(WatchdogConfig {
            timeout: Duration::from_millis(150),
            poll: Duration::from_millis(10),
            abort_on_stall: false,
            // buffer, not stderr: the watchdog thread escapes libtest's
            // output capture, and the report's wall-clock duration would
            // make two test runs diff unequal
            sink: StallSink::Buffer(Arc::clone(&reports)),
        });
        let mut expected_reports = 0;
        for round in 0..3u64 {
            // phase 1: stall (no probes at all); wait for flag AND report
            // counter so the two relaxed stores have both landed
            expected_reports += 1;
            wait_for(Duration::from_secs(10), "stall flag", || {
                wd.stalled() && wd.stall_reports() == expected_reports
            });

            // phase 2: steady progress clears the flag and keeps it clear
            wait_for(Duration::from_secs(10), "flag clear", || {
                progress("wd.work_done", round);
                !wd.stalled()
            });
            // keep beating well past the timeout: no new stall while alive
            let beat_until = Instant::now() + Duration::from_millis(450);
            while Instant::now() < beat_until {
                progress("wd.work_done", round);
                assert!(!wd.stalled(), "heartbeats must keep the flag clear");
                std::thread::sleep(Duration::from_millis(10));
            }
            assert_eq!(
                wd.stall_reports(),
                expected_reports,
                "a moving run must not accumulate stall reports"
            );
        }
        // the watchdog saw the progress gauge's latest value
        let snap = seceda_trace::progress_snapshot();
        assert!(snap.iter().any(|&(n, v)| n == "wd.work_done" && v == 2));
        wd.stop();
    });
    let reports = reports.lock().unwrap();
    assert_eq!(
        reports.matches("NO PROGRESS").count(),
        3,
        "one report per stall round:\n{reports}"
    );
}

#[test]
fn budget_stall_reports_reach_armed_watchdogs() {
    let reports = Arc::new(Mutex::new(String::new()));
    let ((), _events) = session(|| {
        // with no watchdog armed the call is a no-op (the session lock
        // keeps other tests' watchdogs out of the registry here)
        assert_eq!(seceda_trace::report_budget_stall("sat.solve"), 0);
        let _sp = span("budgeted.engine");
        let wd = Watchdog::start_with(WatchdogConfig {
            // huge timeout: the watchdog thread itself must never fire —
            // only the synchronous budget report reaches the sink
            timeout: Duration::from_secs(3600),
            poll: Duration::from_millis(10),
            abort_on_stall: false,
            sink: StallSink::Buffer(Arc::clone(&reports)),
        });
        progress("wd.budget_phase", 3);
        let reached = seceda_trace::report_budget_stall("sat.solve wall-clock deadline");
        assert_eq!(reached, 1, "one armed watchdog must receive the report");
        assert_eq!(wd.stall_reports(), 1);
        assert!(!wd.stalled(), "a budget report is not a silent hang");
        wd.stop();
        // disarmed again: back to no-op
        assert_eq!(seceda_trace::report_budget_stall("sat.solve"), 0);
    });
    let reports = reports.lock().unwrap();
    assert!(reports.contains("BUDGET EXHAUSTED"), "{reports}");
    assert!(
        reports.contains("sat.solve wall-clock deadline"),
        "{reports}"
    );
    assert!(reports.contains("budgeted.engine"), "{reports}");
    assert!(reports.contains("wd.budget_phase = 3"), "{reports}");
}

#[test]
fn watchdog_dump_lists_live_spans() {
    let reports = Arc::new(Mutex::new(String::new()));
    let ((), _events) = session(|| {
        let _sp = span("hung.engine");
        let live = seceda_trace::live_spans();
        assert!(live.iter().any(|s| s.name == "hung.engine"));

        // stall with the span still open: the report must list it along
        // with the most recent progress gauges (the progress registry
        // only records while a watchdog is armed)
        let wd = Watchdog::start_with(WatchdogConfig {
            timeout: Duration::from_millis(100),
            poll: Duration::from_millis(10),
            abort_on_stall: false,
            sink: StallSink::Buffer(Arc::clone(&reports)),
        });
        seceda_trace::progress("wd.dump_phase", 7);
        wait_for(Duration::from_secs(10), "stall report", || {
            wd.stalled() && wd.stall_reports() == 1
        });
        wd.stop();
    });
    let reports = reports.lock().unwrap();
    assert!(reports.contains("NO PROGRESS"), "{reports}");
    assert!(reports.contains("hung.engine"), "{reports}");
    assert!(reports.contains("wd.dump_phase = 7"), "{reports}");
}
