//! # seceda-trace
//!
//! Zero-dependency flight recorder for the `seceda` pipeline. The
//! paper's secure-composition loop — re-evaluate **all** threats after
//! **every** countermeasure — is an iterative, *measured* process; this
//! crate makes each iteration observable:
//!
//! * [`span`] — RAII guards with name, key/value attributes, monotonic
//!   start/stop timing, per-thread parent nesting, and (opt-in)
//!   per-span allocation deltas;
//! * [`counter`] / [`gauge`] — accumulating counts (SAT decisions,
//!   events simulated, patterns generated) and point-in-time values;
//! * [`histogram`] / [`hist_timer`] — log-bucketed latency/size
//!   distributions with p50/p90/p99/max in [`Summary`] (per DIP
//!   iteration, per threat evaluation, per fault-sim batch, per parse);
//! * [`progress`] + [`Watchdog`] — monotonic progress heartbeats and a
//!   stall watchdog that turns silent hangs into live-span-stack dumps
//!   on stderr (and optionally aborts);
//! * allocation accounting ([`alloc`]) — a counting global allocator,
//!   armed by `SECEDA_TRACE_ALLOC=1`, attributing alloc-count/byte
//!   deltas to the enclosing span;
//! * a process-wide, thread-safe recorder ([`drain`], [`session`]) that
//!   collects events from every instrumented crate; spans still open at
//!   [`drain`] are emitted as explicitly-marked unfinished records, so
//!   mid-run snapshots are lossless;
//! * exports — [`to_json_lines`] / [`from_json_lines`] for JSONL
//!   sessions and [`to_chrome_trace`] for `chrome://tracing` / Perfetto
//!   (the `seceda_obs` CLI wraps export, hot-span top-N, and
//!   session diffing);
//! * [`Summary`] — tree rendering with total and self time per span,
//!   plus counter/gauge/histogram rollups.
//!
//! ## Overhead policy
//!
//! Tracing is off unless `SECEDA_TRACE=1` is set (or [`set_enabled`] is
//! called). When off, every probe is a single relaxed atomic load —
//! instrumented crates keep probes in hot paths unconditionally, and
//! probe granularity is chosen per call (one span per SAT solve, not per
//! propagation) so the enabled mode stays usable too. The allocation
//! counter and the watchdog follow the same policy behind their own
//! gates (`SECEDA_TRACE_ALLOC`, `SECEDA_WATCHDOG`).
//!
//! ```
//! let ((), events) = seceda_trace::session(|| {
//!     let mut sp = seceda_trace::span("demo.work");
//!     sp.attr("items", 3usize);
//!     seceda_trace::counter("demo.items_done", 3);
//!     seceda_trace::histogram("demo.item_ns", 1500);
//! });
//! let summary = seceda_trace::Summary::of(&events);
//! assert_eq!(summary.counters["demo.items_done"], 3);
//! assert_eq!(summary.spans_named("demo.work").count(), 1);
//! assert_eq!(summary.histogram("demo.item_ns").unwrap().count(), 1);
//! ```

pub mod alloc;
mod chrome;
mod export;
mod hist;
mod recorder;
mod render;
mod span;
mod watchdog;

pub use chrome::to_chrome_trace;
pub use export::{from_json_lines, to_json_lines};
pub use hist::{
    bucket_bounds, bucket_index, hist_timer, HistTimer, Histogram, NUM_BUCKETS, OVERFLOW_BUCKET,
};
pub use recorder::{
    counter, drain, enabled, gauge, histogram, live_spans, progress, progress_snapshot, session,
    set_enabled, AttrValue, CounterRecord, Event, GaugeRecord, HistRecord, LiveSpan, SpanRecord,
};
pub use render::{fmt_duration, Summary};
pub use span::{span, Span};
pub use watchdog::{report_budget_stall, StallSink, Watchdog, WatchdogConfig};
