//! # seceda-trace
//!
//! Zero-dependency structured tracing and flow telemetry for the
//! `seceda` pipeline. The paper's secure-composition loop — re-evaluate
//! **all** threats after **every** countermeasure — is an iterative,
//! *measured* process; this crate makes each iteration observable:
//!
//! * [`span`] — RAII guards with name, key/value attributes, monotonic
//!   start/stop timing, and per-thread parent nesting;
//! * [`counter`] / [`gauge`] — accumulating counts (SAT decisions,
//!   events simulated, patterns generated) and point-in-time values;
//! * a process-wide, thread-safe recorder ([`drain`], [`session`]) that
//!   collects events from every instrumented crate;
//! * [`to_json_lines`] — JSON-lines export parseable by
//!   `seceda_testkit::json`;
//! * [`Summary`] — tree rendering with total and self time per span,
//!   plus counter/gauge rollups.
//!
//! ## Overhead policy
//!
//! Tracing is off unless `SECEDA_TRACE=1` is set (or [`set_enabled`] is
//! called). When off, every probe is a single relaxed atomic load —
//! instrumented crates keep probes in hot paths unconditionally, and
//! probe granularity is chosen per call (one span per SAT solve, not per
//! propagation) so the enabled mode stays usable too.
//!
//! ```
//! let ((), events) = seceda_trace::session(|| {
//!     let mut sp = seceda_trace::span("demo.work");
//!     sp.attr("items", 3usize);
//!     seceda_trace::counter("demo.items_done", 3);
//! });
//! let summary = seceda_trace::Summary::of(&events);
//! assert_eq!(summary.counters["demo.items_done"], 3);
//! assert_eq!(summary.spans_named("demo.work").count(), 1);
//! ```

mod export;
mod recorder;
mod render;
mod span;

pub use export::to_json_lines;
pub use recorder::{
    counter, drain, enabled, gauge, session, set_enabled, AttrValue, CounterRecord, Event,
    GaugeRecord, SpanRecord,
};
pub use render::{fmt_duration, Summary};
pub use span::{span, Span};
