//! Chrome trace-event export.
//!
//! [`to_chrome_trace`] renders a recorded session as the Trace Event
//! Format JSON array understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) — drop the output file onto the
//! Perfetto UI and every span becomes a zoomable slice on its thread's
//! track, with counters as stacked counter tracks.
//!
//! Mapping:
//!
//! * spans → complete events (`"ph":"X"`) with microsecond `ts`/`dur`
//!   (fractional, so nanosecond precision survives), `tid` = the
//!   recording thread's ordinal, and attributes under `args` (snapshot
//!   records additionally carry `"unfinished": true`);
//! * counters → counter events (`"ph":"C"`) carrying the *running
//!   total* per counter name, so the track plots accumulation over time;
//! * gauges → counter events carrying the observed value;
//! * histogram samples are omitted (they aggregate into
//!   [`crate::Summary`] percentiles instead of timeline tracks);
//! * one metadata event (`"ph":"M"`) names each thread track.

use crate::recorder::Event;
use seceda_testkit::json::{Json, ToJson};
use std::collections::BTreeMap;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Renders events as a Chrome trace-event JSON array.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let mut out: Vec<Json> = Vec::new();
    let mut threads: BTreeMap<u32, ()> = BTreeMap::new();
    let mut counter_totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ev in events {
        match ev {
            Event::Span(s) => {
                threads.entry(s.thread).or_insert(());
                let mut args = Json::obj();
                for (k, v) in &s.attrs {
                    args = args.field(*k, v.to_json());
                }
                if s.unfinished {
                    args = args.field("unfinished", true);
                }
                out.push(
                    Json::obj()
                        .field("name", s.name.as_str())
                        .field("cat", "span")
                        .field("ph", "X")
                        .field("ts", us(s.start_ns))
                        .field("dur", us(s.duration_ns()))
                        .field("pid", 1)
                        .field("tid", s.thread as i64)
                        .field("args", args.build())
                        .build(),
                );
            }
            Event::Counter(c) => {
                let total = counter_totals.entry(c.name).or_insert(0);
                *total += c.delta;
                out.push(
                    Json::obj()
                        .field("name", c.name)
                        .field("ph", "C")
                        .field("ts", us(c.ts_ns))
                        .field("pid", 1)
                        .field("args", Json::obj().field(c.name, *total as i64).build())
                        .build(),
                );
            }
            Event::Gauge(g) => {
                out.push(
                    Json::obj()
                        .field("name", g.name)
                        .field("ph", "C")
                        .field("ts", us(g.ts_ns))
                        .field("pid", 1)
                        .field("args", Json::obj().field(g.name, g.value).build())
                        .build(),
                );
            }
            Event::Hist(_) => {}
        }
    }
    for &tid in threads.keys() {
        out.push(
            Json::obj()
                .field("name", "thread_name")
                .field("ph", "M")
                .field("pid", 1)
                .field("tid", tid as i64)
                .field(
                    "args",
                    Json::obj()
                        .field("name", format!("seceda thread {tid}"))
                        .build(),
                )
                .build(),
        );
    }
    Json::Arr(out).render()
}
