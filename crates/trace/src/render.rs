//! Human-readable rendering: span tree with total/self time, counter
//! rollups, gauge snapshots, and histogram percentiles.

use crate::hist::Histogram;
use crate::recorder::{AttrValue, Event, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated view of a drained event list.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Completed spans in recording order (snapshot records of spans
    /// that were still open at drain time carry `unfinished: true`).
    pub spans: Vec<SpanRecord>,
    /// Total per counter name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last observed value per gauge name.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Aggregated histogram per metric name.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl Summary {
    /// Aggregates a drained event list.
    pub fn of(events: &[Event]) -> Self {
        let mut summary = Summary::default();
        for ev in events {
            match ev {
                Event::Span(s) => summary.spans.push(s.clone()),
                Event::Counter(c) => *summary.counters.entry(c.name).or_insert(0) += c.delta,
                Event::Gauge(g) => {
                    summary.gauges.insert(g.name, g.value);
                }
                Event::Hist(h) => summary
                    .histograms
                    .entry(h.name)
                    .or_insert_with(Histogram::new)
                    .record(h.value),
            }
        }
        summary
    }

    /// Spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// The aggregated histogram for a metric, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Self time of a span: its duration minus the durations of its
    /// direct children.
    pub fn self_time_ns(&self, span: &SpanRecord) -> u64 {
        let children: u64 = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(span.id))
            .map(SpanRecord::duration_ns)
            .sum();
        span.duration_ns().saturating_sub(children)
    }

    /// Renders the span tree plus counter/gauge/histogram rollups.
    pub fn render(&self) -> String {
        self.render_depth(usize::MAX)
    }

    /// Like [`Summary::render`], but prunes the span tree below
    /// `max_depth` levels (roots are depth 0); elided subtrees are
    /// replaced by a one-line count. Counters, gauges, and histograms
    /// are always rolled up in full.
    pub fn render_depth(&self, max_depth: usize) -> String {
        let mut out = String::new();
        let roots: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.parent.is_none() || !self.spans.iter().any(|p| Some(p.id) == s.parent))
            .collect();
        let mut ordered = roots;
        ordered.sort_by_key(|s| s.start_ns);
        for root in ordered {
            self.render_span(root, 0, max_depth, &mut out);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, total) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {total}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let width = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  n={} p50={} p90={} p99={} max={}",
                    h.count(),
                    fmt_metric(name, h.p50()),
                    fmt_metric(name, h.p90()),
                    fmt_metric(name, h.p99()),
                    fmt_metric(name, h.max()),
                );
            }
        }
        out
    }

    fn render_span(&self, span: &SpanRecord, depth: usize, max_depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let _ = write!(
            out,
            "{indent}{}  total {}, self {}",
            span.name,
            fmt_duration(span.duration_ns()),
            fmt_duration(self.self_time_ns(span)),
        );
        if span.unfinished {
            out.push_str("  [UNFINISHED]");
        }
        if !span.attrs.is_empty() {
            out.push_str("  [");
            for (i, (k, v)) in span.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{k}={}", fmt_attr(v));
            }
            out.push(']');
        }
        out.push('\n');
        let mut children: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(span.id))
            .collect();
        if children.is_empty() {
            return;
        }
        if depth >= max_depth {
            let _ = writeln!(out, "{indent}  … {} child span(s) elided", children.len());
            return;
        }
        children.sort_by_key(|s| s.start_ns);
        for child in children {
            self.render_span(child, depth + 1, max_depth, out);
        }
    }
}

fn fmt_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::Int(i) => i.to_string(),
        AttrValue::Float(f) => format!("{f:.3}"),
        AttrValue::Str(s) => format!("{s:?}"),
        AttrValue::Bool(b) => b.to_string(),
    }
}

/// Formats a histogram statistic: metrics named `*_ns` are durations.
fn fmt_metric(name: &str, value: u64) -> String {
    if name.ends_with("_ns") {
        fmt_duration(value)
    } else {
        value.to_string()
    }
}

/// Formats a nanosecond duration with a human-friendly unit.
pub fn fmt_duration(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}
