//! JSON-lines export and import of recorded events.
//!
//! One JSON object per line, parseable by `seceda_testkit::json` (and by
//! any external JSONL consumer), so bench snapshots and CI logs can carry
//! per-stage breakdowns without a schema dependency. [`from_json_lines`]
//! is the inverse: the `seceda_obs` CLI uses it to load sessions back
//! for rendering, diffing, and Chrome-trace export.

use crate::recorder::{AttrValue, CounterRecord, Event, GaugeRecord, HistRecord, SpanRecord};
use seceda_testkit::json::{Json, ToJson};
use std::collections::BTreeMap;
use std::sync::Mutex;

impl ToJson for AttrValue {
    fn to_json(&self) -> Json {
        match self {
            AttrValue::Int(i) => Json::Int(*i),
            AttrValue::Float(f) => Json::Num(*f),
            AttrValue::Str(s) => Json::Str(s.clone()),
            AttrValue::Bool(b) => Json::Bool(*b),
        }
    }
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        match self {
            Event::Span(s) => {
                let mut obj = Json::obj()
                    .field("type", "span")
                    .field("id", s.id as i64)
                    .field(
                        "parent",
                        s.parent.map_or(Json::Null, |p| Json::Int(p as i64)),
                    )
                    .field("name", s.name.as_str())
                    .field("start_ns", s.start_ns as i64)
                    .field("end_ns", s.end_ns as i64)
                    .field("thread", s.thread as i64);
                if s.unfinished {
                    obj = obj.field("unfinished", true);
                }
                obj.field(
                    "attrs",
                    Json::Obj(
                        s.attrs
                            .iter()
                            .map(|(k, v)| ((*k).to_string(), v.to_json()))
                            .collect(),
                    ),
                )
                .build()
            }
            Event::Counter(c) => Json::obj()
                .field("type", "counter")
                .field("name", c.name)
                .field("delta", c.delta as i64)
                .field("span", c.span.map_or(Json::Null, |s| Json::Int(s as i64)))
                .field("ts_ns", c.ts_ns as i64)
                .build(),
            Event::Gauge(g) => Json::obj()
                .field("type", "gauge")
                .field("name", g.name)
                .field("value", g.value)
                .field("span", g.span.map_or(Json::Null, |s| Json::Int(s as i64)))
                .field("ts_ns", g.ts_ns as i64)
                .build(),
            Event::Hist(h) => Json::obj()
                .field("type", "hist")
                .field("name", h.name)
                .field("value", h.value as i64)
                .field("span", h.span.map_or(Json::Null, |s| Json::Int(s as i64)))
                .field("ts_ns", h.ts_ns as i64)
                .build(),
        }
    }
}

/// Serializes events as JSON lines (one compact object per line).
pub fn to_json_lines(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json().render());
        out.push('\n');
    }
    out
}

/// Interns a name into a `&'static str`. Counter/gauge/histogram names
/// and attribute keys are `&'static` in the record model (probe sites
/// pass literals); when re-hydrating from JSON the distinct-name set is
/// small and session-stable, so leaking one copy per unique name is the
/// right trade against widening every record type to `String`.
fn intern(s: &str) -> &'static str {
    static TABLE: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut table = TABLE.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&interned) = table.get(s) {
        return interned;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.insert(s.to_string(), leaked);
    leaked
}

fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as u64),
        other => Err(format!(
            "field `{key}`: expected non-negative integer, got {other:?}"
        )),
    }
}

fn get_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    match obj.get(key) {
        Some(Json::Str(s)) => Ok(s),
        other => Err(format!("field `{key}`: expected string, got {other:?}")),
    }
}

fn get_opt_span(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
        other => Err(format!("field `{key}`: expected null or id, got {other:?}")),
    }
}

fn attr_from_json(v: &Json) -> Result<AttrValue, String> {
    match v {
        Json::Int(i) => Ok(AttrValue::Int(*i)),
        Json::Num(n) => Ok(AttrValue::Float(*n)),
        Json::Str(s) => Ok(AttrValue::Str(s.clone())),
        Json::Bool(b) => Ok(AttrValue::Bool(*b)),
        other => Err(format!("unsupported attribute value {other:?}")),
    }
}

fn event_from_json(obj: &Json) -> Result<Event, String> {
    match get_str(obj, "type")? {
        "span" => {
            let attrs = match obj.get("attrs") {
                None => Vec::new(),
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .map(|(k, v)| Ok((intern(k), attr_from_json(v)?)))
                    .collect::<Result<Vec<_>, String>>()?,
                other => return Err(format!("field `attrs`: expected object, got {other:?}")),
            };
            Ok(Event::Span(SpanRecord {
                id: get_u64(obj, "id")?,
                parent: get_opt_span(obj, "parent")?,
                name: get_str(obj, "name")?.to_string(),
                start_ns: get_u64(obj, "start_ns")?,
                end_ns: get_u64(obj, "end_ns")?,
                thread: get_u64(obj, "thread").unwrap_or(0) as u32,
                unfinished: matches!(obj.get("unfinished"), Some(Json::Bool(true))),
                attrs,
            }))
        }
        "counter" => Ok(Event::Counter(CounterRecord {
            name: intern(get_str(obj, "name")?),
            delta: get_u64(obj, "delta")?,
            span: get_opt_span(obj, "span")?,
            ts_ns: get_u64(obj, "ts_ns").unwrap_or(0),
        })),
        "gauge" => {
            let value = match obj.get("value") {
                Some(Json::Num(n)) => *n,
                Some(Json::Int(i)) => *i as f64,
                other => return Err(format!("field `value`: expected number, got {other:?}")),
            };
            Ok(Event::Gauge(GaugeRecord {
                name: intern(get_str(obj, "name")?),
                value,
                span: get_opt_span(obj, "span")?,
                ts_ns: get_u64(obj, "ts_ns").unwrap_or(0),
            }))
        }
        "hist" => Ok(Event::Hist(HistRecord {
            name: intern(get_str(obj, "name")?),
            value: get_u64(obj, "value")?,
            span: get_opt_span(obj, "span")?,
            ts_ns: get_u64(obj, "ts_ns").unwrap_or(0),
        })),
        other => Err(format!("unknown event type `{other}`")),
    }
}

/// Parses a JSON-lines session back into events — the inverse of
/// [`to_json_lines`]. Blank lines are skipped; any malformed line fails
/// with its 1-based line number.
///
/// # Errors
///
/// Returns a description naming the offending line.
pub fn from_json_lines(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let obj = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(event_from_json(&obj).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(events)
}
