//! JSON-lines export of recorded events.
//!
//! One JSON object per line, parseable by `seceda_testkit::json` (and by
//! any external JSONL consumer), so bench snapshots and CI logs can carry
//! per-stage breakdowns without a schema dependency.

use crate::recorder::{AttrValue, Event};
use seceda_testkit::json::{Json, ToJson};

impl ToJson for AttrValue {
    fn to_json(&self) -> Json {
        match self {
            AttrValue::Int(i) => Json::Int(*i),
            AttrValue::Float(f) => Json::Num(*f),
            AttrValue::Str(s) => Json::Str(s.clone()),
            AttrValue::Bool(b) => Json::Bool(*b),
        }
    }
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        match self {
            Event::Span(s) => Json::obj()
                .field("type", "span")
                .field("id", s.id as i64)
                .field(
                    "parent",
                    s.parent.map_or(Json::Null, |p| Json::Int(p as i64)),
                )
                .field("name", s.name.as_str())
                .field("start_ns", s.start_ns as i64)
                .field("end_ns", s.end_ns as i64)
                .field(
                    "attrs",
                    Json::Obj(
                        s.attrs
                            .iter()
                            .map(|(k, v)| ((*k).to_string(), v.to_json()))
                            .collect(),
                    ),
                )
                .build(),
            Event::Counter(c) => Json::obj()
                .field("type", "counter")
                .field("name", c.name)
                .field("delta", c.delta as i64)
                .field("span", c.span.map_or(Json::Null, |s| Json::Int(s as i64)))
                .build(),
            Event::Gauge(g) => Json::obj()
                .field("type", "gauge")
                .field("name", g.name)
                .field("value", g.value)
                .field("span", g.span.map_or(Json::Null, |s| Json::Int(s as i64)))
                .build(),
        }
    }
}

/// Serializes events as JSON lines (one compact object per line).
pub fn to_json_lines(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json().render());
        out.push('\n');
    }
    out
}
