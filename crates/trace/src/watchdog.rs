//! Progress-heartbeat stall watchdog.
//!
//! Long-running engines (the SAT-attack DIP loop, packed fault-sim
//! campaigns, ATPG, scale parses) publish monotonic [`crate::progress`]
//! gauges; every probe additionally bumps a process-wide activity
//! generation while a watchdog is armed. The watchdog thread polls that
//! generation: if it stops moving for the configured timeout, the run is
//! *hung*, not slow — the watchdog prints a stall report to stderr (live
//! span stack per thread plus the latest progress gauges) and, when
//! configured, aborts the process. When activity resumes the stall flag
//! clears, so a watchdog can ride along a whole pipeline and flag each
//! hang exactly once.
//!
//! ```no_run
//! let wd = seceda_trace::Watchdog::start(std::time::Duration::from_secs(30));
//! // ... long run ...
//! assert!(!wd.stalled());
//! drop(wd); // disarms
//! ```
//!
//! `SECEDA_WATCHDOG=<seconds>` arms a watchdog from the environment
//! (see [`Watchdog::start_from_env`]); `SECEDA_WATCHDOG_ABORT=1` makes a
//! stall fatal.

use crate::recorder;
use crate::render::fmt_duration;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Registry of armed watchdogs, so synchronous stall reports (budget
/// exhaustion inside an engine) can reach every live sink without the
/// reporter owning a [`Watchdog`] handle.
static ARMED: Mutex<Vec<ArmedEntry>> = Mutex::new(Vec::new());
/// Fast gate mirroring `ARMED.len()`: lets [`report_budget_stall`] be a
/// single relaxed load when no watchdog is armed.
static ARMED_COUNT: AtomicUsize = AtomicUsize::new(0);
/// Monotonic id source for registry entries.
static NEXT_WATCHDOG_ID: AtomicU64 = AtomicU64::new(1);

struct ArmedEntry {
    id: u64,
    sink: StallSink,
    stall_reports: Arc<AtomicU64>,
}

/// Delivers a synchronous "budget exhausted" stall report — naming the
/// live span stack and progress gauges, like a timeout-detected stall —
/// to every armed watchdog. Unlike the watchdog thread's own reports
/// this is *event-driven*: an engine that hits its wall-clock deadline
/// calls this at the moment it gives up, so the report captures the
/// spans that were actually open inside the budgeted region.
///
/// Returns the number of watchdogs the report reached (0 when none are
/// armed — the call is then one relaxed atomic load).
pub fn report_budget_stall(context: &str) -> usize {
    if ARMED_COUNT.load(Ordering::Relaxed) == 0 {
        return 0;
    }
    let body = stall_report_body(&format!(
        "seceda-trace watchdog: BUDGET EXHAUSTED in {context} — live span stack:"
    ));
    let armed = match ARMED.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    for entry in armed.iter() {
        entry.stall_reports.fetch_add(1, Ordering::Relaxed);
        write_to_sink(&entry.sink, &body);
    }
    armed.len()
}

fn register_armed(sink: &StallSink, stall_reports: &Arc<AtomicU64>) -> u64 {
    let id = NEXT_WATCHDOG_ID.fetch_add(1, Ordering::Relaxed);
    let mut armed = match ARMED.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    armed.push(ArmedEntry {
        id,
        sink: sink.clone(),
        stall_reports: Arc::clone(stall_reports),
    });
    ARMED_COUNT.store(armed.len(), Ordering::Relaxed);
    id
}

fn deregister_armed(id: u64) {
    let mut armed = match ARMED.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    armed.retain(|e| e.id != id);
    ARMED_COUNT.store(armed.len(), Ordering::Relaxed);
}

/// Where stall reports are written.
#[derive(Debug, Clone, Default)]
pub enum StallSink {
    /// One locked stderr write per report (the default). The write goes
    /// to the *process* stderr — under `cargo test` it bypasses libtest's
    /// per-test capture, since the watchdog runs on its own thread.
    #[default]
    Stderr,
    /// Append each report to a shared buffer instead. Tests use this to
    /// keep output capture deterministic and to assert on report content.
    Buffer(Arc<Mutex<String>>),
}

/// Watchdog tuning knobs. See [`Watchdog::start_with`].
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// How long the activity generation may sit still before the run
    /// counts as stalled.
    pub timeout: Duration,
    /// Poll interval of the watchdog thread. Defaults to a quarter of
    /// the timeout, clamped to [1ms, 1s].
    pub poll: Duration,
    /// Abort the process (after printing the stall report) instead of
    /// just flagging. Off by default; `SECEDA_WATCHDOG_ABORT=1` turns it
    /// on for env-armed watchdogs.
    pub abort_on_stall: bool,
    /// Destination of stall reports.
    pub sink: StallSink,
}

impl WatchdogConfig {
    /// A report-only config with the given timeout and a derived poll
    /// interval.
    pub fn new(timeout: Duration) -> WatchdogConfig {
        let poll = (timeout / 4).clamp(Duration::from_millis(1), Duration::from_secs(1));
        WatchdogConfig {
            timeout,
            poll,
            abort_on_stall: false,
            sink: StallSink::Stderr,
        }
    }
}

/// An armed stall watchdog. Disarms (and joins its thread) on drop.
#[derive(Debug)]
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    stalled: Arc<AtomicBool>,
    stall_reports: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
    registry_id: u64,
}

impl Watchdog {
    /// Arms a report-only watchdog with the given stall timeout.
    pub fn start(timeout: Duration) -> Watchdog {
        Watchdog::start_with(WatchdogConfig::new(timeout))
    }

    /// Arms a watchdog with full configuration.
    pub fn start_with(config: WatchdogConfig) -> Watchdog {
        recorder::arm_watch();
        let stop = Arc::new(AtomicBool::new(false));
        let stalled = Arc::new(AtomicBool::new(false));
        let stall_reports = Arc::new(AtomicU64::new(0));
        let registry_id = register_armed(&config.sink, &stall_reports);
        let handle = {
            let stop = Arc::clone(&stop);
            let stalled = Arc::clone(&stalled);
            let stall_reports = Arc::clone(&stall_reports);
            std::thread::Builder::new()
                .name("seceda-watchdog".into())
                .spawn(move || watch_loop(&config, &stop, &stalled, &stall_reports))
                .expect("spawn watchdog thread")
        };
        Watchdog {
            stop,
            stalled,
            stall_reports,
            handle: Some(handle),
            registry_id,
        }
    }

    /// Arms a watchdog if `SECEDA_WATCHDOG=<seconds>` is set (fractions
    /// allowed); `SECEDA_WATCHDOG_ABORT=1` additionally makes stalls
    /// abort the process.
    pub fn start_from_env() -> Option<Watchdog> {
        let secs: f64 = std::env::var("SECEDA_WATCHDOG").ok()?.parse().ok()?;
        if secs.is_nan() || secs <= 0.0 {
            return None;
        }
        let mut config = WatchdogConfig::new(Duration::from_secs_f64(secs));
        config.abort_on_stall = std::env::var("SECEDA_WATCHDOG_ABORT").is_ok_and(|v| v != "0");
        Some(Watchdog::start_with(config))
    }

    /// Whether the run is stalled *right now* (no probe activity for at
    /// least the timeout). Clears automatically when activity resumes.
    pub fn stalled(&self) -> bool {
        self.stalled.load(Ordering::Relaxed)
    }

    /// How many distinct stalls this watchdog has reported.
    pub fn stall_reports(&self) -> u64 {
        self.stall_reports.load(Ordering::Relaxed)
    }

    /// Disarms the watchdog and joins its thread. Equivalent to drop,
    /// but explicit at call sites that want the timing visible.
    pub fn stop(self) {}
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        deregister_armed(self.registry_id);
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
        recorder::disarm_watch();
    }
}

fn watch_loop(
    config: &WatchdogConfig,
    stop: &AtomicBool,
    stalled: &AtomicBool,
    stall_reports: &AtomicU64,
) {
    let mut last_gen = recorder::activity_generation();
    let mut last_change = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        std::thread::park_timeout(config.poll);
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let gen = recorder::activity_generation();
        if gen != last_gen {
            last_gen = gen;
            last_change = Instant::now();
            stalled.store(false, Ordering::Relaxed);
            continue;
        }
        let still_for = last_change.elapsed();
        if still_for >= config.timeout && !stalled.load(Ordering::Relaxed) {
            stalled.store(true, Ordering::Relaxed);
            stall_reports.fetch_add(1, Ordering::Relaxed);
            report_stall(still_for, &config.sink);
            if config.abort_on_stall {
                std::process::abort();
            }
        }
    }
}

/// Writes the stall report — live span stack and progress snapshot — to
/// the configured sink in one locked write so concurrent output cannot
/// interleave.
fn report_stall(still_for: Duration, sink: &StallSink) {
    let body = stall_report_body(&format!(
        "seceda-trace watchdog: NO PROGRESS for {} — live span stack:",
        fmt_duration(still_for.as_nanos() as u64)
    ));
    write_to_sink(sink, &body);
}

/// Renders the common stall-report body under `header`: live span stack
/// plus the latest progress gauges.
fn stall_report_body(header: &str) -> String {
    let mut out = String::new();
    out.push_str(header);
    out.push('\n');
    let live = recorder::live_spans();
    if live.is_empty() {
        out.push_str("  (no spans open — enable SECEDA_TRACE=1 for span-level dumps)\n");
    }
    for span in &live {
        out.push_str(&format!(
            "  [thread {}] span #{} {} (open {}{})\n",
            span.thread,
            span.id,
            span.name,
            fmt_duration(crate::recorder::now_ns().saturating_sub(span.start_ns)),
            span.parent
                .map(|p| format!(", parent #{p}"))
                .unwrap_or_default(),
        ));
    }
    let progress = recorder::progress_snapshot();
    if !progress.is_empty() {
        out.push_str("  progress gauges at stall:\n");
        for (name, value) in &progress {
            out.push_str(&format!("    {name} = {value}\n"));
        }
    }
    out
}

/// One locked write per report so concurrent output cannot interleave.
fn write_to_sink(sink: &StallSink, out: &str) {
    match sink {
        StallSink::Stderr => {
            let stderr = std::io::stderr();
            let mut lock = stderr.lock();
            let _ = lock.write_all(out.as_bytes());
        }
        StallSink::Buffer(buf) => {
            if let Ok(mut buf) = buf.lock() {
                buf.push_str(out);
            }
        }
    }
}
