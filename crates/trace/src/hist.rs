//! Zero-dependency log-bucketed histograms.
//!
//! [`Histogram`] aggregates `u64` samples (typically nanoseconds) into
//! logarithmic buckets with four linear sub-buckets per power of two, so
//! any percentile estimate is within 25% relative error of the true
//! sample — accurate enough for p50/p90/p99 latency reporting — at a
//! fixed 157-slot footprint, mergeable across threads and sessions.
//!
//! Samples are recorded through [`crate::histogram`] as events and
//! aggregated by [`crate::Summary`]; the type is public so exporters and
//! tests can build and merge histograms directly.

use crate::recorder::HistRecord;

/// Linear sub-buckets per power of two (2 bits of mantissa).
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS;
/// Values at or above `2^MAX_EXP` land in the overflow bucket.
/// `2^40` ns is ~18 minutes, far beyond any probe this crate records.
const MAX_EXP: u32 = 40;
/// Bucket count: exact buckets for 0..4, four sub-buckets per octave
/// from 2^2 through 2^39, and one overflow bucket.
pub const NUM_BUCKETS: usize = SUBS + (MAX_EXP as usize - SUB_BITS as usize) * SUBS + 1;
/// Index of the overflow bucket (samples ≥ 2^40).
pub const OVERFLOW_BUCKET: usize = NUM_BUCKETS - 1;

/// A fixed-size log-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index of a sample value.
pub fn bucket_index(value: u64) -> usize {
    if value < SUBS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    if msb >= MAX_EXP {
        return OVERFLOW_BUCKET;
    }
    let sub = ((value >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    SUBS + (msb - SUB_BITS) as usize * SUBS + sub
}

/// Inclusive `[low, high]` value range of a bucket.
///
/// The overflow bucket reports `[2^40, u64::MAX]`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    if index < SUBS {
        return (index as u64, index as u64);
    }
    if index == OVERFLOW_BUCKET {
        return (1u64 << MAX_EXP, u64::MAX);
    }
    let b = index - SUBS;
    let msb = SUB_BITS + (b / SUBS) as u32;
    let sub = (b % SUBS) as u64;
    let low = (1u64 << msb) + (sub << (msb - SUB_BITS));
    let high = low + (1u64 << (msb - SUB_BITS)) - 1;
    (low, high)
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in one bucket (for tests and exporters).
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`): the upper bound of
    /// the bucket where the cumulative count crosses `ceil(q * count)`,
    /// clamped to the observed `[min, max]` so p100 is exact and
    /// overflow-bucket estimates never exceed a real sample.
    ///
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                let (_, high) = bucket_bounds(i);
                return high.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate. See [`Histogram::quantile`].
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate. See [`Histogram::quantile`].
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate. See [`Histogram::quantile`].
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Aggregates a slice of samples (convenience for tests/exporters).
    pub fn of_samples(samples: impl IntoIterator<Item = u64>) -> Histogram {
        let mut h = Histogram::new();
        for s in samples {
            h.record(s);
        }
        h
    }

    /// Aggregates the samples of one metric out of a record stream.
    pub fn of_records<'a>(records: impl IntoIterator<Item = &'a HistRecord>) -> Histogram {
        Histogram::of_samples(records.into_iter().map(|r| r.value))
    }
}

/// Guard returned by [`hist_timer`]: records the elapsed nanoseconds
/// into the named histogram on drop. When tracing is off the guard is
/// empty — no clock read, no record — so per-iteration timers can stay
/// in hot loops unconditionally.
#[derive(Debug)]
pub struct HistTimer {
    name: &'static str,
    start: Option<std::time::Instant>,
}

/// Starts a duration sample for `name` (conventionally `*_ns`); the
/// sample records when the guard drops.
///
/// ```
/// let ((), events) = seceda_trace::session(|| {
///     for _ in 0..3 {
///         let _t = seceda_trace::hist_timer("demo.iter_ns");
///     }
/// });
/// let summary = seceda_trace::Summary::of(&events);
/// assert_eq!(summary.histogram("demo.iter_ns").unwrap().count(), 3);
/// ```
pub fn hist_timer(name: &'static str) -> HistTimer {
    HistTimer {
        name,
        start: crate::recorder::enabled().then(std::time::Instant::now),
    }
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            crate::recorder::histogram(self.name, start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_cover_u64() {
        let mut expected_low = 0u64;
        for i in 0..OVERFLOW_BUCKET {
            let (low, high) = bucket_bounds(i);
            assert_eq!(low, expected_low, "bucket {i} starts after a gap");
            assert!(high >= low);
            expected_low = high + 1;
        }
        assert_eq!(expected_low, 1u64 << MAX_EXP);
        assert_eq!(bucket_bounds(OVERFLOW_BUCKET), (1u64 << MAX_EXP, u64::MAX));
    }

    #[test]
    fn every_value_lands_in_its_bounds() {
        let probes = [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            63,
            64,
            100,
            1_000,
            65_535,
            65_536,
            1_000_000_007,
            (1u64 << 39) + 12345,
            (1u64 << 40) - 1,
            1u64 << 40,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            let (low, high) = bucket_bounds(i);
            assert!(
                (low..=high).contains(&v),
                "value {v} mapped to bucket {i} = [{low}, {high}]"
            );
        }
    }

    #[test]
    fn relative_error_is_bounded_by_a_quarter() {
        for &v in &[5u64, 100, 12_345, 9_999_999, 123_456_789_012] {
            let (low, high) = bucket_bounds(bucket_index(v));
            assert!(
                (high - low) as f64 <= 0.25 * low.max(1) as f64 + 1.0,
                "bucket [{low}, {high}] for {v} wider than 25%"
            );
        }
    }

    #[test]
    fn quantiles_of_uniform_samples() {
        let h = Histogram::of_samples(1..=1000u64);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        for (q, expected) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let est = h.quantile(q);
            let err = (est as f64 - expected as f64).abs() / expected as f64;
            assert!(
                err <= 0.25,
                "q={q}: estimate {est} vs true {expected} (err {err:.2})"
            );
            assert!(est >= expected, "upper-bound estimate never undershoots");
        }
        assert_eq!(h.quantile(1.0), 1000, "p100 is exact");
        assert_eq!(h.quantile(0.0), h.quantile(1e-9), "q=0 behaves like min");
    }

    #[test]
    fn overflow_bucket_catches_huge_samples_and_reports_max() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(10);
        h.record(10);
        h.record(u64::MAX);
        h.record(1u64 << 50);
        assert_eq!(h.bucket(OVERFLOW_BUCKET), 2);
        assert_eq!(h.max(), u64::MAX);
        // both high quantiles sit in the overflow bucket; the estimate is
        // clamped to the observed max, not the bucket's 2^64-1 bound
        assert_eq!(h.quantile(0.99), u64::MAX);
        // p50 sits in 10's bucket [10, 11]; the estimate is the bucket's
        // upper bound
        assert_eq!(h.p50(), 11);
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything_into_one() {
        let mut a = Histogram::of_samples([1u64, 10, 100, 1000]);
        let b = Histogram::of_samples([5u64, 50, 500_000, 1 << 45]);
        let combined = Histogram::of_samples([1u64, 10, 100, 1000, 5, 50, 500_000, 1 << 45]);
        a.merge(&b);
        assert_eq!(a, combined);
        assert_eq!(a.count(), 8);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1 << 45);
        assert_eq!(a.bucket(OVERFLOW_BUCKET), 1);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
