//! `seceda_obs` — the flight-recorder inspection CLI.
//!
//! Operates on JSON-lines trace sessions (the format written by
//! `seceda_trace::to_json_lines`, e.g. `target/flow_trace.jsonl` from
//! the flow-trace example or the `trace_snapshot` bin):
//!
//! ```sh
//! seceda_obs export session.jsonl -o trace.json   # Chrome/Perfetto trace
//! seceda_obs top -n 15 session.jsonl              # hot spans by self time
//! seceda_obs diff before.jsonl after.jsonl        # per-span-name deltas
//! seceda_obs summary session.jsonl                # span tree + rollups
//! ```
//!
//! `export` output loads directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use seceda_trace::{fmt_duration, from_json_lines, to_chrome_trace, Event, Summary};
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "usage: seceda_obs <command> [options]

commands:
  export <session.jsonl> [-o <out.json>]  write a Chrome trace-event JSON
                                          array (chrome://tracing, Perfetto);
                                          stdout when -o is omitted
  top [-n N] <session.jsonl>              hottest span names by total self
                                          time (default N=10), plus counter
                                          totals and gauge snapshots
  diff <a.jsonl> <b.jsonl>                per-span-name total-time comparison
  summary <session.jsonl>                 render the span tree with counter,
                                          gauge, and histogram rollups";

fn load(path: &str) -> Result<Vec<Event>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    from_json_lines(&text).map_err(|e| format!("{path}: {e}"))
}

/// Per-span-name aggregate: (count, total ns, self ns).
fn by_name(events: &[Event]) -> BTreeMap<String, (u64, u64, u64)> {
    let summary = Summary::of(events);
    let mut agg: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for span in &summary.spans {
        let slot = agg.entry(span.name.clone()).or_insert((0, 0, 0));
        slot.0 += 1;
        slot.1 += span.duration_ns();
        slot.2 += summary.self_time_ns(span);
    }
    agg
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let mut out_path: Option<&str> = None;
    let mut input: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" => out_path = Some(it.next().ok_or("-o needs a path")?),
            path if input.is_none() => input = Some(path),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let input = input.ok_or("export needs a session file")?;
    let trace = to_chrome_trace(&load(input)?);
    match out_path {
        Some(path) => {
            std::fs::write(path, &trace).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "wrote {path} ({} events) — load it in chrome://tracing or https://ui.perfetto.dev",
                trace.matches("\"ph\"").count()
            );
        }
        None => println!("{trace}"),
    }
    Ok(())
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    let mut n = 10usize;
    let mut input: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-n" => {
                n = it
                    .next()
                    .ok_or("-n needs a count")?
                    .parse()
                    .map_err(|_| "-n needs a number")?
            }
            path if input.is_none() => input = Some(path),
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    let input = input.ok_or("top needs a session file")?;
    let events = load(input)?;
    let mut rows: Vec<(String, (u64, u64, u64))> = by_name(&events).into_iter().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1 .2));
    println!(
        "{:<32} {:>7} {:>12} {:>12}",
        "span", "count", "total", "self"
    );
    for (name, (count, total, self_ns)) in rows.into_iter().take(n) {
        println!(
            "{:<32} {:>7} {:>12} {:>12}",
            name,
            count,
            fmt_duration(total),
            fmt_duration(self_ns)
        );
    }
    // counters and gauges are few; show them all, sorted by total so the
    // hot probes (sat.aig_hash_hits, sim.lane_width, ...) lead
    let summary = Summary::of(&events);
    if !summary.counters.is_empty() {
        let mut counters: Vec<_> = summary.counters.iter().collect();
        counters.sort_by_key(|(_, &total)| std::cmp::Reverse(total));
        println!("\n{:<32} {:>12}", "counter", "total");
        for (name, total) in counters {
            println!("{name:<32} {total:>12}");
        }
    }
    if !summary.gauges.is_empty() {
        println!("\n{:<32} {:>12}", "gauge", "last");
        for (name, value) in &summary.gauges {
            println!("{name:<32} {value:>12}");
        }
    }
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let [a_path, b_path] = args else {
        return Err("diff needs exactly two session files".into());
    };
    let a = by_name(&load(a_path)?);
    let b = by_name(&load(b_path)?);
    let names: Vec<&String> = {
        let mut names: Vec<&String> = a.keys().chain(b.keys()).collect();
        names.sort();
        names.dedup();
        names
    };
    println!(
        "{:<32} {:>12} {:>12} {:>9}",
        "span", "a_total", "b_total", "delta"
    );
    for name in names {
        let at = a.get(name).map_or(0, |v| v.1);
        let bt = b.get(name).map_or(0, |v| v.1);
        let delta = if at == 0 {
            "new".to_string()
        } else if bt == 0 {
            "gone".to_string()
        } else {
            format!("{:+.1}%", (bt as f64 / at as f64 - 1.0) * 100.0)
        };
        println!(
            "{:<32} {:>12} {:>12} {:>9}",
            name,
            fmt_duration(at),
            fmt_duration(bt),
            delta
        );
    }
    Ok(())
}

fn cmd_summary(args: &[String]) -> Result<(), String> {
    let [input] = args else {
        return Err("summary needs exactly one session file".into());
    };
    print!("{}", Summary::of(&load(input)?).render_depth(4));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "export" => cmd_export(rest),
        "top" => cmd_top(rest),
        "diff" => cmd_diff(rest),
        "summary" => cmd_summary(rest),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("seceda_obs: {e}");
            ExitCode::FAILURE
        }
    }
}
