//! RAII span guards.

use crate::alloc;
use crate::recorder::{self, AttrValue, Event, LiveSpan, SpanRecord};

/// An open span. Created by [`span`]; records itself on drop.
///
/// When tracing is disabled the guard is empty and every method is a
/// no-op, so instrumentation can stay in hot paths unconditionally.
#[derive(Debug)]
pub struct Span {
    data: Option<Box<SpanData>>,
}

#[derive(Debug)]
struct SpanData {
    id: u64,
    parent: Option<u64>,
    name: String,
    start_ns: u64,
    thread: u32,
    /// (allocations, bytes) on the opening thread at open time, when
    /// allocation accounting is on (`SECEDA_TRACE_ALLOC=1`).
    alloc_at_open: Option<(u64, u64)>,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// Opens a span. The returned guard records the span when dropped.
///
/// While open, the span is visible to [`crate::live_spans`] (and hence
/// to watchdog stall dumps and unfinished-span snapshots). With
/// `SECEDA_TRACE_ALLOC=1`, the closed record carries `alloc_count` /
/// `alloc_bytes` attributes: the allocations made on the opening thread
/// between open and drop (children included, like wall time).
///
/// ```
/// let mut root = seceda_trace::span("flow.stage");
/// root.attr("stage", "logic synthesis");
/// // ... timed work ...
/// drop(root);
/// ```
pub fn span(name: impl Into<String>) -> Span {
    let f = crate::recorder::flags();
    if f & crate::recorder::WATCH_BIT != 0 {
        recorder::bump_activity();
    }
    if f & crate::recorder::TRACE_BIT == 0 {
        return Span { data: None };
    }
    let id = recorder::next_span_id();
    let parent = recorder::current_span();
    recorder::push_span(id);
    let name = name.into();
    let start_ns = recorder::now_ns();
    let thread = recorder::thread_ordinal();
    recorder::register_live(LiveSpan {
        id,
        parent,
        name: name.clone(),
        start_ns,
        thread,
    });
    Span {
        data: Some(Box::new(SpanData {
            id,
            parent,
            name,
            start_ns,
            thread,
            alloc_at_open: alloc::thread_totals(),
            attrs: Vec::new(),
        })),
    }
}

impl Span {
    /// Attaches a key/value attribute. No-op when the span is disabled.
    pub fn attr<V: Into<AttrValue>>(&mut self, key: &'static str, value: V) {
        if let Some(data) = &mut self.data {
            data.attrs.push((key, value.into()));
        }
    }

    /// Builder-style [`Span::attr`].
    #[must_use]
    pub fn with<V: Into<AttrValue>>(mut self, key: &'static str, value: V) -> Self {
        self.attr(key, value);
        self
    }

    /// The span id, if recording.
    pub fn id(&self) -> Option<u64> {
        self.data.as_ref().map(|d| d.id)
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.data.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(mut data) = self.data.take() {
            if crate::recorder::flags() & crate::recorder::WATCH_BIT != 0 {
                recorder::bump_activity();
            }
            if let (Some((count0, bytes0)), Some((count1, bytes1))) =
                (data.alloc_at_open, alloc::thread_totals())
            {
                // saturating: a guard moved to another thread sees that
                // thread's counters, which may be behind the opener's
                data.attrs.push((
                    "alloc_count",
                    AttrValue::Int(count1.saturating_sub(count0) as i64),
                ));
                data.attrs.push((
                    "alloc_bytes",
                    AttrValue::Int(bytes1.saturating_sub(bytes0) as i64),
                ));
            }
            recorder::pop_span(data.id);
            recorder::unregister_live(data.id);
            recorder::record(Event::Span(SpanRecord {
                id: data.id,
                parent: data.parent,
                name: data.name,
                start_ns: data.start_ns,
                end_ns: recorder::now_ns(),
                thread: data.thread,
                unfinished: false,
                attrs: data.attrs,
            }));
        }
    }
}
