//! RAII span guards.

use crate::recorder::{self, AttrValue, Event, SpanRecord};

/// An open span. Created by [`span`]; records itself on drop.
///
/// When tracing is disabled the guard is empty and every method is a
/// no-op, so instrumentation can stay in hot paths unconditionally.
#[derive(Debug)]
pub struct Span {
    data: Option<Box<SpanData>>,
}

#[derive(Debug)]
struct SpanData {
    id: u64,
    parent: Option<u64>,
    name: String,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// Opens a span. The returned guard records the span when dropped.
///
/// ```
/// let mut root = seceda_trace::span("flow.stage");
/// root.attr("stage", "logic synthesis");
/// // ... timed work ...
/// drop(root);
/// ```
pub fn span(name: impl Into<String>) -> Span {
    if !recorder::enabled() {
        return Span { data: None };
    }
    let id = recorder::next_span_id();
    let parent = recorder::current_span();
    recorder::push_span(id);
    Span {
        data: Some(Box::new(SpanData {
            id,
            parent,
            name: name.into(),
            start_ns: recorder::now_ns(),
            attrs: Vec::new(),
        })),
    }
}

impl Span {
    /// Attaches a key/value attribute. No-op when the span is disabled.
    pub fn attr<V: Into<AttrValue>>(&mut self, key: &'static str, value: V) {
        if let Some(data) = &mut self.data {
            data.attrs.push((key, value.into()));
        }
    }

    /// Builder-style [`Span::attr`].
    #[must_use]
    pub fn with<V: Into<AttrValue>>(mut self, key: &'static str, value: V) -> Self {
        self.attr(key, value);
        self
    }

    /// The span id, if recording.
    pub fn id(&self) -> Option<u64> {
        self.data.as_ref().map(|d| d.id)
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.data.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(data) = self.data.take() {
            recorder::pop_span(data.id);
            recorder::record(Event::Span(SpanRecord {
                id: data.id,
                parent: data.parent,
                name: data.name,
                start_ns: data.start_ns,
                end_ns: recorder::now_ns(),
                attrs: data.attrs,
            }));
        }
    }
}
