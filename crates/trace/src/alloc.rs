//! Opt-in allocation accounting.
//!
//! The crate installs [`CountingAllocator`] as the workspace's global
//! allocator: a pass-through to the system allocator that, when
//! `SECEDA_TRACE_ALLOC=1` is set (or [`set_alloc_counting`] is called),
//! counts allocations and gross bytes per thread. Spans snapshot the
//! opening thread's counters on open and attach the delta on drop as
//! `alloc_count` / `alloc_bytes` attributes — so CNF encoding and IR
//! construction get memory profiles, not just wall time.
//!
//! Accounting semantics:
//!
//! * **Per thread.** Counters are thread-local, so a span attributes
//!   only the allocations of its own thread — concurrent workers never
//!   pollute each other's spans, which is what makes the numbers
//!   deterministic under `testkit::par` fan-out.
//! * **Gross.** Every `alloc`/`alloc_zeroed` counts its full size and
//!   every `realloc` counts the new size; frees are not subtracted. The
//!   numbers answer "how much allocator traffic did this region cause",
//!   not "what is resident now".
//! * **Nested.** Like wall time, a parent span's delta includes its
//!   children's.
//!
//! When the gate is off (the default) the accounting cost is one relaxed
//! atomic load per allocation — the same overhead policy as every other
//! probe in this crate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

const A_UNINIT: u8 = 0;
const A_OFF: u8 = 1;
const A_ON: u8 = 2;

static ALLOC_STATE: AtomicU8 = AtomicU8::new(A_UNINIT);

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Whether allocation accounting is on. First call reads
/// `SECEDA_TRACE_ALLOC` (`0`, empty, or unset mean off); later calls are
/// a single relaxed atomic load.
pub fn alloc_counting_enabled() -> bool {
    match ALLOC_STATE.load(Ordering::Relaxed) {
        A_ON => true,
        A_OFF => false,
        _ => {
            // Park the state at OFF before touching the environment:
            // `var_os` allocates, and the nested `alloc` call must see a
            // settled state instead of recursing back into init.
            ALLOC_STATE.store(A_OFF, Ordering::Relaxed);
            let on = std::env::var_os("SECEDA_TRACE_ALLOC")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            ALLOC_STATE.store(if on { A_ON } else { A_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns allocation accounting on or off programmatically (overrides
/// `SECEDA_TRACE_ALLOC`).
pub fn set_alloc_counting(on: bool) {
    ALLOC_STATE.store(if on { A_ON } else { A_OFF }, Ordering::Relaxed);
}

/// The calling thread's `(allocations, gross bytes)` totals, or `None`
/// when accounting is off. Monotonic per thread while accounting stays
/// on; spans diff two snapshots for their attribution.
pub fn thread_totals() -> Option<(u64, u64)> {
    if !alloc_counting_enabled() {
        return None;
    }
    let count = ALLOC_COUNT.try_with(Cell::get).unwrap_or(0);
    let bytes = ALLOC_BYTES.try_with(Cell::get).unwrap_or(0);
    Some((count, bytes))
}

#[inline]
fn note(bytes: usize) {
    // `try_with`: allocations during thread teardown (after TLS
    // destruction) must pass through uncounted rather than panic
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
    let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
}

/// Pass-through system allocator with opt-in per-thread counting.
/// Installed as the workspace's `#[global_allocator]` by this crate.
pub struct CountingAllocator;

// SAFETY: pure delegation to `System`; the bookkeeping touches only
// thread-local `Cell`s and never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if alloc_counting_enabled() {
            note(layout.size());
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if alloc_counting_enabled() {
            note(layout.size());
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if alloc_counting_enabled() {
            note(new_size);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;
