//! The process-wide recorder: event model, enable gate, and collection.
//!
//! All instrumentation funnels into a single global recorder guarded by a
//! mutex. The hot-path cost when tracing is disabled is one relaxed
//! atomic load (see [`enabled`]); instrumented crates therefore leave
//! their probes in unconditionally. Spans nest per thread via a
//! thread-local stack, so a span opened on a worker thread starts a new
//! root rather than attaching to an unrelated parent.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer attribute (counts, sizes).
    Int(i64),
    /// Floating-point attribute (areas, delays).
    Float(f64),
    /// String attribute (stage names, verdicts).
    Str(String),
    /// Boolean attribute.
    Bool(bool),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(v.into())
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// A completed span: a named, timed, attributed region of work.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name (dotted convention, e.g. `sat.solve`).
    pub name: String,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// End time in nanoseconds since the process trace epoch.
    pub end_ns: u64,
    /// Key/value attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Wall time of the span in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// A monotonically accumulating count (e.g. SAT decisions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRecord {
    /// Counter name (dotted convention, e.g. `sat.decisions`).
    pub name: &'static str,
    /// Amount added by this record.
    pub delta: u64,
    /// Span open on the recording thread at the time, if any.
    pub span: Option<u64>,
}

/// A point-in-time measurement (e.g. current gate count).
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeRecord {
    /// Gauge name.
    pub name: &'static str,
    /// Observed value.
    pub value: f64,
    /// Span open on the recording thread at the time, if any.
    pub span: Option<u64>,
}

/// One recorded telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A completed span.
    Span(SpanRecord),
    /// A counter increment.
    Counter(CounterRecord),
    /// A gauge observation.
    Gauge(GaugeRecord),
}

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static SESSION: Mutex<()> = Mutex::new(());

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn lock_events() -> MutexGuard<'static, Vec<Event>> {
    // a panic inside an instrumented region must not disable telemetry
    EVENTS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether tracing is currently on.
///
/// First call reads the `SECEDA_TRACE` environment variable (`0`, empty,
/// or unset mean off; anything else means on); later calls are a single
/// relaxed atomic load. [`set_enabled`] overrides the environment.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = std::env::var_os("SECEDA_TRACE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns tracing on or off programmatically (overrides `SECEDA_TRACE`).
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

pub(crate) fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

pub(crate) fn next_span_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

pub(crate) fn current_span() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

pub(crate) fn push_span(id: u64) {
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
}

pub(crate) fn pop_span(id: u64) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        // spans are RAII guards, so `id` is normally the top; tolerate
        // out-of-order drops from explicit `drop()` calls
        if let Some(pos) = stack.iter().rposition(|&x| x == id) {
            stack.remove(pos);
        }
    });
}

pub(crate) fn record(event: Event) {
    lock_events().push(event);
}

/// Adds `delta` to the named counter. No-op when tracing is off.
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    record(Event::Counter(CounterRecord {
        name,
        delta,
        span: current_span(),
    }));
}

/// Records a point-in-time observation. No-op when tracing is off.
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    record(Event::Gauge(GaugeRecord {
        name,
        value,
        span: current_span(),
    }));
}

/// Removes and returns every event recorded so far, in recording order.
pub fn drain() -> Vec<Event> {
    std::mem::take(&mut *lock_events())
}

/// Runs `f` with tracing enabled and returns its result together with
/// the events it recorded.
///
/// Sessions serialize on a process-wide lock, so concurrently running
/// tests using `session` cannot leak events into each other. Events
/// recorded before the session (e.g. by code running with
/// `SECEDA_TRACE=1`) are drained and discarded; the prior enabled state
/// is restored afterwards.
pub fn session<T>(f: impl FnOnce() -> T) -> (T, Vec<Event>) {
    let _guard = SESSION.lock().unwrap_or_else(|e| e.into_inner());
    let was_enabled = enabled();
    set_enabled(true);
    drop(drain());
    let result = f();
    let events = drain();
    set_enabled(was_enabled);
    (result, events)
}
