//! The process-wide recorder: event model, enable gate, and collection.
//!
//! All instrumentation funnels into a single global recorder guarded by a
//! mutex. The hot-path cost when telemetry is fully disabled is one
//! relaxed atomic load (see [`flags`]); instrumented crates therefore
//! leave their probes in unconditionally. Spans nest per thread via a
//! thread-local stack, so a span opened on a worker thread starts a new
//! root rather than attaching to an unrelated parent.
//!
//! Two consumers hang off the probe stream besides the event buffer:
//!
//! * a **live-span registry** of currently-open spans, so mid-run
//!   snapshots ([`drain`]) can emit in-flight work as explicitly-marked
//!   unfinished records and the watchdog can dump the live stack of a
//!   hung engine ([`live_spans`]);
//! * an **activity generation counter** plus a [`progress`] gauge
//!   registry, which the stall watchdog polls to distinguish "slow but
//!   moving" from "hung" (see [`crate::watchdog`]).

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer attribute (counts, sizes).
    Int(i64),
    /// Floating-point attribute (areas, delays).
    Float(f64),
    /// String attribute (stage names, verdicts).
    Str(String),
    /// Boolean attribute.
    Bool(bool),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(v.into())
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// A completed span: a named, timed, attributed region of work.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name (dotted convention, e.g. `sat.solve`).
    pub name: String,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// End time in nanoseconds since the process trace epoch.
    pub end_ns: u64,
    /// Ordinal of the recording thread (process-unique, dense from 0).
    pub thread: u32,
    /// True for spans that were still open when a [`drain`] snapshot was
    /// taken (or when the watchdog dumped the live stack): `end_ns` is
    /// the snapshot time, not a real completion, and attributes attached
    /// after the snapshot are absent.
    pub unfinished: bool,
    /// Key/value attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Wall time of the span in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// A monotonically accumulating count (e.g. SAT decisions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRecord {
    /// Counter name (dotted convention, e.g. `sat.decisions`).
    pub name: &'static str,
    /// Amount added by this record.
    pub delta: u64,
    /// Span open on the recording thread at the time, if any.
    pub span: Option<u64>,
    /// Record time in nanoseconds since the process trace epoch.
    pub ts_ns: u64,
}

/// A point-in-time measurement (e.g. current gate count).
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeRecord {
    /// Gauge name.
    pub name: &'static str,
    /// Observed value.
    pub value: f64,
    /// Span open on the recording thread at the time, if any.
    pub span: Option<u64>,
    /// Record time in nanoseconds since the process trace epoch.
    pub ts_ns: u64,
}

/// One sample of a histogram metric (e.g. nanoseconds of one DIP
/// iteration). Samples aggregate into [`crate::Histogram`]s in
/// [`crate::Summary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistRecord {
    /// Histogram name (dotted convention; the `_ns` suffix marks
    /// duration-valued metrics for rendering).
    pub name: &'static str,
    /// The sampled value.
    pub value: u64,
    /// Span open on the recording thread at the time, if any.
    pub span: Option<u64>,
    /// Record time in nanoseconds since the process trace epoch.
    pub ts_ns: u64,
}

/// One recorded telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A completed span.
    Span(SpanRecord),
    /// A counter increment.
    Counter(CounterRecord),
    /// A gauge observation.
    Gauge(GaugeRecord),
    /// A histogram sample.
    Hist(HistRecord),
}

/// A currently-open span, as seen by [`live_spans`] and the watchdog.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveSpan {
    /// Span id.
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Ordinal of the opening thread.
    pub thread: u32,
}

const F_INIT: u8 = 1;
const F_TRACE: u8 = 2;
const F_WATCH: u8 = 4;

static FLAGS: AtomicU8 = AtomicU8::new(0);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);
static ACTIVITY: AtomicU64 = AtomicU64::new(0);
static WATCHERS: AtomicU32 = AtomicU32::new(0);
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static LIVE: Mutex<Vec<LiveSpan>> = Mutex::new(Vec::new());
static PROGRESS: Mutex<Vec<(&'static str, u64)>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static SESSION: Mutex<()> = Mutex::new(());

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ORD: Cell<u32> = const { Cell::new(u32::MAX) };
}

fn lock<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
    // a panic inside an instrumented region must not disable telemetry
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The probe gate: a single relaxed atomic load on the hot path. Bit
/// `F_TRACE` means events are recorded; bit `F_WATCH` means a stall
/// watchdog is armed and probes must bump the activity generation even
/// when event recording is off.
pub(crate) fn flags() -> u8 {
    let f = FLAGS.load(Ordering::Relaxed);
    if f & F_INIT != 0 {
        f
    } else {
        init_from_env()
    }
}

#[cold]
fn init_from_env() -> u8 {
    let on = std::env::var_os("SECEDA_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    let set = F_INIT | if on { F_TRACE } else { 0 };
    FLAGS.fetch_or(set, Ordering::Relaxed) | set
}

pub(crate) const TRACE_BIT: u8 = F_TRACE;
pub(crate) const WATCH_BIT: u8 = F_WATCH;

/// Whether tracing is currently on.
///
/// First call reads the `SECEDA_TRACE` environment variable (`0`, empty,
/// or unset mean off; anything else means on); later calls are a single
/// relaxed atomic load. [`set_enabled`] overrides the environment.
pub fn enabled() -> bool {
    flags() & F_TRACE != 0
}

/// Turns tracing on or off programmatically (overrides `SECEDA_TRACE`).
pub fn set_enabled(on: bool) {
    if on {
        FLAGS.fetch_or(F_INIT | F_TRACE, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!F_TRACE, Ordering::Relaxed);
        FLAGS.fetch_or(F_INIT, Ordering::Relaxed);
    }
}

/// Arms the watchdog bit: probes start bumping the activity generation.
/// Calls nest; the bit clears when every armer has disarmed.
pub(crate) fn arm_watch() {
    flags(); // force env init so we don't clobber the lazy SECEDA_TRACE read
    WATCHERS.fetch_add(1, Ordering::Relaxed);
    FLAGS.fetch_or(F_WATCH, Ordering::Relaxed);
}

pub(crate) fn disarm_watch() {
    if WATCHERS.fetch_sub(1, Ordering::Relaxed) == 1 {
        FLAGS.fetch_and(!F_WATCH, Ordering::Relaxed);
    }
}

/// The activity generation: bumped by every probe while a watchdog is
/// armed. A stalled process is one whose generation stops moving.
pub(crate) fn activity_generation() -> u64 {
    ACTIVITY.load(Ordering::Relaxed)
}

#[inline]
pub(crate) fn bump_activity() {
    ACTIVITY.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

pub(crate) fn next_span_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Dense process-unique ordinal of the calling thread (0, 1, 2, ...).
pub(crate) fn thread_ordinal() -> u32 {
    THREAD_ORD.with(|t| {
        let v = t.get();
        if v != u32::MAX {
            v
        } else {
            let v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        }
    })
}

pub(crate) fn current_span() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

pub(crate) fn push_span(id: u64) {
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
}

pub(crate) fn pop_span(id: u64) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        // spans are RAII guards, so `id` is normally the top; tolerate
        // out-of-order drops from explicit `drop()` calls
        if let Some(pos) = stack.iter().rposition(|&x| x == id) {
            stack.remove(pos);
        }
    });
}

pub(crate) fn register_live(span: LiveSpan) {
    lock(&LIVE).push(span);
}

pub(crate) fn unregister_live(id: u64) {
    let mut live = lock(&LIVE);
    if let Some(pos) = live.iter().rposition(|s| s.id == id) {
        live.remove(pos);
    }
}

/// Snapshot of every span currently open on any thread, in opening
/// order. Available whenever tracing is enabled; this is what the
/// watchdog prints when it flags a stall.
pub fn live_spans() -> Vec<LiveSpan> {
    lock(&LIVE).clone()
}

pub(crate) fn record(event: Event) {
    lock(&EVENTS).push(event);
}

/// Adds `delta` to the named counter. No-op when tracing is off.
pub fn counter(name: &'static str, delta: u64) {
    let f = flags();
    if f & (F_TRACE | F_WATCH) == 0 {
        return;
    }
    if f & F_WATCH != 0 {
        bump_activity();
    }
    if f & F_TRACE != 0 {
        record(Event::Counter(CounterRecord {
            name,
            delta,
            span: current_span(),
            ts_ns: now_ns(),
        }));
    }
}

/// Records a point-in-time observation. No-op when tracing is off.
pub fn gauge(name: &'static str, value: f64) {
    let f = flags();
    if f & (F_TRACE | F_WATCH) == 0 {
        return;
    }
    if f & F_WATCH != 0 {
        bump_activity();
    }
    if f & F_TRACE != 0 {
        record(Event::Gauge(GaugeRecord {
            name,
            value,
            span: current_span(),
            ts_ns: now_ns(),
        }));
    }
}

/// Records one histogram sample. No-op when tracing is off.
///
/// Samples aggregate into log-bucketed [`crate::Histogram`]s in
/// [`crate::Summary`], which reports p50/p90/p99/max per metric. By
/// convention, duration-valued metrics end in `_ns`.
pub fn histogram(name: &'static str, value: u64) {
    let f = flags();
    if f & (F_TRACE | F_WATCH) == 0 {
        return;
    }
    if f & F_WATCH != 0 {
        bump_activity();
    }
    if f & F_TRACE != 0 {
        record(Event::Hist(HistRecord {
            name,
            value,
            span: current_span(),
            ts_ns: now_ns(),
        }));
    }
}

/// Publishes a monotonic progress gauge (e.g. DIP iterations completed,
/// patterns graded). Progress probes feed two consumers: the recorded
/// event stream (as a gauge) and the stall watchdog, which treats any
/// progress update as liveness and snapshots the latest value per name
/// for its stall report. No-op when both tracing and the watchdog are
/// off — the hot-path cost is one relaxed atomic load.
pub fn progress(name: &'static str, value: u64) {
    let f = flags();
    if f & (F_TRACE | F_WATCH) == 0 {
        return;
    }
    if f & F_WATCH != 0 {
        bump_activity();
        let mut reg = lock(&PROGRESS);
        match reg.iter_mut().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => reg.push((name, value)),
        }
    }
    if f & F_TRACE != 0 {
        record(Event::Gauge(GaugeRecord {
            name,
            value: value as f64,
            span: current_span(),
            ts_ns: now_ns(),
        }));
    }
}

/// The latest value of every [`progress`] gauge published while a
/// watchdog was armed, in first-publication order.
pub fn progress_snapshot() -> Vec<(&'static str, u64)> {
    lock(&PROGRESS).clone()
}

/// Removes and returns every event recorded so far, in recording order.
///
/// Spans still open at the time of the call are appended as
/// explicitly-marked snapshot records (`unfinished: true`, `end_ns` =
/// snapshot time, no attributes) so mid-run snapshots and watchdog dumps
/// are lossless; each such span records again — finished, with its
/// attributes — when its guard finally drops.
pub fn drain() -> Vec<Event> {
    let mut events = std::mem::take(&mut *lock(&EVENTS));
    let snapshot_ns = now_ns();
    for live in lock(&LIVE).iter() {
        events.push(Event::Span(SpanRecord {
            id: live.id,
            parent: live.parent,
            name: live.name.clone(),
            start_ns: live.start_ns,
            end_ns: snapshot_ns,
            thread: live.thread,
            unfinished: true,
            attrs: Vec::new(),
        }));
    }
    events
}

/// Runs `f` with tracing enabled and returns its result together with
/// the events it recorded.
///
/// Sessions serialize on a process-wide lock, so concurrently running
/// tests using `session` cannot leak events into each other. Events
/// recorded before the session (e.g. by code running with
/// `SECEDA_TRACE=1`) are drained and discarded; the prior enabled state
/// is restored afterwards.
pub fn session<T>(f: impl FnOnce() -> T) -> (T, Vec<Event>) {
    let _guard = lock(&SESSION);
    let was_enabled = enabled();
    set_enabled(true);
    drop(drain());
    let result = f();
    let events = drain();
    set_enabled(was_enabled);
    (result, events)
}
