//! Rare-trigger Trojan insertion.

use seceda_netlist::{CellKind, GateTags, NetId, Netlist};
use seceda_sim::signal_probabilities;
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// What the Trojan does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadKind {
    /// XOR the trigger into a victim net (data corruption).
    Corrupt,
    /// Multiplex a secret internal net onto an existing primary output
    /// (information leak).
    Leak,
    /// Force all primary outputs to zero (denial of service).
    DenialOfService,
}

/// Insertion parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrojanConfig {
    /// Number of rare signals in the trigger conjunction.
    pub trigger_width: usize,
    /// A net qualifies as rare if `min(p, 1-p) <= rare_threshold`.
    pub rare_threshold: f64,
    /// The payload behaviour.
    pub payload: PayloadKind,
    /// Rounds of packed random simulation for probability estimation.
    pub prob_rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrojanConfig {
    fn default() -> Self {
        TrojanConfig {
            trigger_width: 3,
            rare_threshold: 0.2,
            payload: PayloadKind::Corrupt,
            prob_rounds: 64,
            seed: 0x0712_01A4,
        }
    }
}

/// A Trojan-infested netlist with ground truth for evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TrojanedNetlist {
    /// The modified netlist (same interface as the original, except a
    /// [`PayloadKind::Leak`] payload re-drives an existing output).
    pub netlist: Netlist,
    /// The trigger conjunction: `(net, rare_value)` pairs — the trigger
    /// fires when every net holds its rare value.
    pub trigger: Vec<(NetId, bool)>,
    /// The trigger output net in the modified netlist.
    pub trigger_net: NetId,
    /// The payload used.
    pub payload: PayloadKind,
    /// One input vector known to fire the trigger (the designer's
    /// activation sequence).
    pub activation_example: Vec<bool>,
}

impl TrojanedNetlist {
    /// Checks whether `inputs` activates the trigger (by simulating the
    /// infested netlist).
    pub fn trigger_fires(&self, inputs: &[bool]) -> bool {
        let values = self
            .netlist
            .eval_nets(inputs, &[])
            .expect("combinational eval");
        values[self.trigger_net.index()]
    }
}

/// Inserts a rare-trigger Trojan into a combinational netlist.
///
/// Trigger nets are chosen among the rarest internal signals (signal
/// probability within `rare_threshold` of 0 or 1), mutually distinct.
///
/// # Errors
///
/// Returns an error if the netlist is cyclic.
///
/// # Panics
///
/// Panics if fewer rare nets exist than `trigger_width`, or if the
/// design lacks the nets/outputs the payload needs.
pub fn insert_trojan(
    nl: &Netlist,
    config: &TrojanConfig,
) -> Result<TrojanedNetlist, seceda_netlist::NetlistError> {
    let probs = signal_probabilities(nl, config.prob_rounds, config.seed)?;
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xDEAD);
    // rank driven internal nets by rarity
    let mut rare: Vec<(NetId, bool, f64)> = nl
        .gates()
        .iter()
        .map(|g| g.output)
        .map(|n| {
            let p = probs[n.index()];
            // rare value: the polarity that occurs less often
            let rare_value = p < 0.5;
            (n, rare_value, p.min(1.0 - p))
        })
        .filter(|&(_, _, rarity)| rarity <= config.rare_threshold && rarity > 0.0)
        .collect();
    rare.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
    assert!(
        rare.len() >= config.trigger_width,
        "only {} rare nets below threshold {}, need {}",
        rare.len(),
        config.rare_threshold,
        config.trigger_width
    );

    // A competent Trojan designer picks a trigger that CAN fire: greedily
    // add rare nets whose rare polarities are jointly observed on at
    // least one sampled input pattern.
    use seceda_sim::{pack_patterns, PackedSim};
    let sim = PackedSim::new(nl)?;
    let num_inputs = nl.inputs().len();
    let rounds = config.prob_rounds.max(8);
    let mut batches: Vec<Vec<Vec<bool>>> = Vec::with_capacity(rounds);
    let mut value_rows: Vec<Vec<u64>> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let batch: Vec<Vec<bool>> = (0..64)
            .map(|_| (0..num_inputs).map(|_| rng.gen()).collect())
            .collect();
        let words = pack_patterns(&batch, num_inputs);
        value_rows.push(sim.eval(&words));
        batches.push(batch);
    }
    // per-candidate rare-activity masks (one u64 per batch)
    let activity = |n: NetId, v: bool| -> Vec<u64> {
        value_rows
            .iter()
            .map(|row| {
                let w = row[n.index()];
                if v {
                    w
                } else {
                    !w
                }
            })
            .collect()
    };
    let mut trigger: Vec<(NetId, bool)> = Vec::new();
    let mut joint: Vec<u64> = vec![u64::MAX; rounds];
    for &(n, v, _) in &rare {
        if trigger.len() == config.trigger_width {
            break;
        }
        let mask = activity(n, v);
        let intersect: Vec<u64> = joint.iter().zip(&mask).map(|(a, b)| a & b).collect();
        if intersect.iter().any(|&w| w != 0) {
            joint = intersect;
            trigger.push((n, v));
        }
    }
    assert!(
        trigger.len() == config.trigger_width,
        "could not assemble a satisfiable {}-wide trigger",
        config.trigger_width
    );
    // remember one witness input that fires the trigger
    let (batch_idx, bit) = joint
        .iter()
        .enumerate()
        .find_map(|(b, &w)| (w != 0).then(|| (b, w.trailing_zeros() as usize)))
        .expect("joint mask non-empty");
    let activation_example = batches[batch_idx][bit].clone();

    let mut infested = nl.clone();
    let tags = GateTags::default(); // Trojans are, of course, untagged
                                    // trigger conjunction: AND of (net XNOR rare_value)
    let lits: Vec<NetId> = trigger
        .iter()
        .map(|&(n, v)| {
            if v {
                n
            } else {
                infested.add_gate_tagged(CellKind::Not, &[n], tags)
            }
        })
        .collect();
    let trigger_net = if lits.len() == 1 {
        lits[0]
    } else {
        infested.add_gate_tagged(CellKind::And, &lits, tags)
    };

    // Payloads splice between the driving logic and the output *pad*
    // only (re-marking the primary output), never rewiring internal
    // loads — rewiring a load that feeds back into the trigger cone
    // would create a combinational cycle.
    let originals: Vec<(NetId, String)> = infested.outputs().to_vec();
    match config.payload {
        PayloadKind::Corrupt => {
            let victim_idx = rng.gen_range(0..originals.len());
            infested.clear_outputs();
            for (k, (net, name)) in originals.into_iter().enumerate() {
                if k == victim_idx {
                    let corrupted =
                        infested.add_gate_tagged(CellKind::Xor, &[net, trigger_net], tags);
                    infested.mark_output(corrupted, name);
                } else {
                    infested.mark_output(net, name);
                }
            }
        }
        PayloadKind::Leak => {
            // leak a random internal (non-trigger) net onto output 0
            let candidates: Vec<NetId> = nl
                .gates()
                .iter()
                .map(|g| g.output)
                .filter(|n| !trigger.iter().any(|&(t, _)| t == *n))
                .collect();
            assert!(!candidates.is_empty(), "no secret net to leak");
            let secret = candidates[rng.gen_range(0..candidates.len())];
            infested.clear_outputs();
            for (k, (net, name)) in originals.into_iter().enumerate() {
                if k == 0 {
                    let leaky =
                        infested.add_gate_tagged(CellKind::Mux, &[trigger_net, net, secret], tags);
                    infested.mark_output(leaky, name);
                } else {
                    infested.mark_output(net, name);
                }
            }
        }
        PayloadKind::DenialOfService => {
            let not_trigger = infested.add_gate_tagged(CellKind::Not, &[trigger_net], tags);
            infested.clear_outputs();
            for (net, name) in originals {
                let gated = infested.add_gate_tagged(CellKind::And, &[net, not_trigger], tags);
                infested.mark_output(gated, name);
            }
        }
    }

    Ok(TrojanedNetlist {
        netlist: infested,
        trigger,
        trigger_net,
        payload: config.payload,
        activation_example,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{random_circuit, RandomCircuitConfig};

    fn host() -> Netlist {
        random_circuit(&RandomCircuitConfig {
            num_gates: 150,
            num_inputs: 12,
            num_outputs: 6,
            with_xor: false, // AND/OR mixes produce rare nodes
            ..RandomCircuitConfig::default()
        })
    }

    #[test]
    fn trojan_is_stealthy_on_random_patterns() {
        let nl = host();
        let trojan = insert_trojan(&nl, &TrojanConfig::default()).expect("insert");
        // function preserved while dormant; trigger rarely fires
        use seceda_testkit::rng::{SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(404);
        let mut fired = 0usize;
        let trials = 400;
        for _ in 0..trials {
            let inputs: Vec<bool> = (0..12).map(|_| rng.gen()).collect();
            let clean = nl.evaluate(&inputs);
            if trojan.trigger_fires(&inputs) {
                fired += 1;
            } else {
                assert_eq!(
                    trojan.netlist.evaluate(&inputs),
                    clean,
                    "dormant Trojan must not disturb the function"
                );
            }
        }
        assert!(
            (fired as f64) < 0.05 * trials as f64,
            "trigger must be rare: fired {fired}/{trials}"
        );
    }

    #[test]
    fn corrupt_payload_flips_an_output_when_fired() {
        let nl = host();
        let trojan = insert_trojan(&nl, &TrojanConfig::default()).expect("insert");
        let inputs = trojan.activation_example.clone();
        assert!(trojan.trigger_fires(&inputs), "witness must fire");
        assert_ne!(
            trojan.netlist.evaluate(&inputs),
            nl.evaluate(&inputs),
            "fired Trojan must corrupt"
        );
    }

    #[test]
    fn dos_payload_zeroes_outputs() {
        let nl = host();
        let trojan = insert_trojan(
            &nl,
            &TrojanConfig {
                payload: PayloadKind::DenialOfService,
                ..TrojanConfig::default()
            },
        )
        .expect("insert");
        let inputs = trojan.activation_example.clone();
        assert!(trojan.trigger_fires(&inputs));
        assert!(trojan.netlist.evaluate(&inputs).iter().all(|&b| !b));
    }

    #[test]
    fn leak_payload_reveals_internal_state() {
        let nl = host();
        let trojan = insert_trojan(
            &nl,
            &TrojanConfig {
                payload: PayloadKind::Leak,
                seed: 99,
                ..TrojanConfig::default()
            },
        )
        .expect("insert");
        // dormant: function intact
        let inputs = vec![false; 12];
        if !trojan.trigger_fires(&inputs) {
            assert_eq!(trojan.netlist.evaluate(&inputs), nl.evaluate(&inputs));
        }
        assert_eq!(trojan.netlist.validate(), Ok(()));
    }
}
