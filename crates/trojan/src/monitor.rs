//! Runtime security monitors \[25\], inserted at logic-synthesis time.
//!
//! The monitor watches the same rare-signal population a Trojan designer
//! would exploit: it raises a `trojan_alarm` output whenever any watched
//! rare conjunction becomes active in the field. Monitor gates carry the
//! `monitor` tag so security-aware synthesis will not sweep them (they
//! drive no functional output).

use seceda_netlist::{CellKind, GateTags, NetId, Netlist, NetlistError};
use seceda_sim::signal_probabilities;

/// A netlist instrumented with a rare-event monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitoredNetlist {
    /// The instrumented netlist; the last output is `trojan_alarm`.
    pub netlist: Netlist,
    /// The rare conditions being watched, as `(net, rare_value)` pairs
    /// grouped per watched conjunction.
    pub watched: Vec<Vec<(NetId, bool)>>,
}

/// Inserts a monitor that watches conjunctions of `width` rare signals.
/// Up to `max_groups` disjoint groups of the rarest signals are formed;
/// the alarm fires when any whole group is at its rare polarity.
///
/// If no signal is rarer than the threshold there is nothing for a
/// rare-trigger Trojan to hide behind; the monitor degenerates to a
/// constant-low alarm.
///
/// # Errors
///
/// Returns an error if the netlist is cyclic.
pub fn insert_rare_event_monitor(
    nl: &Netlist,
    width: usize,
    max_groups: usize,
    rare_threshold: f64,
    seed: u64,
) -> Result<MonitoredNetlist, NetlistError> {
    let probs = signal_probabilities(nl, 64, seed)?;
    let mut rare: Vec<(NetId, bool, f64)> = nl
        .gates()
        .iter()
        .map(|g| g.output)
        .map(|n| {
            let p = probs[n.index()];
            (n, p < 0.5, p.min(1.0 - p))
        })
        .filter(|&(_, _, r)| r <= rare_threshold)
        .collect();
    rare.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));

    let mut instrumented = nl.clone();
    if rare.is_empty() {
        let tags = GateTags {
            monitor: true,
            ..GateTags::default()
        };
        let quiet = instrumented.add_gate_tagged(CellKind::Const0, &[], tags);
        instrumented.mark_output(quiet, "trojan_alarm");
        return Ok(MonitoredNetlist {
            netlist: instrumented,
            watched: Vec::new(),
        });
    }
    let tags = GateTags {
        monitor: true,
        ..GateTags::default()
    };
    let mut watched = Vec::new();
    let mut group_alarms: Vec<NetId> = Vec::new();
    for group in rare.chunks(width).take(max_groups) {
        let members: Vec<(NetId, bool)> = group.iter().map(|&(n, v, _)| (n, v)).collect();
        let lits: Vec<NetId> = members
            .iter()
            .map(|&(n, v)| {
                if v {
                    n
                } else {
                    instrumented.add_gate_tagged(CellKind::Not, &[n], tags)
                }
            })
            .collect();
        let fire = if lits.len() == 1 {
            lits[0]
        } else {
            instrumented.add_gate_tagged(CellKind::And, &lits, tags)
        };
        group_alarms.push(fire);
        watched.push(members);
    }
    let alarm = if group_alarms.len() == 1 {
        group_alarms[0]
    } else {
        instrumented.add_gate_tagged(CellKind::Or, &group_alarms, tags)
    };
    instrumented.mark_output(alarm, "trojan_alarm");
    Ok(MonitoredNetlist {
        netlist: instrumented,
        watched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert::{insert_trojan, TrojanConfig};
    use seceda_netlist::{random_circuit, RandomCircuitConfig};
    use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

    fn host() -> Netlist {
        random_circuit(&RandomCircuitConfig {
            num_gates: 150,
            num_inputs: 12,
            num_outputs: 6,
            with_xor: false,
            ..RandomCircuitConfig::default()
        })
    }

    #[test]
    fn monitor_preserves_function_and_rarely_fires() {
        let nl = host();
        let monitored = insert_rare_event_monitor(&nl, 3, 4, 0.2, 1).expect("instrument");
        let mut rng = StdRng::seed_from_u64(55);
        let mut alarms = 0usize;
        let trials = 300;
        for _ in 0..trials {
            let inputs: Vec<bool> = (0..12).map(|_| rng.gen()).collect();
            let original = nl.evaluate(&inputs);
            let with_alarm = monitored.netlist.evaluate(&inputs);
            assert_eq!(&with_alarm[..original.len()], &original[..]);
            if with_alarm[original.len()] {
                alarms += 1;
            }
        }
        assert!(
            (alarms as f64) < 0.1 * trials as f64,
            "benign operation must rarely alarm: {alarms}/{trials}"
        );
    }

    #[test]
    fn monitor_catches_trojan_activation() {
        // The Trojan designer and the monitor designer both target the
        // rarest signals, so a firing trigger intersects a watched group
        // with good probability. Use the same analysis parameters so the
        // watched set covers the Trojan's chosen nets.
        let nl = host();
        let tconfig = TrojanConfig::default();
        let trojan = insert_trojan(&nl, &tconfig).expect("insert");
        // instrument the *trojaned* netlist (monitor inserted later in
        // the flow, e.g. by the SoC integrator)
        // width-1 monitors on the rarest signals: the trigger output of
        // an inserted Trojan is itself an extremely rare signal and gets
        // watched directly
        let monitored = insert_rare_event_monitor(
            &trojan.netlist,
            1,
            usize::MAX,
            tconfig.rare_threshold,
            tconfig.seed,
        )
        .expect("instrument");
        // the designer's witness input fires the trigger; the monitor
        // must raise the alarm on it
        let inputs = trojan.activation_example.clone();
        assert!(trojan.trigger_fires(&inputs));
        let outs = monitored.netlist.evaluate(&inputs);
        let alarm = outs[outs.len() - 1];
        assert!(alarm, "monitor must notice the rare event firing");
    }
}
