//! Path-delay fingerprinting \[35\].
//!
//! A golden population of chips (process variation only) defines, per
//! measured transition, a distribution of settling delays. A Trojan's
//! additional load/stage slows some path; a chip whose delay falls
//! outside the golden envelope is flagged. The measurement is our
//! event-driven simulator with per-gate delay variation.

use seceda_netlist::{Netlist, NetlistError};
use seceda_sim::EventSim;
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// Fingerprinting parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FingerprintConfig {
    /// Number of golden chips characterized.
    pub golden_chips: usize,
    /// Relative process variation per gate delay (e.g. 0.05 = ±5%).
    pub process_sigma: f64,
    /// Number of random input transitions measured per chip.
    pub transitions: usize,
    /// A chip is flagged if any measured delay exceeds the golden mean
    /// by `threshold_sigmas` standard deviations.
    pub threshold_sigmas: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        FingerprintConfig {
            golden_chips: 30,
            process_sigma: 0.04,
            transitions: 16,
            threshold_sigmas: 4.0,
            seed: 0xF1D0,
        }
    }
}

/// A golden delay fingerprint: per measured transition, mean and
/// standard deviation of the settle time over the golden population.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayFingerprint {
    /// The stimulus transitions measured (pairs of input vectors).
    pub stimuli: Vec<(Vec<bool>, Vec<bool>)>,
    /// Mean settle time per transition.
    pub mean: Vec<f64>,
    /// Standard deviation per transition.
    pub std: Vec<f64>,
}

/// Measures one chip: for every stimulus transition and every primary
/// output, the time of the output's last toggle (0.0 if it did not
/// toggle). Per-output resolution is what lets a local Trojan show up —
/// the global settling time is dominated by the design's critical path.
fn measure_chip(
    nl: &Netlist,
    stimuli: &[(Vec<bool>, Vec<bool>)],
    process_sigma: f64,
    extra_delay_per_gate: f64,
    rng: &mut StdRng,
) -> Result<Vec<f64>, NetlistError> {
    let mut sim = EventSim::new(nl)?;
    for gi in 0..nl.num_gates() {
        let g = &nl.gates()[gi];
        let fan = g.inputs.len().max(2);
        let tree_levels = (u32::BITS - (fan as u32 - 1).leading_zeros()) as f64;
        let nominal = g.kind.delay() * tree_levels.max(1.0);
        let variation = 1.0 + process_sigma * (rng.gen_range(-1.0..1.0f64) * 1.7);
        sim.set_gate_delay(gi, (nominal * variation + extra_delay_per_gate).max(0.01));
    }
    let output_nets: Vec<usize> = nl.outputs().iter().map(|&(n, _)| n.index()).collect();
    let mut measurements = Vec::with_capacity(stimuli.len() * output_nets.len());
    for (from, to) in stimuli {
        let report = sim.transition(from, to);
        for &net in &output_nets {
            let last = report
                .events
                .iter()
                .filter(|e| e.net == net)
                .map(|e| e.time)
                .fold(0.0f64, f64::max);
            measurements.push(last);
        }
    }
    Ok(measurements)
}

/// Characterizes the golden population and returns its fingerprint.
///
/// # Errors
///
/// Returns an error if the netlist is cyclic.
pub fn golden_fingerprint(
    nl: &Netlist,
    config: &FingerprintConfig,
) -> Result<DelayFingerprint, NetlistError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = nl.inputs().len();
    let stimuli: Vec<(Vec<bool>, Vec<bool>)> = (0..config.transitions)
        .map(|_| {
            let from: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            let to: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            (from, to)
        })
        .collect();
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); stimuli.len() * nl.outputs().len()];
    for _ in 0..config.golden_chips {
        let chip = measure_chip(nl, &stimuli, config.process_sigma, 0.0, &mut rng)?;
        for (t, v) in chip.into_iter().enumerate() {
            samples[t].push(v);
        }
    }
    let mean: Vec<f64> = samples
        .iter()
        .map(|s| s.iter().sum::<f64>() / s.len().max(1) as f64)
        .collect();
    let std: Vec<f64> = samples
        .iter()
        .zip(&mean)
        .map(|(s, m)| {
            let v = s.iter().map(|x| (x - m).powi(2)).sum::<f64>() / s.len().max(1) as f64;
            v.sqrt().max(1e-6)
        })
        .collect();
    Ok(DelayFingerprint { stimuli, mean, std })
}

/// Tests a suspect chip (netlist `suspect`, possibly Trojaned) against a
/// golden fingerprint. Returns `true` if the chip is flagged.
///
/// The suspect is measured with its own process variation (fresh seed)
/// so false positives are possible — the detection-threshold tradeoff
/// of every parametric test.
///
/// # Errors
///
/// Returns an error if the netlist is cyclic.
pub fn fingerprint_detect(
    suspect: &Netlist,
    fingerprint: &DelayFingerprint,
    config: &FingerprintConfig,
    chip_seed: u64,
) -> Result<bool, NetlistError> {
    let mut rng = StdRng::seed_from_u64(chip_seed);
    let measured = measure_chip(
        suspect,
        &fingerprint.stimuli,
        config.process_sigma,
        0.0,
        &mut rng,
    )?;
    Ok(measured
        .iter()
        .zip(&fingerprint.mean)
        .zip(&fingerprint.std)
        .any(|((m, mu), sd)| (m - mu).abs() > config.threshold_sigmas * sd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert::{insert_trojan, TrojanConfig};
    use seceda_netlist::{random_circuit, RandomCircuitConfig};

    fn host() -> Netlist {
        random_circuit(&RandomCircuitConfig {
            num_gates: 120,
            num_inputs: 10,
            num_outputs: 5,
            with_xor: false,
            ..RandomCircuitConfig::default()
        })
    }

    #[test]
    fn golden_chips_mostly_pass() {
        let nl = host();
        let config = FingerprintConfig::default();
        let fp = golden_fingerprint(&nl, &config).expect("golden");
        let mut false_positives = 0;
        for chip in 0..20 {
            if fingerprint_detect(&nl, &fp, &config, 9000 + chip).expect("measure") {
                false_positives += 1;
            }
        }
        assert!(
            false_positives <= 2,
            "threshold 4σ should rarely flag genuine chips: {false_positives}/20"
        );
    }

    #[test]
    fn trojaned_chips_get_flagged() {
        let nl = host();
        let config = FingerprintConfig::default();
        let fp = golden_fingerprint(&nl, &config).expect("golden");
        let trojan = insert_trojan(&nl, &TrojanConfig::default()).expect("insert");
        let mut detections = 0;
        for chip in 0..20 {
            if fingerprint_detect(&trojan.netlist, &fp, &config, 9100 + chip).expect("measure") {
                detections += 1;
            }
        }
        assert!(
            detections >= 10,
            "payload gates on output paths must slow the chip: {detections}/20"
        );
    }
}
