//! MERO-style statistical test generation for Trojan detection \[40\].
//!
//! Unknown triggers hide on rarely-active nets. MERO's insight: a test
//! set that drives every rare node to its rare value at least N times
//! has a high chance of (partially or fully) exciting an unknown
//! trigger conjunction. This module generates such an N-detect set by
//! filtered random sampling and grades it against sampled triggers.

use seceda_netlist::{NetId, Netlist, NetlistError};
use seceda_sim::{pack_patterns, signal_probabilities, PackedSim};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// MERO parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeroConfig {
    /// Required number of activations per rare node (the "N" in
    /// N-detect).
    pub n_detect: usize,
    /// Rarity threshold: nodes with `min(p, 1-p) <= rare_threshold` are
    /// targeted.
    pub rare_threshold: f64,
    /// Cap on candidate random patterns examined.
    pub max_candidates: usize,
    /// Rounds of packed simulation for probability estimation.
    pub prob_rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MeroConfig {
    fn default() -> Self {
        MeroConfig {
            n_detect: 5,
            rare_threshold: 0.2,
            max_candidates: 20_000,
            prob_rounds: 64,
            seed: 0x3E60,
        }
    }
}

/// A generated test set plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct MeroTestSet {
    /// The selected test patterns.
    pub patterns: Vec<Vec<bool>>,
    /// The rare nodes targeted, as `(net, rare_value)`.
    pub rare_nodes: Vec<(NetId, bool)>,
    /// Activation count per rare node achieved by the set.
    pub activations: Vec<usize>,
}

impl MeroTestSet {
    /// Fraction of rare nodes that reached the N-detect goal.
    pub fn satisfaction(&self, n_detect: usize) -> f64 {
        if self.rare_nodes.is_empty() {
            return 1.0;
        }
        self.activations.iter().filter(|&&a| a >= n_detect).count() as f64
            / self.rare_nodes.len() as f64
    }
}

/// Generates an N-detect test set: random candidates are kept when they
/// activate at least one rare node that still needs activations.
///
/// # Errors
///
/// Returns an error if the netlist is cyclic.
pub fn generate_mero_tests(nl: &Netlist, config: &MeroConfig) -> Result<MeroTestSet, NetlistError> {
    let probs = signal_probabilities(nl, config.prob_rounds, config.seed)?;
    let rare_nodes: Vec<(NetId, bool)> = nl
        .gates()
        .iter()
        .map(|g| g.output)
        .filter(|n| probs[n.index()].min(1.0 - probs[n.index()]) <= config.rare_threshold)
        .map(|n| (n, probs[n.index()] < 0.5))
        .collect();
    let sim = PackedSim::new(nl)?;
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1234);
    let mut activations = vec![0usize; rare_nodes.len()];
    let mut patterns: Vec<Vec<bool>> = Vec::new();
    let num_inputs = nl.inputs().len();
    let mut examined = 0usize;
    'outer: while examined < config.max_candidates {
        // evaluate 64 candidates at once
        let batch: Vec<Vec<bool>> = (0..64)
            .map(|_| (0..num_inputs).map(|_| rng.gen()).collect())
            .collect();
        examined += 64;
        let words = pack_patterns(&batch, num_inputs);
        let values = sim.eval(&words);
        for (p, pattern) in batch.iter().enumerate() {
            let mut useful = false;
            for (k, &(net, rare_value)) in rare_nodes.iter().enumerate() {
                if activations[k] >= config.n_detect {
                    continue;
                }
                let bit = (values[net.index()] >> p) & 1 == 1;
                if bit == rare_value {
                    useful = true;
                }
            }
            if useful {
                // commit this pattern's activations
                for (k, &(net, rare_value)) in rare_nodes.iter().enumerate() {
                    let bit = (values[net.index()] >> p) & 1 == 1;
                    if bit == rare_value {
                        activations[k] += 1;
                    }
                }
                patterns.push(pattern.clone());
            }
            if activations.iter().all(|&a| a >= config.n_detect) {
                break 'outer;
            }
        }
    }
    Ok(MeroTestSet {
        patterns,
        rare_nodes,
        activations,
    })
}

/// Grades a test set against sampled hypothetical triggers: draws
/// `samples` random `width`-node conjunctions of rare nodes and reports
/// the fraction fully activated by at least one pattern.
///
/// # Errors
///
/// Returns an error if the netlist is cyclic.
pub fn trigger_coverage(
    nl: &Netlist,
    tests: &MeroTestSet,
    width: usize,
    samples: usize,
    seed: u64,
) -> Result<f64, NetlistError> {
    if tests.rare_nodes.len() < width || samples == 0 {
        return Ok(0.0);
    }
    let sim = PackedSim::new(nl)?;
    // evaluate all patterns once (in packed batches)
    let num_inputs = nl.inputs().len();
    let mut value_rows: Vec<Vec<u64>> = Vec::new(); // per batch, per net
    for chunk in tests.patterns.chunks(64) {
        let words = pack_patterns(chunk, num_inputs);
        value_rows.push(sim.eval(&words));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut covered = 0usize;
    for _ in 0..samples {
        // sample a random conjunction of distinct rare nodes
        let mut picks: Vec<usize> = Vec::with_capacity(width);
        while picks.len() < width {
            let k = rng.gen_range(0..tests.rare_nodes.len());
            if !picks.contains(&k) {
                picks.push(k);
            }
        }
        // does any pattern activate all of them simultaneously?
        let mut hit = false;
        'batches: for (b, values) in value_rows.iter().enumerate() {
            let batch_len = tests.patterns.len().saturating_sub(b * 64).min(64);
            let mut mask = if batch_len == 64 {
                u64::MAX
            } else {
                (1u64 << batch_len) - 1
            };
            for &k in &picks {
                let (net, rare_value) = tests.rare_nodes[k];
                let word = values[net.index()];
                mask &= if rare_value { word } else { !word };
                if mask == 0 {
                    continue 'batches;
                }
            }
            hit = true;
            break;
        }
        if hit {
            covered += 1;
        }
    }
    Ok(covered as f64 / samples as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{random_circuit, RandomCircuitConfig};

    fn host() -> Netlist {
        random_circuit(&RandomCircuitConfig {
            num_gates: 150,
            num_inputs: 12,
            num_outputs: 6,
            with_xor: false,
            ..RandomCircuitConfig::default()
        })
    }

    #[test]
    fn n_detect_goal_largely_met() {
        let nl = host();
        let config = MeroConfig::default();
        let tests = generate_mero_tests(&nl, &config).expect("generate");
        assert!(!tests.patterns.is_empty());
        // some "rare" nodes are outright unreachable by random stimuli
        // (their activation count stays at zero no matter the budget);
        // MERO's guarantee is that it saturates the *reachable* ones
        let reachable: Vec<usize> = tests
            .activations
            .iter()
            .copied()
            .filter(|&a| a > 0)
            .collect();
        assert!(!reachable.is_empty());
        let reachable_sat = reachable.iter().filter(|&&a| a >= config.n_detect).count() as f64
            / reachable.len() as f64;
        assert!(
            reachable_sat > 0.9,
            "reachable rare nodes should reach N activations: {reachable_sat}"
        );
        // and the overall satisfaction still covers a majority-ish share
        assert!(
            tests.satisfaction(config.n_detect) > 0.5,
            "overall satisfaction: {}",
            tests.satisfaction(config.n_detect)
        );
    }

    #[test]
    fn mero_beats_plain_random_of_same_size() {
        let nl = host();
        let config = MeroConfig::default();
        let tests = generate_mero_tests(&nl, &config).expect("generate");
        let mero_cov = trigger_coverage(&nl, &tests, 2, 200, 5).expect("grade");

        // plain random set of the same size
        use seceda_testkit::rng::{Rng, SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(777);
        let random_set = MeroTestSet {
            patterns: (0..tests.patterns.len())
                .map(|_| (0..12).map(|_| rng.gen()).collect())
                .collect(),
            rare_nodes: tests.rare_nodes.clone(),
            activations: vec![0; tests.rare_nodes.len()],
        };
        let rand_cov = trigger_coverage(&nl, &random_set, 2, 200, 5).expect("grade");
        assert!(
            mero_cov >= rand_cov,
            "MERO should not lose to random: {mero_cov} vs {rand_cov}"
        );
        assert!(mero_cov >= 0.25, "MERO coverage too low: {mero_cov}");
    }

    #[test]
    fn wider_triggers_are_harder() {
        let nl = host();
        let tests = generate_mero_tests(&nl, &MeroConfig::default()).expect("generate");
        let narrow = trigger_coverage(&nl, &tests, 1, 200, 6).expect("grade");
        let wide = trigger_coverage(&nl, &tests, 4, 200, 6).expect("grade");
        assert!(
            wide <= narrow,
            "wider conjunctions must be harder to cover: {wide} vs {narrow}"
        );
    }

    #[test]
    fn degenerate_cases() {
        let nl = host();
        let tests = generate_mero_tests(&nl, &MeroConfig::default()).expect("generate");
        assert_eq!(
            trigger_coverage(&nl, &tests, 10_000, 10, 7).expect("grade"),
            0.0,
            "impossible width yields zero coverage"
        );
        assert_eq!(trigger_coverage(&nl, &tests, 2, 0, 8).expect("grade"), 0.0);
    }
}
