//! # seceda-trojan
//!
//! Hardware Trojans: insertion, detection by testing, detection by
//! side-channel fingerprints, and runtime monitors — the Trojan column
//! of Table II.
//!
//! * [`insert`] — rare-trigger Trojan insertion: the trigger is a
//!   conjunction of rarely-active internal signals (found by signal
//!   probability analysis), the payload corrupts, leaks, or disables;
//! * [`mero`] — MERO-style statistical test generation \[40\]: patterns
//!   that excite every rare node to its rare value at least N times,
//!   maximizing the chance of firing unknown triggers;
//! * [`fingerprint`] — path-delay fingerprinting \[35\]: compare a chip's
//!   path-delay signature against a golden population with process
//!   variation; the extra load of a Trojan shows as an outlier;
//! * [`iddq`] — leakage-current analysis over multiple supply domains
//!   \[60\]: Trojan gates draw quiescent current that does not fit the
//!   golden distribution;
//! * [`monitor`] — design-time insertion of runtime security monitors
//!   \[25\] that raise an alarm when a rare trigger condition actually
//!   fires in the field.

pub mod fingerprint;
pub mod iddq;
pub mod insert;
pub mod mero;
pub mod monitor;

pub use fingerprint::{fingerprint_detect, DelayFingerprint, FingerprintConfig};
pub use iddq::{iddq_detect, IddqConfig, IddqReport};
pub use insert::{insert_trojan, PayloadKind, TrojanConfig, TrojanedNetlist};
pub use mero::{generate_mero_tests, trigger_coverage, MeroConfig, MeroTestSet};
pub use monitor::{insert_rare_event_monitor, MonitoredNetlist};
