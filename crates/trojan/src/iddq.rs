//! Quiescent-current (IDDQ) Trojan detection over multiple supply
//! domains \[60\].
//!
//! Each gate draws a kind-dependent leakage current with process
//! variation. The die is partitioned into supply domains (consecutive
//! gate-index ranges standing in for power-pad regions); a Trojan's
//! extra gates raise the current of their domain beyond the golden
//! population's envelope. Regional measurement is what makes small
//! Trojans visible — globally their contribution drowns in variation.

use seceda_netlist::{CellKind, Netlist};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// IDDQ analysis parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddqConfig {
    /// Number of supply domains (power pads).
    pub domains: usize,
    /// Relative process variation of each gate's leakage.
    pub process_sigma: f64,
    /// Golden population size.
    pub golden_chips: usize,
    /// Flag threshold in golden standard deviations.
    pub threshold_sigmas: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IddqConfig {
    fn default() -> Self {
        IddqConfig {
            domains: 4,
            process_sigma: 0.05,
            golden_chips: 40,
            threshold_sigmas: 4.0,
            seed: 0x1DD0,
        }
    }
}

/// Per-domain verdicts for one suspect chip.
#[derive(Debug, Clone, PartialEq)]
pub struct IddqReport {
    /// Measured current per domain.
    pub measured: Vec<f64>,
    /// Golden mean per domain.
    pub golden_mean: Vec<f64>,
    /// Golden standard deviation per domain.
    pub golden_std: Vec<f64>,
    /// `true` per domain that exceeded the threshold.
    pub flagged: Vec<bool>,
}

impl IddqReport {
    /// `true` if any domain was flagged.
    pub fn detected(&self) -> bool {
        self.flagged.iter().any(|&f| f)
    }
}

/// Nominal leakage per cell kind (arbitrary units).
fn leakage(kind: CellKind) -> f64 {
    match kind {
        CellKind::Const0 | CellKind::Const1 => 0.0,
        CellKind::Buf | CellKind::Not => 0.5,
        CellKind::Nand | CellKind::Nor => 1.0,
        CellKind::And | CellKind::Or => 1.5,
        CellKind::Xor | CellKind::Xnor | CellKind::Mux => 2.5,
        CellKind::Dff => 4.0,
    }
}

/// Measures one chip's per-domain IDDQ. The *golden reference netlist*
/// defines the domain boundaries: gates are assigned round-robin by
/// index over `domains`, and any extra gates a Trojaned suspect carries
/// land in their natural domains too.
fn measure(nl: &Netlist, domains: usize, sigma: f64, rng: &mut StdRng) -> Vec<f64> {
    let mut sums = vec![0.0; domains];
    for (gi, g) in nl.gates().iter().enumerate() {
        let nominal = leakage(g.kind);
        let value = nominal * (1.0 + sigma * rng.gen_range(-1.7..1.7));
        sums[gi % domains] += value;
    }
    sums
}

/// Runs the regional IDDQ test: characterizes the golden population from
/// `golden` and measures `suspect`.
pub fn iddq_detect(
    golden: &Netlist,
    suspect: &Netlist,
    config: &IddqConfig,
    chip_seed: u64,
) -> IddqReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); config.domains];
    for _ in 0..config.golden_chips {
        let chip = measure(golden, config.domains, config.process_sigma, &mut rng);
        for (d, v) in chip.into_iter().enumerate() {
            samples[d].push(v);
        }
    }
    let golden_mean: Vec<f64> = samples
        .iter()
        .map(|s| s.iter().sum::<f64>() / s.len().max(1) as f64)
        .collect();
    let golden_std: Vec<f64> = samples
        .iter()
        .zip(&golden_mean)
        .map(|(s, m)| {
            (s.iter().map(|x| (x - m).powi(2)).sum::<f64>() / s.len().max(1) as f64)
                .sqrt()
                .max(1e-6)
        })
        .collect();
    let mut chip_rng = StdRng::seed_from_u64(chip_seed);
    let measured = measure(suspect, config.domains, config.process_sigma, &mut chip_rng);
    let flagged: Vec<bool> = measured
        .iter()
        .zip(&golden_mean)
        .zip(&golden_std)
        .map(|((m, mu), sd)| (m - mu) > config.threshold_sigmas * sd)
        .collect();
    IddqReport {
        measured,
        golden_mean,
        golden_std,
        flagged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert::{insert_trojan, TrojanConfig};
    use seceda_netlist::{random_circuit, RandomCircuitConfig};

    fn host() -> Netlist {
        random_circuit(&RandomCircuitConfig {
            num_gates: 200,
            num_inputs: 12,
            num_outputs: 6,
            with_xor: false,
            ..RandomCircuitConfig::default()
        })
    }

    #[test]
    fn genuine_chips_pass() {
        let nl = host();
        let config = IddqConfig::default();
        let mut false_positives = 0;
        for chip in 0..20 {
            if iddq_detect(&nl, &nl, &config, 100 + chip).detected() {
                false_positives += 1;
            }
        }
        assert!(false_positives <= 2, "{false_positives}/20 false positives");
    }

    #[test]
    fn trojaned_chips_detected_regionally() {
        let nl = host();
        let trojan = insert_trojan(&nl, &TrojanConfig::default()).expect("insert");
        let config = IddqConfig::default();
        let mut detections = 0;
        for chip in 0..20 {
            if iddq_detect(&nl, &trojan.netlist, &config, 200 + chip).detected() {
                detections += 1;
            }
        }
        assert!(
            detections >= 15,
            "extra Trojan gates must raise some domain: {detections}/20"
        );
    }

    #[test]
    fn regional_beats_global_for_small_trojans() {
        let nl = host();
        let trojan = insert_trojan(&nl, &TrojanConfig::default()).expect("insert");
        let regional = IddqConfig::default();
        let global = IddqConfig {
            domains: 1,
            ..IddqConfig::default()
        };
        let mut regional_hits = 0;
        let mut global_hits = 0;
        for chip in 0..20 {
            if iddq_detect(&nl, &trojan.netlist, &regional, 300 + chip).detected() {
                regional_hits += 1;
            }
            if iddq_detect(&nl, &trojan.netlist, &global, 300 + chip).detected() {
                global_hits += 1;
            }
        }
        assert!(
            regional_hits >= global_hits,
            "finer domains see smaller anomalies: {regional_hits} vs {global_hits}"
        );
    }
}
