//! Integration tests exercising the testkit through its public surface,
//! the way downstream crates consume it: the prelude, the macros, and
//! the JSON serializer against hand-written expected strings.

use seceda_testkit::json::{Json, ToJson};
use seceda_testkit::prelude::*;

// ---------------------------------------------------------------- rng

#[test]
fn same_seed_same_stream_across_instances() {
    let mut a = StdRng::seed_from_u64(0xDEAD_BEEF);
    let mut b = StdRng::seed_from_u64(0xDEAD_BEEF);
    for _ in 0..1000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[test]
fn different_seeds_diverge() {
    let mut a = StdRng::seed_from_u64(1);
    let mut b = StdRng::seed_from_u64(2);
    let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
    assert_eq!(same, 0, "independent seeds should not collide in 64 draws");
}

#[test]
fn gen_range_respects_bounds_for_every_supported_shape() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..2000 {
        let v: usize = rng.gen_range(0..17);
        assert!(v < 17);
        let v: i64 = rng.gen_range(-50..=50);
        assert!((-50..=50).contains(&v));
        let v: u64 = rng.gen_range(1_000_000..1_000_003);
        assert!((1_000_000..1_000_003).contains(&v));
        let v: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&v));
    }
}

#[test]
fn gen_range_covers_the_whole_interval() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut seen = [false; 8];
    for _ in 0..512 {
        seen[rng.gen_range(0..8usize)] = true;
    }
    assert!(
        seen.iter().all(|&s| s),
        "all 8 values should appear: {seen:?}"
    );
}

#[test]
fn shuffle_permutes_and_fill_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(123);
    let mut v: Vec<u32> = (0..64).collect();
    rng.shuffle(&mut v);
    let mut sorted = v.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..64).collect::<Vec<_>>());

    let mut a = [0u8; 32];
    let mut b = [0u8; 32];
    StdRng::seed_from_u64(77).fill_bytes(&mut a);
    StdRng::seed_from_u64(77).fill_bytes(&mut b);
    assert_eq!(a, b);
}

// --------------------------------------------------------------- prop

proptest! {
    #[test]
    fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
    }

    #[test]
    fn vec_len_in_range(v in collection::vec(0u8..255, 3..=9)) {
        prop_assert!((3..=9).contains(&v.len()));
        prop_assert!(v.iter().all(|&x| x < 255));
    }

    #[test]
    fn assume_skips_rejected_cases(n in 0u32..100) {
        prop_assume!(n % 2 == 0);
        prop_assert_eq!(n % 2, 0);
    }
}

#[test]
fn failing_property_reports_the_inputs() {
    // run the expansion by hand so the panic can be inspected
    let result = std::panic::catch_unwind(|| {
        proptest! {
            fn always_fails(x in 10u32..20) {
                prop_assert!(x > 1000, "x was small");
            }
        }
        always_fails();
    });
    let err = result.expect_err("the property must fail");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
    assert!(
        msg.contains("failed"),
        "message should say it failed: {msg}"
    );
    assert!(
        msg.contains("inputs:"),
        "message should report inputs: {msg}"
    );
    assert!(
        msg.contains("x was small"),
        "custom text should survive: {msg}"
    );
}

#[test]
fn property_runs_are_deterministic() {
    // the same property body sees the same cases on every run: collect
    // generated values twice via side channel and compare
    use std::sync::Mutex;
    static SEEN: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    fn run_once() -> Vec<u64> {
        SEEN.lock().unwrap().clear();
        proptest! {
            fn observe(x in any::<u64>()) {
                SEEN.lock().unwrap().push(x);
                prop_assert!(true);
            }
        }
        observe();
        SEEN.lock().unwrap().clone()
    }

    let first = run_once();
    let second = run_once();
    assert!(!first.is_empty());
    assert_eq!(first, second, "cases must be identical across runs");
}

// --------------------------------------------------------------- json

#[test]
fn json_matches_hand_written_strings() {
    assert_eq!(Json::Null.render(), "null");
    assert_eq!(Json::from(true).render(), "true");
    assert_eq!(Json::from(42i64).render(), "42");
    assert_eq!(Json::from(2.5f64).render(), "2.5");
    assert_eq!(
        Json::from("a \"quoted\"\nline").render(),
        "\"a \\\"quoted\\\"\\nline\""
    );
    assert_eq!(
        Json::obj()
            .field("name", "aes")
            .field("gates", 1024i64)
            .field("pass", true)
            .build()
            .render(),
        "{\"name\":\"aes\",\"gates\":1024,\"pass\":true}"
    );
    assert_eq!(
        Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Int(3)]).render(),
        "[1,2,3]"
    );
}

#[test]
fn json_round_trips_through_the_parser() {
    let doc = Json::obj()
        .field("label", "secure flow")
        .field("all_pass", true)
        .field(
            "metrics",
            Json::Arr(vec![
                Json::obj()
                    .field("name", "tvla")
                    .field("value", 3.5f64)
                    .build(),
                Json::obj()
                    .field("name", "barriers")
                    .field("value", 12i64)
                    .build(),
            ]),
        )
        .field("nothing", Json::Null)
        .build();
    let text = doc.render();
    let back = Json::parse(&text).expect("parse what we rendered");
    assert_eq!(back.render(), text, "render→parse→render must be stable");
    assert_eq!(
        back.get("metrics").and_then(|m| match m {
            Json::Arr(v) => v.first().and_then(|f| f.get("name")),
            _ => None,
        }),
        Some(&Json::Str("tvla".into()))
    );
}

#[test]
fn to_json_trait_is_usable_downstream() {
    struct Stage {
        name: &'static str,
        gates: usize,
    }
    impl ToJson for Stage {
        fn to_json(&self) -> Json {
            Json::obj()
                .field("name", self.name)
                .field("gates", self.gates as i64)
                .build()
        }
    }
    let s = Stage {
        name: "synthesis",
        gates: 77,
    };
    assert_eq!(s.to_json_string(), "{\"name\":\"synthesis\",\"gates\":77}");
    assert_eq!(
        Json::arr(&[s]).render(),
        "[{\"name\":\"synthesis\",\"gates\":77}]"
    );
}

// -------------------------------------------------------------- bench

#[test]
fn bench_harness_runs_and_chains() {
    use seceda_testkit::bench::Criterion;
    let mut c = Criterion::default().sample_size(5);
    // criterion-style chaining must work; each call times and reports
    c.bench_function("smoke/xor_fold", |b| {
        b.iter(|| (0u64..100).fold(0, |acc, x| acc ^ x))
    })
    .bench_function("smoke/sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
}

#[test]
fn bench_result_json_line_matches_expected_shape() {
    use seceda_testkit::bench::BenchResult;
    let r = BenchResult {
        name: "fig2/classical".into(),
        median_ns: 1234,
        samples: 20,
    };
    assert_eq!(
        r.json_line(),
        "{\"name\":\"fig2/classical\",\"median_ns\":1234,\"samples\":20,\"iters_per_sample\":1}"
    );
}
