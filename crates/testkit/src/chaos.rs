//! A deterministic chaos / fault-injection harness.
//!
//! Robustness claims ("every engine degrades gracefully") are only
//! testable if failures can be *provoked on demand, reproducibly*. This
//! module provides seeded fault injection at named **injection points**
//! scattered through the workspace (`"par.worker"`, `"sat.budget"`,
//! `"parse.design"`, `"compose.threat.panic"`, ...). Each point asks
//! [`fires`] whether to inject, passing a caller-chosen `salt` (an item
//! index, a solve ordinal, an input length). The decision is a pure
//! function of `(seed, point, salt)` — **never** of call order or thread
//! schedule — so a chaos run is bit-identical across worker counts and
//! repeat invocations.
//!
//! Activation, in priority order:
//!
//! 1. a scoped override installed by [`with_seed`], [`with_forced`] or
//!    [`without_chaos`] (tests); scopes serialize on a global lock so
//!    concurrent `cargo test` threads cannot observe each other's
//!    configuration;
//! 2. the `SECEDA_CHAOS=<seed>` environment variable (decimal or
//!    `0x`-prefixed hex), read once on first use.
//!
//! When neither is present the harness is off and every check is a
//! single relaxed atomic load — the production hot paths pay one
//! predictable branch.
//!
//! Injected effects are the small set the engines must survive:
//! panics ([`maybe_panic`]), budget exhaustion ([`maybe_exhaust`]), and
//! truncated parser input ([`truncate_input`]). Every actual injection
//! increments a process-wide counter ([`injections`]) that callers
//! surface as the `chaos.injections` trace counter.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Fast-path gate: 0 = not yet initialised from the environment,
/// 1 = off, 2 = on.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Total number of faults actually injected since process start.
static INJECTIONS: AtomicU64 = AtomicU64::new(0);

/// Full configuration, consulted only when [`ACTIVE`] says on.
static CONFIG: Mutex<ChaosConfig> = Mutex::new(ChaosConfig {
    seed: None,
    forced: None,
});

/// Serializes [`with_seed`] / [`with_forced`] / [`without_chaos`] scopes
/// across test threads.
static SCOPE: Mutex<()> = Mutex::new(());

#[derive(Debug, Clone)]
struct ChaosConfig {
    /// Seed for probabilistic firing; `None` disables random injection
    /// (a forced point may still fire).
    seed: Option<u64>,
    /// A point forced to always fire, optionally only at one salt.
    forced: Option<(String, Option<u64>)>,
}

fn ignore_poison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // chaos tests inject panics on purpose; a poisoned lock carries no
    // broken invariant here
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Parses a `SECEDA_CHAOS` value: decimal, or hex with a `0x` prefix.
fn parse_seed(v: &str) -> Option<u64> {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// Reads `SECEDA_CHAOS` on first use and settles [`ACTIVE`].
fn init_from_env() -> bool {
    let seed = std::env::var("SECEDA_CHAOS")
        .ok()
        .and_then(|v| parse_seed(&v));
    let mut cfg = ignore_poison(CONFIG.lock());
    // another thread may have initialised (or a scope may have installed
    // itself) while we read the environment; never downgrade
    match ACTIVE.load(Ordering::Relaxed) {
        0 => {
            cfg.seed = seed;
            let state = if seed.is_some() { 2 } else { 1 };
            ACTIVE.store(state, Ordering::Relaxed);
            state == 2
        }
        state => state == 2,
    }
}

/// Whether chaos injection is currently enabled (scoped override or
/// `SECEDA_CHAOS` in the environment).
#[inline]
pub fn active() -> bool {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        state => state == 2,
    }
}

/// The seed `SECEDA_CHAOS` supplied, if chaos came from the environment
/// (scoped overrides report their own seed while installed).
pub fn current_seed() -> Option<u64> {
    if !active() {
        return None;
    }
    ignore_poison(CONFIG.lock()).seed
}

/// Total number of faults injected so far in this process (panics,
/// exhaustions, truncations). Monotonic; callers mirror deltas into the
/// `chaos.injections` trace counter.
pub fn injections() -> u64 {
    INJECTIONS.load(Ordering::Relaxed)
}

/// SplitMix64 — the workspace's standard seed scrambler.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the point name, so the decision stream differs per point.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The pure decision function: does injection point `point` fire at
/// `salt` under the current configuration?
///
/// Roughly 1-in-8 of `(point, salt)` pairs fire under a seed; a forced
/// point fires always (or at exactly its pinned salt). The result
/// depends only on the configuration, the point name, and the salt —
/// never on call order — which is what makes chaos runs deterministic
/// across thread schedules.
pub fn fires(point: &str, salt: u64) -> bool {
    if !active() {
        return false;
    }
    let cfg = ignore_poison(CONFIG.lock());
    if let Some((fp, fsalt)) = &cfg.forced {
        let salt_ok = match fsalt {
            Some(s) => *s == salt,
            None => true,
        };
        if fp == point && salt_ok {
            return true;
        }
    }
    match cfg.seed {
        Some(seed) => {
            let mix = splitmix64(seed ^ fnv1a(point) ^ splitmix64(salt));
            mix & 7 == 0
        }
        None => false,
    }
}

/// Records one actual injection.
fn record() {
    INJECTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Panics with a recognizable chaos payload if `point` fires at `salt`.
///
/// # Panics
///
/// Deliberately, when the injection fires.
pub fn maybe_panic(point: &str, salt: u64) {
    if fires(point, salt) {
        record();
        panic!("chaos: injected panic at {point}#{salt}");
    }
}

/// Returns `true` — "pretend the budget is exhausted" — if `point`
/// fires at `salt`.
pub fn maybe_exhaust(point: &str, salt: u64) -> bool {
    if fires(point, salt) {
        record();
        true
    } else {
        false
    }
}

/// Truncates `text` at a seed-chosen char boundary if `point` fires
/// (salted by the input length). `None` means "no injection — use the
/// input as is".
pub fn truncate_input(point: &str, text: &str) -> Option<String> {
    let salt = text.len() as u64;
    if text.is_empty() || !fires(point, salt) {
        return None;
    }
    let seed = ignore_poison(CONFIG.lock()).seed.unwrap_or(0);
    let mut cut = (splitmix64(seed ^ fnv1a(point) ^ salt) % salt) as usize;
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    record();
    Some(text[..cut].to_string())
}

/// Restores the previous configuration when a scope ends (also on
/// panic — chaos scopes inject panics on purpose).
struct ScopeGuard {
    prev_active: u8,
    prev_cfg: ChaosConfig,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let mut cfg = ignore_poison(CONFIG.lock());
        *cfg = self.prev_cfg.clone();
        ACTIVE.store(self.prev_active, Ordering::Relaxed);
    }
}

fn enter_scope(new: ChaosConfig, on: bool) -> ScopeGuard {
    let lock = ignore_poison(SCOPE.lock());
    // settle env state first so restoring never resurrects "uninitialised"
    active();
    let mut cfg = ignore_poison(CONFIG.lock());
    let guard = ScopeGuard {
        prev_active: ACTIVE.load(Ordering::Relaxed),
        prev_cfg: cfg.clone(),
        _lock: lock,
    };
    *cfg = new;
    drop(cfg);
    ACTIVE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    guard
}

/// Runs `f` with chaos enabled under `seed`, restoring the previous
/// configuration afterwards. Scopes serialize process-wide.
pub fn with_seed<R>(seed: u64, f: impl FnOnce() -> R) -> R {
    let _guard = enter_scope(
        ChaosConfig {
            seed: Some(seed),
            forced: None,
        },
        true,
    );
    f()
}

/// Runs `f` with exactly one injection point forced to fire — at every
/// salt, or only at `salt` when given — and no random injection.
/// Restores the previous configuration afterwards.
pub fn with_forced<R>(point: &str, salt: Option<u64>, f: impl FnOnce() -> R) -> R {
    let _guard = enter_scope(
        ChaosConfig {
            seed: None,
            forced: Some((point.to_string(), salt)),
        },
        true,
    );
    f()
}

/// Runs `f` with chaos disabled, even if `SECEDA_CHAOS` is set. Chaos
/// tests use this for their straight-through reference runs.
pub fn without_chaos<R>(f: impl FnOnce() -> R) -> R {
    let _guard = enter_scope(
        ChaosConfig {
            seed: None,
            forced: None,
        },
        false,
    );
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_by_default_when_env_unset() {
        // the test environment must not set SECEDA_CHAOS; under an
        // explicit scope the harness switches on and back off
        without_chaos(|| {
            assert!(!active());
            assert!(!fires("any.point", 0));
            assert!(truncate_input("any.point", "abcdef").is_none());
        });
    }

    #[test]
    fn decisions_are_pure_in_point_and_salt() {
        with_seed(0xDEAD_BEEF, || {
            let a: Vec<bool> = (0..256).map(|s| fires("par.worker", s)).collect();
            let b: Vec<bool> = (0..256).map(|s| fires("par.worker", s)).collect();
            assert_eq!(a, b, "same (seed, point, salt) must agree across calls");
            let hits = a.iter().filter(|&&x| x).count();
            // ~1/8 rate: loose band, but never all-or-nothing
            assert!(hits > 8 && hits < 96, "hit rate off: {hits}/256");
            let other: Vec<bool> = (0..256).map(|s| fires("sat.budget", s)).collect();
            assert_ne!(a, other, "different points must see different streams");
        });
    }

    #[test]
    fn forced_point_fires_only_at_pinned_salt() {
        with_forced("compose.threat.panic", Some(2), || {
            assert!(fires("compose.threat.panic", 2));
            assert!(!fires("compose.threat.panic", 1));
            assert!(!fires("other.point", 2));
        });
        with_forced("compose.threat.panic", None, || {
            assert!(fires("compose.threat.panic", 0));
            assert!(fires("compose.threat.panic", 77));
        });
    }

    #[test]
    fn maybe_panic_payload_is_recognizable() {
        let before = injections();
        let caught = std::panic::catch_unwind(|| {
            with_forced("unit.panic", None, || maybe_panic("unit.panic", 5));
        })
        .expect_err("forced point must panic");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("chaos: injected panic at unit.panic#5"),
            "{msg}"
        );
        assert!(injections() > before);
    }

    #[test]
    fn truncation_is_deterministic_and_shorter() {
        with_forced("parse.design", None, || {
            let text = "INPUT(a)\nINPUT(b)\nOUTPUT(c)\nc = AND(a, b)\n";
            let t1 = truncate_input("parse.design", text).expect("forced fire");
            let t2 = truncate_input("parse.design", text).expect("forced fire");
            assert_eq!(t1, t2);
            assert!(t1.len() < text.len());
            assert!(text.starts_with(&t1));
        });
    }

    #[test]
    fn scopes_restore_on_panic() {
        let _ = std::panic::catch_unwind(|| {
            with_seed(1, || panic!("boom"));
        });
        without_chaos(|| assert!(!active()));
    }
}
