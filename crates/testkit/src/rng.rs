//! Deterministic pseudo-random numbers with the `rand`-0.8-shaped surface
//! the workspace actually uses.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, so every
//! consumer of [`StdRng::seed_from_u64`] gets a stream that is (a) fully
//! determined by the seed, (b) identical on every platform and toolchain,
//! and (c) independent of anything downloaded from a registry. Security
//! evaluation after every flow step (the paper's core demand) only means
//! something if two runs of the same evaluation see the same randomness;
//! this module is where that guarantee lives.
//!
//! The API mirrors the subset of `rand` used across the workspace:
//!
//! * [`SeedableRng::seed_from_u64`] — the only seeding entry point;
//! * [`Rng::gen`] for `bool` and the integer types via [`FromRng`];
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! * [`Rng::gen_bool`], [`Rng::fill`], and [`Rng::shuffle`].
//!
//! ```
//! use seceda_testkit::rng::{Rng, SeedableRng, StdRng};
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! let x = a.gen_range(0..10usize);
//! assert!(x < 10);
//! ```

use std::ops::{Range, RangeInclusive};

/// The low-level source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Constructing a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The default workspace generator: xoshiro256++ (Blackman & Vigna),
/// seeded via SplitMix64.
///
/// The name matches `rand::rngs::StdRng` so call sites read identically,
/// but unlike rand's `StdRng` the stream is a stability guarantee: it
/// will never change out from under a recorded experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from an RNG (the `Standard`
/// distribution of `rand`, reduced to what the workspace samples).
pub trait FromRng {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_rng_uint {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            #[inline]
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // Take the high bits: xoshiro's low bits are its weakest.
                (rng.next_u64() >> (64 - <$t>::BITS)) as $t
            }
        }
    )*};
}
impl_from_rng_uint!(u8, u16, u32, u64, usize);

impl FromRng for i32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u32::from_rng(rng) as i32
    }
}

impl FromRng for i64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Draws a uniform value below `n` without modulo bias (Lemire's
/// multiply-shift rejection method). `n` must be non-zero.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(n);
    let mut low = m as u64;
    if low < n {
        let threshold = n.wrapping_neg() % n;
        while low < threshold {
            m = u128::from(rng.next_u64()) * u128::from(n);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Ranges that [`Rng::gen_range`] can sample from. Generic over the
/// output type (like `rand`'s `SampleRange`) so that an untyped literal
/// range such as `0..10_000` infers its element type from how the
/// sampled value is used.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                debug_assert!(span <= u128::from(u64::MAX));
                let off = uniform_u64_below(rng, span as u64);
                (self.start as i128 + off as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {}..={}", lo, hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}", self.start, self.end
                );
                let unit = <$t as FromRng>::from_rng(rng);
                let v = self.start + unit * (self.end - self.start);
                // Guard against rounding up onto the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {}..={}", lo, hi);
                let unit = <$t as FromRng>::from_rng(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing random-value surface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type (`let b: bool = rng.gen();`).
    #[inline]
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        f64::from_rng(self) < p
    }

    /// Overwrites every element of `dest` with a fresh uniform draw.
    #[inline]
    fn fill<T: FromRng>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::from_rng(self);
        }
    }

    /// Fisher–Yates shuffle of `slice` in place.
    #[inline]
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // State {1, 2, 3, 4}: first outputs of the official xoshiro256++
        // reference implementation.
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }

    #[test]
    fn splitmix_reference_vector() {
        // Seed 0: first output of the official SplitMix64 reference.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn fill_bytes_handles_tail() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
