//! # seceda-testkit
//!
//! The hermetic test substrate for the `seceda` workspace: deterministic
//! randomness, property testing, JSON reporting, and micro-benchmarks —
//! with **zero external dependencies**, so `cargo build --offline &&
//! cargo test --offline` works from a clean checkout with no network and
//! no registry cache.
//!
//! The paper this workspace reproduces (Knechtel et al., DATE 2020)
//! argues that security must be *evaluated after every flow step*. That
//! discipline is only credible if the evaluation itself is always
//! runnable and always reproducible; this crate is the substrate that
//! makes both hold:
//!
//! * [`rng`] — a seedable xoshiro256++/SplitMix64 PRNG with the small
//!   `rand`-shaped surface the workspace uses (`gen`, `gen_range`,
//!   `gen_bool`, `fill`, `shuffle`). Streams are stable across
//!   platforms and toolchains forever.
//! * [`prop`] — a `proptest!`-shaped, shrinking-free property harness.
//!   Case inputs are derived from the test's name and case index, so two
//!   consecutive `cargo test` runs are bit-identical and a failure
//!   report pinpoints the exact inputs.
//! * [`json`] — a tiny JSON value/serializer/parser for stable,
//!   diffable reports (replaces `serde`).
//! * [`bench`] — a wall-clock micro-bench harness with
//!   `criterion_group!`-compatible macros, emitting JSON lines to
//!   `target/seceda-bench.json` (replaces `criterion`).
//! * [`par`] — a scoped-thread, work-stealing parallel map (replaces
//!   `rayon` for the embarrassingly parallel hot loops: fault lists,
//!   CPA key guesses, packed simulation rounds) with order-preserving,
//!   thread-count-independent results.
//! * [`chaos`] — a seeded, deterministic fault injector
//!   (`SECEDA_CHAOS=<seed>`) that provokes panics, budget exhaustion,
//!   and truncated parser input at named injection points, so the
//!   graceful-degradation paths are themselves under test.
//!
//! Test files migrated from `proptest` only change one import:
//!
//! ```
//! use seceda_testkit::prelude::*;
//!
//! proptest! {
//!     #[test]
//!     fn masks_cancel(x in any::<u8>(), m in any::<u8>()) {
//!         prop_assert_eq!((x ^ m) ^ m, x);
//!     }
//! }
//! ```

#![warn(missing_docs)]
// the doctests deliberately show the `proptest!`-shaped syntax, whose
// surface includes `#[test]` inside the macro invocation
#![allow(clippy::test_attr_in_doctest)]

pub mod bench;
pub mod chaos;
pub mod json;
pub mod par;
pub mod prop;
pub mod rng;

/// One-stop import for property tests, mirroring `proptest::prelude`.
///
/// Besides the strategy surface and macros this also re-exports
/// [`prop`](crate::prop) under the names `prop` and `proptest`, so
/// pre-migration paths like `proptest::collection::vec(..)` keep
/// resolving unchanged.
pub mod prelude {
    pub use crate::prop::{self as prop, self as proptest};
    pub use crate::prop::{any, collection, Any, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::rng::{Rng, RngCore, SeedableRng, StdRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}
