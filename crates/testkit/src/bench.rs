//! A wall-clock micro-bench harness with a `criterion`-compatible macro
//! surface.
//!
//! The six bench targets under `crates/bench/benches/` were written
//! against `criterion_group!`/`criterion_main!`/`Criterion`; this module
//! provides those names so the targets port mechanically, while the
//! measurement core stays small enough to audit: per benchmark it runs a
//! fixed warmup, then `sample_size` timed samples, and reports the
//! median (the statistic least disturbed by scheduler noise).
//!
//! Every result is printed and appended as one JSON line to
//! `target/seceda-bench.json` (`CARGO_TARGET_DIR` respected), giving
//! future performance PRs a machine-readable trajectory to compare
//! against:
//!
//! ```json
//! {"name":"fig1/secure_flow","median_ns":123456,"samples":10,"iters_per_sample":1}
//! ```

use crate::json::Json;
use std::io::Write as _;
use std::time::Instant;

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Number of untimed warmup executions per benchmark.
pub const WARMUP_ITERS: usize = 3;

/// The harness handle passed to bench functions (shim of
/// `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples (builder style, like criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark. `f` receives a [`Bencher`] and is
    /// expected to call [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        let result = b.finish(id);
        result.report();
        self
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Times `f`: [`WARMUP_ITERS`] untimed calls, then one timed call per
    /// sample. The closure's output is passed through `std::hint::black_box`
    /// so the computation cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }

    fn finish(mut self, id: &str) -> BenchResult {
        self.samples_ns.sort_unstable();
        let median_ns = if self.samples_ns.is_empty() {
            0
        } else {
            self.samples_ns[self.samples_ns.len() / 2]
        };
        BenchResult {
            name: id.to_string(),
            median_ns,
            samples: self.samples_ns.len(),
        }
    }
}

/// One benchmark's measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Benchmark id as passed to `bench_function`.
    pub name: String,
    /// Median wall-clock time of one iteration, in nanoseconds.
    pub median_ns: u128,
    /// Number of timed samples behind the median.
    pub samples: usize,
}

impl BenchResult {
    /// Renders the measurement as one JSON line, the format appended to
    /// `target/seceda-bench.json`.
    pub fn json_line(&self) -> String {
        Json::obj()
            .field("name", self.name.as_str())
            .field("median_ns", self.median_ns as i64)
            .field("samples", self.samples)
            .field("iters_per_sample", 1i64)
            .build()
            .render()
    }

    fn report(&self) {
        println!(
            "bench {:<48} median {:>12} ns over {} samples",
            self.name, self.median_ns, self.samples
        );
        append_json_line(&self.json_line());
    }
}

/// Resolves the build's `target` directory. Cargo runs test and bench
/// binaries with the *package* root as cwd, so a relative `target/`
/// would scatter files across crate dirs; instead walk up from the
/// running executable (`target/<profile>/deps/...`) to the real one.
///
/// Public so bench targets can drop their own report files (e.g.
/// `BENCH_fault_sim.json`) next to `seceda-bench.json`.
pub fn target_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(dir);
    }
    if let Ok(exe) = std::env::current_exe() {
        if let Some(target) = exe
            .ancestors()
            .find(|p| p.file_name().is_some_and(|n| n == "target"))
        {
            return target.to_path_buf();
        }
    }
    std::path::PathBuf::from("target")
}

/// Appends one line to `target/seceda-bench.json`, best effort: bench
/// timing must never fail a run over an unwritable disk.
fn append_json_line(line: &str) {
    let target = target_dir();
    let path = target.join("seceda-bench.json");
    let _ = std::fs::create_dir_all(&target);
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{line}");
    }
}

/// Declares a bench group (shim of `criterion_group!`). Both the
/// positional form and the `name =` / `config =` / `targets =` form are
/// supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main` (shim of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags (`--bench`, filters) that this
            // minimal harness does not interpret.
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_sorted_samples() {
        let b = Bencher {
            sample_size: 5,
            samples_ns: vec![50, 10, 30, 20, 40],
        };
        let r = b.finish("m");
        assert_eq!(r.median_ns, 30);
        assert_eq!(r.samples, 5);
    }

    #[test]
    fn bencher_iter_collects_requested_samples() {
        let mut c = Criterion::default().sample_size(4);
        // Goes through the whole path including the JSON line append.
        c.bench_function("testkit/self", |b| b.iter(|| 2u64 + 2));
    }

    #[test]
    fn json_line_shape() {
        let r = BenchResult {
            name: "x".into(),
            median_ns: 7,
            samples: 3,
        };
        assert_eq!(
            r.json_line(),
            r#"{"name":"x","median_ns":7,"samples":3,"iters_per_sample":1}"#
        );
    }
}
