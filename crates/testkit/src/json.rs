//! A tiny, dependency-free JSON value, serializer, and parser.
//!
//! Replaces `serde` for the workspace's reporting needs: security
//! reports and bench results are small trees of objects/arrays/numbers,
//! and what matters is that their serialized form is *stable* (byte
//! identical across runs) so reports can be diffed between flow steps.
//! There is no derive machinery; types implement [`ToJson`] by hand,
//! usually through the [`Json::obj`] builder.
//!
//! ```
//! use seceda_testkit::json::{Json, ToJson};
//!
//! let j = Json::obj()
//!     .field("name", "tvla")
//!     .field("passes", true)
//!     .field("max_t", 3.5)
//!     .build();
//! assert_eq!(j.render(), r#"{"name":"tvla","passes":true,"max_t":3.5}"#);
//! assert_eq!(Json::parse(&j.render()).unwrap(), j);
//! ```

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

/// Types that can render themselves as JSON.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;

    /// Convenience: `self.to_json().render()`.
    fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Int(v.into())
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v.into())
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Builder returned by [`Json::obj`].
#[derive(Debug, Clone, Default)]
pub struct ObjBuilder {
    fields: Vec<(String, Json)>,
}

impl ObjBuilder {
    /// Appends a field.
    pub fn field(mut self, name: impl Into<String>, value: impl Into<Json>) -> Self {
        self.fields.push((name.into(), value.into()));
        self
    }

    /// Appends a field whose value implements [`ToJson`].
    pub fn with(mut self, name: impl Into<String>, value: &impl ToJson) -> Self {
        self.fields.push((name.into(), value.to_json()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

impl Json {
    /// Starts an object builder.
    pub fn obj() -> ObjBuilder {
        ObjBuilder::default()
    }

    /// An array from anything iterable over [`ToJson`] items.
    pub fn arr<'a, T: ToJson + 'a>(items: impl IntoIterator<Item = &'a T>) -> Json {
        Json::Arr(items.into_iter().map(ToJson::to_json).collect())
    }

    /// Looks up a field of an object.
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes to a compact string (no whitespace, stable field order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                use fmt::Write as _;
                write!(out, "{i}").expect("write to String");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    use fmt::Write as _;
                    // `{}` on f64 is the shortest representation that
                    // round-trips, and always includes enough to re-parse.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(out, "{:.1}", n).expect("write to String");
                    } else {
                        write!(out, "{}", n).expect("write to String");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. The inverse of [`Json::render`] for every
    /// value this module can produce (non-finite floats excepted, which
    /// render as `null`).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte '{}'", b as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text");
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid integer"))
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_expected_strings() {
        let j = Json::obj()
            .field("a", 1i64)
            .field("b", vec![1i64, 2, 3])
            .field("c", "x\"y")
            .field("d", Json::Null)
            .build();
        assert_eq!(j.render(), r#"{"a":1,"b":[1,2,3],"c":"x\"y","d":null}"#);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let j = Json::parse(r#" { "k" : [ 1 , 2.5 , true , "s" ] } "#).unwrap();
        assert_eq!(
            j,
            Json::Obj(vec![(
                "k".into(),
                Json::Arr(vec![
                    Json::Int(1),
                    Json::Num(2.5),
                    Json::Bool(true),
                    Json::Str("s".into()),
                ])
            )])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
    }
}
