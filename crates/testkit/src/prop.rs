//! A shrinking-free property-test harness shaped like `proptest`.
//!
//! The twelve `tests/properties.rs` files in this workspace were written
//! against `proptest`'s macro surface; this module re-creates exactly
//! that surface — [`crate::proptest!`], [`any`], range strategies,
//! `collection::vec`, tuples, and the `prop_assert*` macros — on top of
//! the deterministic [`StdRng`](crate::rng::StdRng). There is no
//! shrinking: cases are generated from seeds derived from the test's
//! module path and case index, so a failure report names the exact
//! inputs and the exact case, and re-running reproduces it bit-for-bit.
//!
//! ```
//! use seceda_testkit::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!
//!     #[test]
//!     fn addition_commutes(a in 0u64..1000, b in any::<u16>()) {
//!         prop_assert_eq!(a + b as u64, b as u64 + a);
//!     }
//! }
//! ```

use crate::rng::{SeedableRng, StdRng};

/// How many cases a [`crate::proptest!`] block runs per test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// FNV-1a over `bytes`; mixes test names into per-test base seeds.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The RNG for one generated case of one named test. Deterministic in
/// `(test_name, case)` and nothing else.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(fnv1a(test_name.as_bytes()) ^ (u64::from(case) << 32 | 0x5ECE_DA00))
}

/// A generator of test inputs. Unlike `proptest::Strategy` there is no
/// value tree and no shrinking — `generate` draws a value directly.
pub trait Strategy {
    /// The type of the generated input.
    type Value;
    /// Draws one input.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: Clone> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: Clone + crate::rng::SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        crate::rng::SampleRange::sample_one(self.clone(), rng)
    }
}

impl<T: Clone> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: Clone + crate::rng::SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        crate::rng::SampleRange::sample_one(self.clone(), rng)
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one uniform value over the whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                <$t as crate::rng::FromRng>::from_rng(rng)
            }
        }
    )*};
}
impl_arbitrary!(bool, u8, u16, u32, u64, usize, i32, i64, f64);

/// Strategy over the whole domain of `T` (mirror of `proptest::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing the same value every case.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Collection strategies (mirror of `proptest::collection`).
pub mod collection {
    use super::Strategy;
    use crate::rng::{Rng, StdRng};

    /// Acceptable size arguments for [`vec`]: an exact `usize`, a
    /// half-open range, or an inclusive range.
    pub trait IntoSizeRange {
        /// Lower and inclusive upper length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy generating a `Vec` whose elements come from `elem`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        min_len: usize,
        max_len: usize,
    }

    /// `Vec` strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy {
            elem,
            min_len,
            max_len,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min_len..=self.max_len);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The macro-shaped property harness. See the module docs; this is what
/// `proptest! { ... }` expands through.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::prop::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::prop::ProptestConfig = $cfg;
            let __strategies = ( $( $strat, )+ );
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::prop::case_rng(__test_name, __case);
                let ( $( ref $arg, )+ ) = __strategies;
                $( let $arg = $crate::prop::Strategy::generate($arg, &mut __rng); )+
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(concat!(stringify!($arg), " = "));
                        __s.push_str(&format!("{:?}, ", &$arg));
                    )+
                    __s
                };
                let __outcome = ::std::panic::catch_unwind({
                    $( let $arg = ::std::clone::Clone::clone(&$arg); )+
                    ::std::panic::AssertUnwindSafe(move ||
                        -> ::std::result::Result<(), $crate::prop::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })
                });
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::prop::TestCaseError::Reject(_),
                    )) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::prop::TestCaseError::Fail(__msg),
                    )) => {
                        panic!(
                            "[{}] case {}/{} failed: {}\n  inputs: {}",
                            __test_name,
                            __case + 1,
                            __config.cases,
                            __msg,
                            __inputs
                        );
                    }
                    ::std::result::Result::Err(__payload) => {
                        eprintln!(
                            "[{}] case {}/{} panicked\n  inputs: {}",
                            __test_name,
                            __case + 1,
                            __config.cases,
                            __inputs
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`: fails the
/// current case (with its inputs reported) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n   msg: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assert_ne!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`\n  both: {:?}",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`\n  both: {:?}\n   msg: {}",
            __l,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assume!(cond)`: skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_deterministic_per_name_and_case() {
        use crate::rng::Rng;
        let a: u64 = case_rng("t::x", 0).gen();
        let b: u64 = case_rng("t::x", 0).gen();
        let c: u64 = case_rng("t::x", 1).gen();
        let d: u64 = case_rng("t::y", 0).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let s = collection::vec(any::<bool>(), 1..4);
        for case in 0..200 {
            let v = s.generate(&mut case_rng("bounds", case));
            assert!((1..=3).contains(&v.len()));
        }
    }
}
