//! A zero-dependency scoped-thread work chunker.
//!
//! The workspace's hottest loops are embarrassingly parallel over an
//! item list — fault lists in packed fault grading, the 256 key guesses
//! of CPA, the packed rounds of signal-probability estimation. This
//! module fans such a list across OS threads with
//! [`std::thread::scope`], stealing work in small index chunks from a
//! shared atomic cursor, and reassembles results **in item order** so
//! callers observe the exact output a serial loop would have produced.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — results are positionally identical for any
//!    worker count; reductions over the results must therefore be
//!    order-stable by construction.
//! 2. **Zero dependencies** — no rayon; `std::thread::scope` plus one
//!    `AtomicUsize` is the whole scheduler.
//! 3. **Cheap for small inputs** — one item (or one worker) short-cuts
//!    to the plain serial loop with no thread spawn.
//!
//! Worker count resolution: an explicit [`with_workers`] override (used
//! by determinism tests), else the `SECEDA_THREADS` environment
//! variable, else [`std::thread::available_parallelism`].

use crate::chaos;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// 0 = no override; set via [`with_workers`].
    static WORKER_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Runs `f` with the worker count pinned to `workers` on this thread
/// (restored afterwards, also on panic). Worker threads spawned inside
/// do not inherit the override; it applies to top-level [`par_map`] /
/// [`par_map_init`] calls made directly by `f`.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn with_workers<R>(workers: usize, f: impl FnOnce() -> R) -> R {
    assert!(workers >= 1, "worker count must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = WORKER_OVERRIDE.with(|c| Restore(c.replace(workers)));
    f()
}

/// The maximum number of workers a parallel call may use right now:
/// the [`with_workers`] override, else `SECEDA_THREADS`, else the
/// machine's available parallelism.
pub fn max_workers() -> usize {
    let overridden = WORKER_OVERRIDE.with(Cell::get);
    if overridden != 0 {
        return overridden;
    }
    if let Ok(v) = std::env::var("SECEDA_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The worker count a parallel call over `len` items will actually use
/// (never more workers than items, never zero).
pub fn workers_for(len: usize) -> usize {
    max_workers().min(len).max(1)
}

/// Parallel map preserving item order: `out[i] = f(i, &items[i])`.
///
/// Results are identical for every worker count. A panic in `f` is
/// propagated to the caller after all workers stop.
pub fn par_map<T, R>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    par_map_init(items, || (), |(), i, item| f(i, item))
}

/// Like [`par_map`] but with per-worker scratch state: `init` runs once
/// on each worker thread and the resulting state is threaded through
/// every call that worker performs. Use this to amortize per-item
/// allocations (simulation value buffers, heaps) across a worker's
/// whole share of the items.
pub fn par_map_init<T, R, S>(
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    par_map_init_impl(items, init, |state, i, item| {
        // the "par.worker" chaos point sits inside the per-item closure
        // so it fires identically on the serial shortcut and on every
        // worker count (the decision is salted by the item index)
        if chaos::active() {
            chaos::maybe_panic("par.worker", i as u64);
        }
        f(state, i, item)
    })
}

/// The scheduler behind [`par_map_init`], free of injection points.
fn par_map_init_impl<T, R, S>(
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let len = items.len();
    let workers = workers_for(len);
    if workers <= 1 || len <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }
    // Small chunks keep the tail balanced when item costs vary wildly
    // (fault cones range from one gate to the whole circuit).
    let chunk = (len / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= len {
                            break;
                        }
                        let end = (start + chunk).min(len);
                        for (i, item) in items[start..end].iter().enumerate() {
                            let i = start + i;
                            local.push((i, f(&mut state, i, item)));
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => buckets.push(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut out: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for bucket in buckets {
        for (i, r) in bucket {
            out[i] = Some(r);
        }
    }
    out.into_iter()
        .map(|r| r.expect("par worker skipped an item"))
        .collect()
}

/// What a worker's panic looked like, recovered per item by
/// [`par_map_catch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// The index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload rendered to text (`&str` / `String` payloads;
    /// anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Renders a caught panic payload to text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`par_map`], but a panic in `f` is contained to its own item:
/// `out[i]` is `Err(WorkerPanic)` for the items whose closure panicked
/// while every other item still completes. This is the degradation
/// primitive — [`par_map`] kills the whole computation on the first
/// panic ([`std::panic::resume_unwind`] after all workers stop), which
/// is exactly wrong for "evaluate every threat, report what failed".
///
/// The `"par.worker"` chaos injection point fires *inside* the per-item
/// catch, so chaos-injected worker panics are contained here but fatal
/// in [`par_map`] — both behaviors are pinned by tests.
pub fn par_map_catch<T, R>(
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
{
    par_map_init_impl(
        items,
        || (),
        |(), i, item| {
            catch_unwind(AssertUnwindSafe(|| {
                if chaos::active() {
                    chaos::maybe_panic("par.worker", i as u64);
                }
                f(i, item)
            }))
            .map_err(|payload| WorkerPanic {
                index: i,
                message: panic_message(payload.as_ref()),
            })
        },
    )
}

/// Parallel map with exclusive mutable access to each item:
/// `out[i] = f(i, &mut items[i])`.
///
/// One thread per item (capped only by the item count, not the worker
/// budget), so this is for SMALL item lists that must all make progress
/// concurrently — racing portfolio solvers, long-lived per-shard state —
/// rather than for data-parallel throughput (use [`par_map_init`] for
/// that). When the effective worker count is 1 the items run serially in
/// index order, which gives racing callers a deterministic serial
/// schedule: item 0 completes first.
pub fn par_map_mut<T, R>(items: &mut [T], f: impl Fn(usize, &mut T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    if max_workers() <= 1 || items.len() <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut out: Vec<Option<R>> = Vec::new();
    let f = &f; // share the closure by reference (&F: Send when F: Sync)
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| scope.spawn(move || f(i, item)))
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(r) => out.push(Some(r)),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("par worker skipped an item"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |i, &x| x * 2 + i as u64);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, items[i] * 2 + i as u64);
        }
    }

    #[test]
    fn identical_across_worker_counts() {
        let items: Vec<u64> = (0..337).collect();
        let serial = with_workers(1, || par_map(&items, |_, &x| x.wrapping_mul(0x9E37)));
        for workers in [2, 3, 8] {
            let parallel =
                with_workers(workers, || par_map(&items, |_, &x| x.wrapping_mul(0x9E37)));
            assert_eq!(serial, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn per_worker_state_is_reused() {
        // each worker counts its own calls; the total must equal the item
        // count even though per-worker shares differ
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let inits = AtomicUsize::new(0);
        let items = vec![(); 200];
        with_workers(4, || {
            par_map_init(
                &items,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                },
                |(), _, ()| {
                    calls.fetch_add(1, Ordering::Relaxed);
                },
            )
        });
        assert_eq!(calls.load(Ordering::Relaxed), 200);
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn par_map_mut_mutates_in_place() {
        let mut items: Vec<u64> = (0..6).collect();
        for workers in [1, 3] {
            let out = with_workers(workers, || {
                par_map_mut(&mut items, |i, x| {
                    *x += 10;
                    *x + i as u64
                })
            });
            assert_eq!(out.len(), 6, "workers = {workers}");
            for (i, &r) in out.iter().enumerate() {
                assert_eq!(r, items[i] + i as u64, "workers = {workers}");
            }
        }
        // both passes mutated: 0..6 then +10 twice
        assert_eq!(items, vec![20, 21, 22, 23, 24, 25]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u8], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn override_is_restored() {
        with_workers(3, || assert_eq!(max_workers(), 3));
        // after the closure the ambient default is back (no 0-sized pin)
        assert!(max_workers() >= 1);
    }

    #[test]
    fn par_map_still_propagates_panics() {
        // pins the pre-existing contract: the non-catching variants kill
        // the whole computation on the first worker panic
        for workers in [1, 4] {
            let items: Vec<u32> = (0..64).collect();
            let result = std::panic::catch_unwind(|| {
                with_workers(workers, || {
                    par_map(&items, |_, &x| {
                        assert!(x != 13, "poisoned item");
                        x
                    })
                })
            });
            assert!(result.is_err(), "workers = {workers}");
        }
    }

    #[test]
    fn par_map_catch_contains_panics_per_item() {
        let items: Vec<u32> = (0..64).collect();
        for workers in [1, 2, 8] {
            let out = with_workers(workers, || {
                par_map_catch(&items, |_, &x| {
                    assert!(x % 10 != 3, "poisoned item {x}");
                    x * 2
                })
            });
            assert_eq!(out.len(), 64, "workers = {workers}");
            for (i, r) in out.iter().enumerate() {
                if i % 10 == 3 {
                    let p = r.as_ref().expect_err("poisoned item must fail");
                    assert_eq!(p.index, i);
                    assert!(p.message.contains("poisoned item"), "{}", p.message);
                } else {
                    assert_eq!(*r.as_ref().expect("healthy item"), (i as u32) * 2);
                }
            }
        }
    }

    #[test]
    fn chaos_par_worker_panics_contained_and_deterministic() {
        use crate::chaos;
        let items: Vec<u32> = (0..96).collect();
        let expected: Vec<bool> = chaos::with_seed(0xFEED, || {
            (0..96).map(|i| chaos::fires("par.worker", i)).collect()
        });
        assert!(expected.iter().any(|&b| b), "seed must poison something");
        assert!(!expected.iter().all(|&b| b), "seed must not poison all");
        for workers in [1, 2, 8] {
            let out = chaos::with_seed(0xFEED, || {
                with_workers(workers, || par_map_catch(&items, |_, &x| x + 1))
            });
            let got: Vec<bool> = out.iter().map(Result::is_err).collect();
            assert_eq!(got, expected, "workers = {workers}");
        }
        // the same seed makes the plain variant fail outright
        let fatal = std::panic::catch_unwind(|| {
            chaos::with_seed(0xFEED, || par_map(&items, |_, &x| x + 1))
        });
        assert!(fatal.is_err());
    }
}
