//! # seceda-sca
//!
//! Side-channel analysis and countermeasures — the crate behind the
//! paper's motivational example (Fig. 2) and the SCA column of Table II.
//!
//! * [`tvla`](mod@tvla) — Test Vector Leakage Assessment \[16\]: Welch's t-test over
//!   fixed-vs-random trace groups, the physical-synthesis-stage leakage
//!   evaluation of Table II;
//! * [`cpa`] — Correlation Power Analysis \[1\] with a Hamming-weight
//!   model, the attack the countermeasures defend against;
//! * [`isw`] — the ISW private-circuit masking transform \[15\]: 3-share
//!   Boolean masking with the AND-gadget schedule from the paper's
//!   Sec. II-B, emitting `no_reassoc` ordering barriers on every gadget
//!   gate;
//! * [`probing`] — an *exact* first-order probing checker that enumerates
//!   share and randomness distributions (no measurement noise), used to
//!   verify gadgets and to expose what security-unaware synthesis broke;
//! * [`leakage`] — per-net first-order leakage identification
//!   ("identification of leaking gates", Table II logic-synthesis cell)
//!   and an SNR estimator;
//! * [`traces`] — trace-acquisition campaigns over the simulator's power
//!   models.

pub mod cpa;
pub mod isw;
pub mod leakage;
pub mod probing;
pub mod traces;
pub mod tvla;

pub use cpa::{cpa_attack, CpaResult};
pub use isw::{mask_netlist, MaskedNetlist, NUM_SHARES};
pub use leakage::{leaking_nets, snr_per_net, LeakingNet};
pub use probing::{first_order_leaks, second_order_leaks, ProbingModel};
pub use traces::{acquire_fixed_vs_random, FixedVsRandom, TraceCampaign};
pub use tvla::{tvla, welch_t, TvlaResult, TVLA_THRESHOLD};
