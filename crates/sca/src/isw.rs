//! ISW private-circuit masking transform (3 shares), following the
//! paper's Sec. II-B formulas and gate ordering.
//!
//! Every signal `a` is encoded as `(a1, a2, a3)` with
//! `a = a1 ⊕ a2 ⊕ a3`. Linear gates operate share-wise; the AND gadget
//! consumes three fresh random bits `r12, r13, r23` and computes, in the
//! exact order of the paper (parentheses = mandatory evaluation order):
//!
//! ```text
//! c1 = a1b1 ⊕ r12 ⊕ r13
//! c2 = a2b2 ⊕ (r12 ⊕ a1b2) ⊕ a2b1 ⊕ r23
//! c3 = a3b3 ⊕ (r13 ⊕ a1b3) ⊕ a3b1 ⊕ (r23 ⊕ a2b3) ⊕ a3b2
//! ```
//!
//! Every gadget gate carries the `no_reassoc` barrier tag. A
//! security-aware synthesis run preserves the order; a classical run
//! (see `seceda_synth::reassociate`) factors the `a3·b_j` products and
//! materializes the unmasked secret — Fig. 2 of the paper.

use seceda_netlist::{CellKind, GateTags, NetId, Netlist};
use seceda_synth::map_to_xag;
use std::collections::HashMap;

/// Number of shares used by the transform (fixed to the paper's 3).
pub const NUM_SHARES: usize = 3;

/// A masked netlist plus its interface bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct MaskedNetlist {
    /// The masked netlist. For each original input `x` it has inputs
    /// `x_s0, x_s1, x_s2` (in original port order), followed by all
    /// randomness inputs `rnd0, rnd1, ...`. Outputs are share triples
    /// `y_s0, y_s1, y_s2` per original output.
    pub netlist: Netlist,
    /// Number of original (pre-masking) primary inputs.
    pub num_original_inputs: usize,
    /// Number of fresh randomness inputs appended after the share inputs.
    pub num_randoms: usize,
    /// Number of original primary outputs.
    pub num_original_outputs: usize,
}

impl MaskedNetlist {
    /// Builds a full input vector: encodes `values` into uniformly random
    /// shares (using `share_rng_bits`, two bits per input, LSB-first from
    /// index 0) and appends `random_bits` for the gadget randomness.
    ///
    /// # Panics
    ///
    /// Panics if the bit supplies are too short.
    pub fn encode_inputs(
        &self,
        values: &[bool],
        share_rng_bits: &[bool],
        random_bits: &[bool],
    ) -> Vec<bool> {
        assert_eq!(values.len(), self.num_original_inputs, "value width");
        assert!(
            share_rng_bits.len() >= 2 * values.len(),
            "need two random bits per input share encoding"
        );
        assert!(random_bits.len() >= self.num_randoms, "gadget randomness");
        let mut out = Vec::with_capacity(values.len() * NUM_SHARES + self.num_randoms);
        for (i, &v) in values.iter().enumerate() {
            let s1 = share_rng_bits[2 * i];
            let s2 = share_rng_bits[2 * i + 1];
            let s0 = v ^ s1 ^ s2;
            out.push(s0);
            out.push(s1);
            out.push(s2);
        }
        out.extend_from_slice(&random_bits[..self.num_randoms]);
        out
    }

    /// Recombines share-triple outputs into original output values.
    pub fn decode_outputs(&self, outputs: &[bool]) -> Vec<bool> {
        outputs
            .chunks(NUM_SHARES)
            .map(|c| c.iter().fold(false, |acc, &b| acc ^ b))
            .collect()
    }
}

/// Applies the 3-share ISW transform to a combinational netlist.
///
/// The input is first mapped to XOR-AND-INV form. Gadget gates are tagged
/// with `no_reassoc` barriers.
///
/// # Panics
///
/// Panics if the netlist is sequential or cyclic.
pub fn mask_netlist(nl: &Netlist) -> MaskedNetlist {
    assert!(
        nl.is_combinational(),
        "mask_netlist needs combinational logic"
    );
    let xag = map_to_xag(nl);
    let order = xag.topo_order().expect("cyclic netlist");
    let mut out = Netlist::new(format!("{}_masked", xag.name()));
    let barrier = GateTags {
        no_reassoc: true,
        ..GateTags::default()
    };

    let mut shares: HashMap<usize, [NetId; NUM_SHARES]> = HashMap::new();
    for &pi in xag.inputs() {
        let name = xag.net_label(pi);
        let triple = [
            out.add_input(format!("{name}_s0")),
            out.add_input(format!("{name}_s1")),
            out.add_input(format!("{name}_s2")),
        ];
        shares.insert(pi.index(), triple);
    }

    // randomness inputs are created lazily per AND gadget
    let mut num_randoms = 0usize;
    let fresh_random = |out: &mut Netlist, num_randoms: &mut usize| {
        let r = out.add_input(format!("rnd{num_randoms}"));
        *num_randoms += 1;
        r
    };

    for gid in order {
        let g = xag.gate(gid);
        let ins: Vec<[NetId; NUM_SHARES]> = g
            .inputs
            .iter()
            .map(|&i| *shares.get(&i.index()).expect("shares known"))
            .collect();
        let triple: [NetId; NUM_SHARES] = match g.kind {
            CellKind::Const0 => {
                let z = out.add_gate(CellKind::Const0, &[]);
                [z, z, z]
            }
            CellKind::Const1 => {
                let o = out.add_gate(CellKind::Const1, &[]);
                let z = out.add_gate(CellKind::Const0, &[]);
                [o, z, z]
            }
            CellKind::Buf => ins[0],
            CellKind::Not => {
                // invert exactly one share
                let n0 = out.add_gate_tagged(CellKind::Not, &[ins[0][0]], barrier);
                [n0, ins[0][1], ins[0][2]]
            }
            CellKind::Xor => {
                let a = ins[0];
                let b = ins[1];
                [
                    out.add_gate_tagged(CellKind::Xor, &[a[0], b[0]], barrier),
                    out.add_gate_tagged(CellKind::Xor, &[a[1], b[1]], barrier),
                    out.add_gate_tagged(CellKind::Xor, &[a[2], b[2]], barrier),
                ]
            }
            CellKind::And => {
                let a = ins[0];
                let b = ins[1];
                let r12 = fresh_random(&mut out, &mut num_randoms);
                let r13 = fresh_random(&mut out, &mut num_randoms);
                let r23 = fresh_random(&mut out, &mut num_randoms);
                let and = |out: &mut Netlist, x: NetId, y: NetId| {
                    out.add_gate_tagged(CellKind::And, &[x, y], barrier)
                };
                let xor = |out: &mut Netlist, x: NetId, y: NetId| {
                    out.add_gate_tagged(CellKind::Xor, &[x, y], barrier)
                };
                // c1 = a1b1 ^ r12 ^ r13
                let a1b1 = and(&mut out, a[0], b[0]);
                let t = xor(&mut out, a1b1, r12);
                let c1 = xor(&mut out, t, r13);
                // c2 = a2b2 ^ (r12 ^ a1b2) ^ a2b1 ^ r23
                let a2b2 = and(&mut out, a[1], b[1]);
                let a1b2 = and(&mut out, a[0], b[1]);
                let p = xor(&mut out, r12, a1b2); // parenthesized first!
                let t = xor(&mut out, a2b2, p);
                let a2b1 = and(&mut out, a[1], b[0]);
                let t = xor(&mut out, t, a2b1);
                let c2 = xor(&mut out, t, r23);
                // c3 = a3b3 ^ (r13 ^ a1b3) ^ a3b1 ^ (r23 ^ a2b3) ^ a3b2
                let a3b3 = and(&mut out, a[2], b[2]);
                let a1b3 = and(&mut out, a[0], b[2]);
                let q = xor(&mut out, r13, a1b3);
                let t = xor(&mut out, a3b3, q);
                let a3b1 = and(&mut out, a[2], b[0]);
                let t = xor(&mut out, t, a3b1);
                let a2b3 = and(&mut out, a[1], b[2]);
                let s = xor(&mut out, r23, a2b3);
                let t = xor(&mut out, t, s);
                let a3b2 = and(&mut out, a[2], b[1]);
                let c3 = xor(&mut out, t, a3b2);
                [c1, c2, c3]
            }
            k => unreachable!("map_to_xag leaves no {k} gates"),
        };
        shares.insert(g.output.index(), triple);
    }

    for (net, name) in xag.outputs() {
        let triple = shares.get(&net.index()).expect("output shares");
        for (s, &n) in triple.iter().enumerate() {
            out.mark_output(n, format!("{name}_s{s}"));
        }
    }

    MaskedNetlist {
        netlist: out,
        num_original_inputs: xag.inputs().len(),
        num_original_outputs: xag.outputs().len(),
        num_randoms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{majority, Netlist};
    use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

    fn single_and() -> Netlist {
        let mut nl = Netlist::new("and");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::And, &[a, b]);
        nl.mark_output(y, "y");
        nl
    }

    fn check_masked_correctness(nl: &Netlist, trials: usize, seed: u64) {
        let masked = mask_netlist(nl);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = nl.inputs().len();
        for _ in 0..trials {
            let values: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            let share_bits: Vec<bool> = (0..2 * n).map(|_| rng.gen()).collect();
            let randoms: Vec<bool> = (0..masked.num_randoms).map(|_| rng.gen()).collect();
            let masked_in = masked.encode_inputs(&values, &share_bits, &randoms);
            let masked_out = masked.netlist.evaluate(&masked_in);
            let decoded = masked.decode_outputs(&masked_out);
            assert_eq!(decoded, nl.evaluate(&values), "values {values:?}");
        }
    }

    #[test]
    fn masked_and_is_correct() {
        check_masked_correctness(&single_and(), 200, 7);
    }

    #[test]
    fn masked_majority_is_correct() {
        check_masked_correctness(&majority(), 200, 8);
    }

    #[test]
    fn masked_xor_chain_is_correct() {
        let nl = seceda_netlist::parity_tree(4);
        check_masked_correctness(&nl, 100, 9);
    }

    #[test]
    fn and_gadget_uses_three_randoms() {
        let masked = mask_netlist(&single_and());
        assert_eq!(masked.num_randoms, 3);
        // 3 share inputs per original input + 3 randoms
        assert_eq!(masked.netlist.inputs().len(), 2 * NUM_SHARES + 3);
        assert_eq!(masked.netlist.outputs().len(), NUM_SHARES);
    }

    #[test]
    fn gadget_gates_carry_barriers() {
        let masked = mask_netlist(&single_and());
        assert!(masked.netlist.gates().iter().all(|g| g.tags.no_reassoc
            || g.kind == CellKind::Const0
            || g.kind == CellKind::Const1));
    }

    #[test]
    fn not_gate_masks_correctly() {
        let mut nl = Netlist::new("inv");
        let a = nl.add_input("a");
        let y = nl.add_gate(CellKind::Not, &[a]);
        nl.mark_output(y, "y");
        check_masked_correctness(&nl, 50, 10);
    }

    #[test]
    fn share_encoding_roundtrip() {
        let masked = mask_netlist(&single_and());
        let inputs = masked.encode_inputs(&[true, false], &[true, false, true, true], &[false; 3]);
        // first triple XORs to true, second to false
        assert!(inputs[0] ^ inputs[1] ^ inputs[2]);
        assert!(!(inputs[3] ^ inputs[4] ^ inputs[5]));
    }
}
