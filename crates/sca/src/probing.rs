//! Exact first-order probing verification of masked netlists.
//!
//! Instead of simulating noisy traces, this module *enumerates* the joint
//! distribution of every wire and checks, per wire, that its distribution
//! is independent of the unmasked secrets — the first-order probing
//! security notion of private circuits \[15\]. It is exact (no statistics)
//! and therefore the right tool for verifying a gadget and for showing,
//! with certainty, which wire a security-unaware synthesis run exposed.

use crate::isw::{MaskedNetlist, NUM_SHARES};
use seceda_netlist::{NetId, Netlist};

/// Describes how the inputs of a (possibly re-synthesized) masked netlist
/// decompose into share groups and randomness.
///
/// The first `num_secrets * NUM_SHARES` inputs are share triples; the
/// remaining `num_randoms` inputs are uniform randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbingModel {
    /// Number of unmasked secret bits.
    pub num_secrets: usize,
    /// Number of uniform randomness inputs following the share inputs.
    pub num_randoms: usize,
}

impl ProbingModel {
    /// Derives the model from a [`MaskedNetlist`].
    pub fn of(masked: &MaskedNetlist) -> Self {
        ProbingModel {
            num_secrets: masked.num_original_inputs,
            num_randoms: masked.num_randoms,
        }
    }
}

/// Returns the nets whose value distribution depends on the secret
/// vector — first-order leaks. An ideal masked circuit returns an empty
/// list.
///
/// The check enumerates, for every secret assignment, all valid share
/// encodings (two free bits per secret) and all randomness assignments,
/// and compares the per-net `P[net = 1]` across secret assignments.
///
/// # Panics
///
/// Panics if the enumeration space is unreasonably large
/// (`2*num_secrets + num_randoms > 22` bits) or if the netlist input
/// count does not match the model.
pub fn first_order_leaks(nl: &Netlist, model: &ProbingModel) -> Vec<NetId> {
    let free_bits = 2 * model.num_secrets + model.num_randoms;
    assert!(
        free_bits <= 22,
        "probing enumeration too large ({free_bits} bits)"
    );
    assert_eq!(
        nl.inputs().len(),
        model.num_secrets * NUM_SHARES + model.num_randoms,
        "netlist inputs do not match the probing model"
    );

    let num_nets = nl.num_nets();
    let enumerations = 1u64 << free_bits;
    // ones[net] per secret assignment
    let num_secret_patterns = 1usize << model.num_secrets;
    let mut ones: Vec<Vec<u64>> = vec![vec![0u64; num_nets]; num_secret_patterns];

    let mut inputs = vec![false; nl.inputs().len()];
    for (secret_pattern, pattern_ones) in ones.iter_mut().enumerate() {
        for enumeration in 0..enumerations {
            // decode free bits: per secret, two share bits; then randoms
            for s in 0..model.num_secrets {
                let secret = (secret_pattern >> s) & 1 == 1;
                let s1 = (enumeration >> (2 * s)) & 1 == 1;
                let s2 = (enumeration >> (2 * s + 1)) & 1 == 1;
                let s0 = secret ^ s1 ^ s2;
                inputs[NUM_SHARES * s] = s0;
                inputs[NUM_SHARES * s + 1] = s1;
                inputs[NUM_SHARES * s + 2] = s2;
            }
            for r in 0..model.num_randoms {
                inputs[NUM_SHARES * model.num_secrets + r] =
                    (enumeration >> (2 * model.num_secrets + r)) & 1 == 1;
            }
            let values = nl.eval_nets(&inputs, &[]).expect("combinational eval");
            for (net, &v) in values.iter().enumerate() {
                pattern_ones[net] += v as u64;
            }
        }
    }

    // a net leaks if its count differs across secret assignments
    let mut leaks = Vec::new();
    for net in 0..num_nets {
        let first = ones[0][net];
        if ones.iter().any(|o| o[net] != first) {
            leaks.push(NetId::from_index(net));
        }
    }
    leaks
}

/// Returns wire *pairs* whose joint value distribution depends on the
/// secrets — second-order leaks.
///
/// A t-private circuit resists t probes; the paper's 3-share first-order
/// gadget is expected to have second-order leaking pairs (an adversary
/// with two probes wins), which this check makes explicit. The search is
/// exact, like [`first_order_leaks`], and quadratic in the net count —
/// keep it to gadget-sized netlists.
///
/// Returns at most `max_pairs` offending pairs (search stops early).
///
/// # Panics
///
/// Panics under the same conditions as [`first_order_leaks`].
pub fn second_order_leaks(
    nl: &Netlist,
    model: &ProbingModel,
    max_pairs: usize,
) -> Vec<(NetId, NetId)> {
    let free_bits = 2 * model.num_secrets + model.num_randoms;
    assert!(
        free_bits <= 22,
        "probing enumeration too large ({free_bits} bits)"
    );
    assert_eq!(
        nl.inputs().len(),
        model.num_secrets * NUM_SHARES + model.num_randoms,
        "netlist inputs do not match the probing model"
    );
    let num_nets = nl.num_nets();
    let enumerations = 1u64 << free_bits;
    let num_secret_patterns = 1usize << model.num_secrets;

    // joint counts: per secret pattern, per pair, counts of (v1, v2) in
    // {00, 01, 10, 11}; stored flat for speed
    let pair_count = num_nets * num_nets;
    let mut counts: Vec<Vec<[u32; 4]>> = vec![vec![[0u32; 4]; pair_count]; num_secret_patterns];

    let mut inputs = vec![false; nl.inputs().len()];
    for (secret_pattern, table) in counts.iter_mut().enumerate() {
        for enumeration in 0..enumerations {
            for s in 0..model.num_secrets {
                let secret = (secret_pattern >> s) & 1 == 1;
                let s1 = (enumeration >> (2 * s)) & 1 == 1;
                let s2 = (enumeration >> (2 * s + 1)) & 1 == 1;
                inputs[NUM_SHARES * s] = secret ^ s1 ^ s2;
                inputs[NUM_SHARES * s + 1] = s1;
                inputs[NUM_SHARES * s + 2] = s2;
            }
            for r in 0..model.num_randoms {
                inputs[NUM_SHARES * model.num_secrets + r] =
                    (enumeration >> (2 * model.num_secrets + r)) & 1 == 1;
            }
            let values = nl.eval_nets(&inputs, &[]).expect("combinational eval");
            for i in 0..num_nets {
                let vi = values[i] as usize;
                let row = i * num_nets;
                for (j, &vj) in values.iter().enumerate().skip(i + 1) {
                    table[row + j][(vi << 1) | vj as usize] += 1;
                }
            }
        }
    }

    let mut leaks = Vec::new();
    'outer: for i in 0..num_nets {
        for j in (i + 1)..num_nets {
            let reference = counts[0][i * num_nets + j];
            if counts
                .iter()
                .any(|table| table[i * num_nets + j] != reference)
            {
                leaks.push((NetId::from_index(i), NetId::from_index(j)));
                if leaks.len() >= max_pairs {
                    break 'outer;
                }
            }
        }
    }
    leaks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isw::mask_netlist;
    use seceda_netlist::{CellKind, Netlist};
    use seceda_synth::{reassociate, SynthesisMode};

    fn masked_and() -> (Netlist, ProbingModel) {
        let mut nl = Netlist::new("and");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::And, &[a, b]);
        nl.mark_output(y, "y");
        let masked = mask_netlist(&nl);
        let model = ProbingModel::of(&masked);
        (masked.netlist, model)
    }

    #[test]
    fn paper_gadget_is_first_order_secure() {
        let (nl, model) = masked_and();
        let leaks = first_order_leaks(&nl, &model);
        assert!(leaks.is_empty(), "ISW AND gadget must not leak: {leaks:?}");
    }

    #[test]
    fn security_aware_synthesis_stays_secure() {
        let (nl, model) = masked_and();
        let (aware, _) = reassociate(&nl, SynthesisMode::SecurityAware);
        let leaks = first_order_leaks(&aware, &model);
        assert!(
            leaks.is_empty(),
            "barriers must preserve security: {leaks:?}"
        );
    }

    #[test]
    fn classical_synthesis_introduces_a_first_order_leak() {
        // The paper's Fig. 2: security-unaware re-association / factoring
        // on the gadget creates a wire carrying unmasked information.
        let (nl, model) = masked_and();
        let (classical, report) = reassociate(&nl, SynthesisMode::Classical);
        assert!(
            report.trees_rebuilt > 0,
            "the optimizer must fire: {report:?}"
        );
        let leaks = first_order_leaks(&classical, &model);
        assert!(
            !leaks.is_empty(),
            "classical synthesis must break the gadget (Fig. 2)"
        );
    }

    #[test]
    fn unmasked_circuit_trivially_leaks() {
        // sanity: a "masked" netlist that just XORs the shares back
        // together leaks the secret on its output wire
        let mut nl = Netlist::new("recombine");
        let s0 = nl.add_input("a_s0");
        let s1 = nl.add_input("a_s1");
        let s2 = nl.add_input("a_s2");
        let t = nl.add_gate(CellKind::Xor, &[s0, s1]);
        let y = nl.add_gate(CellKind::Xor, &[t, s2]);
        nl.mark_output(y, "y");
        let model = ProbingModel {
            num_secrets: 1,
            num_randoms: 0,
        };
        let leaks = first_order_leaks(&nl, &model);
        assert!(leaks.contains(&y));
    }

    #[test]
    fn paper_gadget_even_resists_two_probes() {
        // Measured strengthening: the ISW bound (n >= 2t+1 shares for t
        // probes) guarantees only 1-probe security for 3 shares, but the
        // exhaustive joint-distribution check shows this particular
        // gadget's internal wires resist two probes as well — the output
        // shares are never recombined inside the gadget.
        let (nl, model) = masked_and();
        assert!(first_order_leaks(&nl, &model).is_empty());
        let pairs = second_order_leaks(&nl, &model, 4);
        assert!(
            pairs.is_empty(),
            "exhaustive check found second-order pairs: {pairs:?}"
        );
    }

    #[test]
    fn broken_gadget_leaks_at_second_order_too() {
        let (nl, model) = masked_and();
        let (classical, _) = reassociate(&nl, SynthesisMode::Classical);
        let pairs = second_order_leaks(&classical, &model, 4);
        assert!(!pairs.is_empty(), "a first-order leak implies pair leaks");
    }

    #[test]
    fn second_order_check_finds_trivial_joint_leak() {
        // two wires that jointly recombine the secret: s0 and s1^s2
        let mut nl = Netlist::new("joint");
        let s0 = nl.add_input("a_s0");
        let s1 = nl.add_input("a_s1");
        let s2 = nl.add_input("a_s2");
        let partial = nl.add_gate(CellKind::Xor, &[s1, s2]);
        nl.mark_output(partial, "p");
        let model = ProbingModel {
            num_secrets: 1,
            num_randoms: 0,
        };
        assert!(
            first_order_leaks(&nl, &model).is_empty(),
            "each wire alone is fine"
        );
        let pairs = second_order_leaks(&nl, &model, 10);
        assert!(
            pairs.contains(&(s0, partial)),
            "the (s0, s1^s2) pair reveals the secret: {pairs:?}"
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_enumeration_rejected() {
        let mut nl = Netlist::new("big");
        for i in 0..36 {
            nl.add_input(format!("x{i}"));
        }
        let model = ProbingModel {
            num_secrets: 12,
            num_randoms: 0,
        };
        let _ = first_order_leaks(&nl, &model);
    }
}
