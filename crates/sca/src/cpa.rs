//! Correlation power analysis (CPA) with a Hamming-weight model \[1\].

use seceda_cipher::AES_SBOX;

/// Result of a CPA key-byte recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct CpaResult {
    /// |Pearson correlation| per key guess (max over samples).
    pub correlation: Vec<f64>,
    /// The best-correlating key guess.
    pub best_guess: u8,
}

impl CpaResult {
    /// Margin between the best and the second-best guess correlation.
    pub fn margin(&self) -> f64 {
        let mut sorted = self.correlation.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        sorted[0] - sorted.get(1).copied().unwrap_or(0.0)
    }
}

/// Pearson correlation of two equal-length samples. Returns 0 for
/// degenerate (constant) inputs.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Recovers one AES key byte by CPA with the default Hamming-weight
/// model `HW(SBOX[pt ^ guess])`.
///
/// `traces[i]` is the trace for plaintext byte `plaintexts[i]`; each
/// trace may have several samples (max-correlation over samples is used).
///
/// # Panics
///
/// Panics if `traces` and `plaintexts` differ in length.
pub fn cpa_attack(traces: &[Vec<f64>], plaintexts: &[u8]) -> CpaResult {
    cpa_attack_with_model(traces, plaintexts, |pt, guess| {
        AES_SBOX[(pt ^ guess) as usize].count_ones() as f64
    })
}

/// CPA with a caller-supplied leakage model `model(plaintext, guess)`.
///
/// Use this when the victim leaks something other than first-round S-box
/// Hamming weight — e.g. a registered implementation whose register bank
/// transitions from `SBOX[guess]` to `SBOX[pt ^ guess]`, leaking
/// `HD(SBOX[guess], SBOX[pt ^ guess])`.
///
/// The trace matrix is transposed once and each sample column is
/// centered with its variance precomputed, so the 256-guess loop is a
/// single pass per (guess, sample) pair instead of re-copying the
/// column and re-deriving both means inside every Pearson call; the
/// guesses then fan out across cores.
///
/// # Panics
///
/// Panics if `traces` and `plaintexts` differ in length.
pub fn cpa_attack_with_model(
    traces: &[Vec<f64>],
    plaintexts: &[u8],
    model: impl Fn(u8, u8) -> f64 + Sync,
) -> CpaResult {
    assert_eq!(traces.len(), plaintexts.len(), "trace/plaintext mismatch");
    let n = traces.len();
    let num_samples = traces.first().map(|t| t.len()).unwrap_or(0);
    if n < 2 || num_samples == 0 {
        // degenerate input: every Pearson correlation is defined as 0
        return CpaResult {
            correlation: vec![0.0; 256],
            best_guess: 0,
        };
    }
    // transpose to sample-major, center each column, precompute sum of
    // squared deviations (the per-sample half of Pearson's denominator)
    let mut columns = vec![vec![0.0f64; n]; num_samples];
    for (i, t) in traces.iter().enumerate() {
        for (s, column) in columns.iter_mut().enumerate() {
            column[i] = t[s];
        }
    }
    let mut col_sq = vec![0.0f64; num_samples];
    for (column, sq) in columns.iter_mut().zip(&mut col_sq) {
        let mean = column.iter().sum::<f64>() / n as f64;
        for v in column.iter_mut() {
            *v -= mean;
        }
        *sq = column.iter().map(|v| v * v).sum();
    }
    let guesses: Vec<u8> = (0..=255u8).collect();
    let correlation = seceda_testkit::par::par_map(&guesses, |_, &guess| {
        let mut hyp: Vec<f64> = plaintexts.iter().map(|&pt| model(pt, guess)).collect();
        let mean = hyp.iter().sum::<f64>() / n as f64;
        for v in hyp.iter_mut() {
            *v -= mean;
        }
        let hyp_sq: f64 = hyp.iter().map(|v| v * v).sum();
        if hyp_sq == 0.0 {
            return 0.0;
        }
        let mut best = 0.0f64;
        for (column, &sq) in columns.iter().zip(&col_sq) {
            if sq == 0.0 {
                continue;
            }
            let cov: f64 = hyp.iter().zip(column).map(|(h, c)| h * c).sum();
            let c = (cov / (hyp_sq.sqrt() * sq.sqrt())).abs();
            if c > best {
                best = c;
            }
        }
        best
    });
    let best_guess = correlation
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(g, _)| g as u8)
        .unwrap_or(0);
    CpaResult {
        correlation,
        best_guess,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

    #[test]
    fn pearson_basics() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[1.0, 1.0, 1.0, 1.0]), 0.0);
    }

    /// Synthetic traces: power = HW(SBOX[pt ^ k]) + noise.
    fn synthetic_traces(key: u8, n: usize, noise: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut traces = Vec::with_capacity(n);
        let mut pts = Vec::with_capacity(n);
        for _ in 0..n {
            let pt: u8 = rng.gen();
            let hw = AES_SBOX[(pt ^ key) as usize].count_ones() as f64;
            let sample = hw + rng.gen_range(-noise..=noise);
            traces.push(vec![sample]);
            pts.push(pt);
        }
        (traces, pts)
    }

    #[test]
    fn recovers_key_from_clean_traces() {
        let (traces, pts) = synthetic_traces(0x3C, 300, 0.0, 11);
        let result = cpa_attack(&traces, &pts);
        assert_eq!(result.best_guess, 0x3C);
        assert!(result.margin() > 0.1, "margin {}", result.margin());
    }

    #[test]
    fn recovers_key_despite_noise() {
        let (traces, pts) = synthetic_traces(0xA7, 2000, 4.0, 12);
        let result = cpa_attack(&traces, &pts);
        assert_eq!(result.best_guess, 0xA7);
    }

    #[test]
    fn single_pass_correlations_match_naive_pearson() {
        // multi-sample traces: sample 1 leaks, samples 0 and 2 are noise
        let mut rng = StdRng::seed_from_u64(21);
        let key = 0x5A;
        let mut traces = Vec::new();
        let mut pts = Vec::new();
        for _ in 0..150 {
            let pt: u8 = rng.gen();
            let hw = AES_SBOX[(pt ^ key) as usize].count_ones() as f64;
            traces.push(vec![rng.gen_range(0.0..8.0), hw, rng.gen_range(0.0..8.0)]);
            pts.push(pt);
        }
        let result = cpa_attack(&traces, &pts);
        let mut column = vec![0.0f64; traces.len()];
        for guess in 0..=255u8 {
            let hyp: Vec<f64> = pts
                .iter()
                .map(|&pt| AES_SBOX[(pt ^ guess) as usize].count_ones() as f64)
                .collect();
            let mut naive = 0.0f64;
            for s in 0..3 {
                for (i, t) in traces.iter().enumerate() {
                    column[i] = t[s];
                }
                naive = naive.max(pearson(&hyp, &column).abs());
            }
            let fast = result.correlation[guess as usize];
            assert!(
                (fast - naive).abs() < 1e-9,
                "guess {guess}: fast {fast} vs naive {naive}"
            );
        }
        assert_eq!(result.best_guess, key);
    }

    #[test]
    fn degenerate_inputs_yield_zero_correlations() {
        let empty = cpa_attack(&[], &[]);
        assert_eq!(empty.best_guess, 0);
        assert!(empty.correlation.iter().all(|&c| c == 0.0));
        let one = cpa_attack(&[vec![1.0]], &[0x42]);
        assert!(one.correlation.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn fails_gracefully_on_unrelated_traces() {
        let mut rng = StdRng::seed_from_u64(13);
        let traces: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.gen_range(0.0..8.0)]).collect();
        let pts: Vec<u8> = (0..200).map(|_| rng.gen()).collect();
        let result = cpa_attack(&traces, &pts);
        // correlations should all be small
        assert!(result.correlation.iter().all(|&c| c < 0.35));
    }
}
