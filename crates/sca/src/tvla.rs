//! Test Vector Leakage Assessment: Welch's t-test on trace groups.
//!
//! TVLA \[16\] compares the per-sample means of two trace populations
//! (classically "fixed plaintext" vs "random plaintext"). A |t| value
//! above 4.5 at any sample rejects, with high confidence, the hypothesis
//! that the device leaks nothing about the difference between the
//! groups.

/// The conventional TVLA pass/fail threshold on |t|.
pub const TVLA_THRESHOLD: f64 = 4.5;

/// Result of a TVLA evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TvlaResult {
    /// Welch's t statistic per trace sample.
    pub t_values: Vec<f64>,
    /// max |t| over all samples.
    pub max_abs_t: f64,
}

impl TvlaResult {
    /// `true` if any sample exceeds the threshold — the design leaks.
    pub fn leaks(&self) -> bool {
        self.leaks_at(TVLA_THRESHOLD)
    }

    /// `true` if any sample exceeds a custom threshold.
    pub fn leaks_at(&self, threshold: f64) -> bool {
        self.max_abs_t > threshold
    }
}

/// Welch's t statistic for two sample sets (single sample point).
///
/// Returns 0.0 when either group has fewer than two observations or both
/// variances vanish.
pub fn welch_t(group_a: &[f64], group_b: &[f64]) -> f64 {
    if group_a.len() < 2 || group_b.len() < 2 {
        return 0.0;
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let var = |xs: &[f64], m: f64| {
        xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
    };
    let ma = mean(group_a);
    let mb = mean(group_b);
    let va = var(group_a, ma);
    let vb = var(group_b, mb);
    let denom = (va / group_a.len() as f64 + vb / group_b.len() as f64).sqrt();
    if denom == 0.0 {
        if ma == mb {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (ma - mb) / denom
    }
}

/// Runs TVLA over two trace matrices (`traces[i]` is one trace; all
/// traces must share the same number of samples).
///
/// # Panics
///
/// Panics if trace lengths are inconsistent.
pub fn tvla(group_a: &[Vec<f64>], group_b: &[Vec<f64>]) -> TvlaResult {
    let num_samples = group_a
        .first()
        .or_else(|| group_b.first())
        .map(|t| t.len())
        .unwrap_or(0);
    for t in group_a.iter().chain(group_b) {
        assert_eq!(t.len(), num_samples, "inconsistent trace length");
    }
    let mut t_values = Vec::with_capacity(num_samples);
    let mut max_abs = 0.0f64;
    let mut col_a = Vec::with_capacity(group_a.len());
    let mut col_b = Vec::with_capacity(group_b.len());
    for s in 0..num_samples {
        col_a.clear();
        col_a.extend(group_a.iter().map(|t| t[s]));
        col_b.clear();
        col_b.extend(group_b.iter().map(|t| t[s]));
        let t = welch_t(&col_a, &col_b);
        if t.abs() > max_abs {
            max_abs = t.abs();
        }
        t_values.push(t);
    }
    TvlaResult {
        t_values,
        max_abs_t: max_abs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

    fn noisy(mean: f64, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| vec![mean + rng.gen_range(-0.5..0.5)])
            .collect()
    }

    #[test]
    fn identical_distributions_pass() {
        let a = noisy(3.0, 500, 1);
        let b = noisy(3.0, 500, 2);
        let r = tvla(&a, &b);
        assert!(!r.leaks(), "max |t| = {}", r.max_abs_t);
    }

    #[test]
    fn shifted_means_fail() {
        let a = noisy(3.0, 500, 3);
        let b = noisy(3.4, 500, 4);
        let r = tvla(&a, &b);
        assert!(r.leaks(), "max |t| = {}", r.max_abs_t);
    }

    #[test]
    fn welch_t_sign_follows_means() {
        let a = [1.0, 1.1, 0.9, 1.0];
        let b = [2.0, 2.1, 1.9, 2.0];
        assert!(welch_t(&a, &b) < 0.0);
        assert!(welch_t(&b, &a) > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(welch_t(&[1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(welch_t(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
        assert!(welch_t(&[1.0, 1.0], &[2.0, 2.0]).is_infinite());
    }

    #[test]
    fn multi_sample_traces_tracked_per_sample() {
        // sample 0 identical, sample 1 shifted
        let a: Vec<Vec<f64>> = (0..200).map(|i| vec![1.0 + (i % 2) as f64, 5.0]).collect();
        let b: Vec<Vec<f64>> = (0..200).map(|i| vec![1.0 + (i % 2) as f64, 6.0]).collect();
        let r = tvla(&a, &b);
        assert!(r.t_values[0].abs() < 1.0);
        assert!(r.t_values[1].is_infinite() || r.t_values[1].abs() > TVLA_THRESHOLD);
    }

    #[test]
    fn empty_groups() {
        let r = tvla(&[], &[]);
        assert_eq!(r.t_values.len(), 0);
        assert!(!r.leaks());
    }
}
