//! Trace-acquisition campaigns on the simulated power side channel.

use crate::isw::MaskedNetlist;
use seceda_netlist::{Netlist, NetlistError};
use seceda_sim::{CycleSim, NoiseModel, PowerModel, TraceRecorder};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// Configuration of a trace-acquisition campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceCampaign {
    /// Traces per group.
    pub traces_per_group: usize,
    /// Power model used by the recorder.
    pub power_model: PowerModel,
    /// Measurement noise.
    pub noise: NoiseModel,
    /// RNG seed for stimulus generation.
    pub seed: u64,
}

impl Default for TraceCampaign {
    fn default() -> Self {
        TraceCampaign {
            traces_per_group: 1000,
            power_model: PowerModel::HammingDistance,
            noise: NoiseModel::default(),
            seed: 0xF1A5,
        }
    }
}

/// The two trace groups of a fixed-vs-random campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedVsRandom {
    /// Traces acquired with the fixed unmasked input.
    pub fixed: Vec<Vec<f64>>,
    /// Traces acquired with uniformly random unmasked inputs.
    pub random: Vec<Vec<f64>>,
}

/// Acquires fixed-vs-random traces from a masked netlist.
///
/// Each trace is two cycles: a "precharge" cycle applying all-zero
/// shares/randoms, then the value cycle; the Hamming-distance sample of
/// the value cycle is the trace (one sample per trace). Shares and gadget
/// randomness are fresh and uniform for *both* groups; only the unmasked
/// values are fixed vs random — exactly the TVLA protocol.
///
/// # Errors
///
/// Propagates simulator errors (cyclic netlists).
///
/// # Panics
///
/// Panics if `fixed_value` width does not match the masked interface.
pub fn acquire_fixed_vs_random(
    masked: &MaskedNetlist,
    fixed_value: &[bool],
    campaign: &TraceCampaign,
) -> Result<FixedVsRandom, NetlistError> {
    assert_eq!(
        fixed_value.len(),
        masked.num_original_inputs,
        "fixed value width mismatch"
    );
    let mut rng = StdRng::seed_from_u64(campaign.seed);
    let nl = &masked.netlist;
    let mut sim = CycleSim::new(nl)?;
    let mut recorder = TraceRecorder::new(nl, campaign.power_model, campaign.noise);
    let zero_inputs = vec![false; nl.inputs().len()];

    let acquire_one = |values: &[bool],
                       rng: &mut StdRng,
                       sim: &mut CycleSim<'_>,
                       recorder: &mut TraceRecorder|
     -> Result<Vec<f64>, NetlistError> {
        let share_bits: Vec<bool> = (0..2 * values.len()).map(|_| rng.gen()).collect();
        let randoms: Vec<bool> = (0..masked.num_randoms).map(|_| rng.gen()).collect();
        let stimulated = masked.encode_inputs(values, &share_bits, &randoms);
        recorder.reset();
        // precharge cycle establishes the toggle reference
        let pre = sim.step_nets(&zero_inputs)?;
        let _ = recorder.sample(&pre);
        let val = sim.step_nets(&stimulated)?;
        Ok(vec![recorder.sample(&val)])
    };

    let mut fixed = Vec::with_capacity(campaign.traces_per_group);
    let mut random = Vec::with_capacity(campaign.traces_per_group);
    for _ in 0..campaign.traces_per_group {
        fixed.push(acquire_one(fixed_value, &mut rng, &mut sim, &mut recorder)?);
        let rand_vals: Vec<bool> = (0..masked.num_original_inputs).map(|_| rng.gen()).collect();
        random.push(acquire_one(&rand_vals, &mut rng, &mut sim, &mut recorder)?);
    }
    Ok(FixedVsRandom { fixed, random })
}

/// Acquires CPA-style traces from a *registered* victim whose inputs are
/// `pt\[8\]` then `key\[8\]` and whose S-box output feeds a DFF bank (see
/// [`seceda_cipher::sbox_first_round_registered`]): random plaintexts,
/// fixed key. Returns `(traces, plaintext_bytes)`.
///
/// The trace sample is windowed on the clock edge at which the register
/// bank switches: the recorder weights register-output nets 1.0 and all
/// combinational nets 0.0, modeling the temporal separation a real scope
/// capture provides (combinational switching lands in earlier samples).
/// Each trace covers the transition `SBOX[key] -> SBOX[pt ^ key]`, so
/// the matching CPA model is `HD(SBOX[guess], SBOX[pt ^ guess])` (use
/// [`crate::cpa::cpa_attack_with_model`]).
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if the interface is not `pt\[8\] ++ key\[8\]` with a DFF bank.
pub fn acquire_cpa_traces(
    nl: &Netlist,
    key_byte: u8,
    campaign: &TraceCampaign,
) -> Result<(Vec<Vec<f64>>, Vec<u8>), NetlistError> {
    assert_eq!(nl.inputs().len(), 16, "expected pt[8] ++ key[8] interface");
    assert!(!nl.dffs().is_empty(), "CPA victim must be registered");
    let mut rng = StdRng::seed_from_u64(campaign.seed);
    let mut sim = CycleSim::new(nl)?;
    let mut recorder = TraceRecorder::new(nl, campaign.power_model, campaign.noise);
    // window on the register bank: only DFF outputs contribute power
    let mut weights = vec![0.0; nl.num_nets()];
    for d in nl.dffs() {
        weights[nl.gate(d).output.index()] = 1.0;
    }
    recorder.set_weights(weights);
    let key_bits: Vec<bool> = (0..8).map(|b| (key_byte >> b) & 1 == 1).collect();
    let mut zero_pt: Vec<bool> = vec![false; 8];
    zero_pt.extend(&key_bits);
    let mut traces = Vec::with_capacity(campaign.traces_per_group);
    let mut pts = Vec::with_capacity(campaign.traces_per_group);
    for _ in 0..campaign.traces_per_group {
        let pt: u8 = rng.gen();
        let mut inputs: Vec<bool> = (0..8).map(|b| (pt >> b) & 1 == 1).collect();
        inputs.extend(&key_bits);
        recorder.reset();
        // cycle 1: pt=0 loads SBOX[key] into the register bank
        let _ = sim.step_nets(&zero_pt)?;
        // cycle 2: registers show SBOX[key]; next state = SBOX[pt^key]
        let c1 = sim.step_nets(&inputs)?;
        let _ = recorder.sample(&c1);
        // cycle 3: registers switch to SBOX[pt^key] — the attacked sample
        let c2 = sim.step_nets(&inputs)?;
        traces.push(vec![recorder.sample(&c2)]);
        pts.push(pt);
    }
    Ok((traces, pts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isw::mask_netlist;
    use crate::tvla::tvla;
    use seceda_cipher::sbox_first_round_registered;
    use seceda_netlist::CellKind;
    use seceda_synth::{reassociate, SynthesisMode};

    fn masked_and() -> MaskedNetlist {
        let mut nl = Netlist::new("and");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::And, &[a, b]);
        nl.mark_output(y, "y");
        mask_netlist(&nl)
    }

    #[test]
    fn protected_gadget_passes_tvla() {
        let masked = masked_and();
        let campaign = TraceCampaign {
            traces_per_group: 800,
            ..TraceCampaign::default()
        };
        let groups = acquire_fixed_vs_random(&masked, &[true, true], &campaign).expect("acquire");
        let result = tvla(&groups.fixed, &groups.random);
        assert!(
            !result.leaks(),
            "secure gadget must pass TVLA, max |t| = {}",
            result.max_abs_t
        );
    }

    #[test]
    fn broken_gadget_fails_tvla() {
        let masked = masked_and();
        let (broken, _) = reassociate(&masked.netlist, SynthesisMode::Classical);
        let broken_masked = MaskedNetlist {
            netlist: broken,
            ..masked
        };
        let campaign = TraceCampaign {
            traces_per_group: 800,
            ..TraceCampaign::default()
        };
        let groups =
            acquire_fixed_vs_random(&broken_masked, &[true, true], &campaign).expect("acquire");
        let result = tvla(&groups.fixed, &groups.random);
        assert!(
            result.leaks(),
            "factored gadget must fail TVLA, max |t| = {}",
            result.max_abs_t
        );
    }

    #[test]
    fn cpa_recovers_key_from_netlist_traces() {
        use seceda_cipher::AES_SBOX;
        let nl = sbox_first_round_registered();
        let campaign = TraceCampaign {
            traces_per_group: 1500,
            noise: seceda_sim::NoiseModel {
                sigma: 1.0,
                seed: 77,
            },
            ..TraceCampaign::default()
        };
        let key = 0x5A;
        let (traces, pts) = acquire_cpa_traces(&nl, key, &campaign).expect("acquire");
        let result = crate::cpa::cpa_attack_with_model(&traces, &pts, |pt, g| {
            (AES_SBOX[(pt ^ g) as usize] ^ AES_SBOX[g as usize]).count_ones() as f64
        });
        assert_eq!(result.best_guess, key);
        assert!(result.margin() > 0.1, "margin {}", result.margin());
    }
}
