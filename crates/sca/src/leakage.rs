//! Per-net leakage identification — "identification of leaking gates"
//! (Table II, logic-synthesis × SCA) and an SNR estimator.

use crate::cpa::pearson;
use seceda_netlist::{NetId, Netlist, NetlistError};
use seceda_sim::CycleSim;
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// A net whose value correlates with a secret.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakingNet {
    /// The offending net.
    pub net: NetId,
    /// |Pearson correlation| between net value and the secret bit.
    pub correlation: f64,
}

/// Finds nets correlated with a designated secret input bit.
///
/// Runs `trials` random-stimulus simulations and computes, per net, the
/// correlation between the net value and the value of
/// `inputs[secret_input]`. Nets above `threshold` are reported, sorted by
/// descending correlation. For a perfectly masked circuit the list is
/// empty (up to sampling noise); for the circuit broken by classical
/// synthesis the materialized secret wire tops the list with
/// correlation ≈ 1.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `secret_input` is out of range or `trials < 2`.
pub fn leaking_nets(
    nl: &Netlist,
    secret_input: usize,
    trials: usize,
    threshold: f64,
    seed: u64,
) -> Result<Vec<LeakingNet>, NetlistError> {
    assert!(
        secret_input < nl.inputs().len(),
        "secret input out of range"
    );
    assert!(trials >= 2, "need at least two trials");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = CycleSim::new(nl)?;
    let mut secret_col = Vec::with_capacity(trials);
    let mut net_cols: Vec<Vec<f64>> = vec![Vec::with_capacity(trials); nl.num_nets()];
    for _ in 0..trials {
        let inputs: Vec<bool> = (0..nl.inputs().len()).map(|_| rng.gen()).collect();
        secret_col.push(inputs[secret_input] as u8 as f64);
        let values = sim.step_nets(&inputs)?;
        for (n, &v) in values.iter().enumerate() {
            net_cols[n].push(v as u8 as f64);
        }
    }
    let mut leaks: Vec<LeakingNet> = net_cols
        .iter()
        .enumerate()
        .map(|(n, col)| LeakingNet {
            net: NetId::from_index(n),
            correlation: pearson(&secret_col, col).abs(),
        })
        .filter(|l| l.correlation > threshold)
        .collect();
    leaks.sort_by(|a, b| {
        b.correlation
            .partial_cmp(&a.correlation)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(leaks)
}

/// Signal-to-noise ratio of a partitioned trace set: variance of the
/// per-class means over the mean of the per-class variances.
///
/// Classes with fewer than two traces are ignored. Returns 0.0 when no
/// class has variance (noise-free constant traces).
pub fn snr_per_net(classes: &[Vec<f64>]) -> f64 {
    let mut means = Vec::new();
    let mut vars = Vec::new();
    for class in classes {
        if class.len() < 2 {
            continue;
        }
        let m = class.iter().sum::<f64>() / class.len() as f64;
        let v = class.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (class.len() - 1) as f64;
        means.push(m);
        vars.push(v);
    }
    if means.len() < 2 {
        return 0.0;
    }
    let gm = means.iter().sum::<f64>() / means.len() as f64;
    let signal = means.iter().map(|m| (m - gm).powi(2)).sum::<f64>() / (means.len() - 1) as f64;
    let noise = vars.iter().sum::<f64>() / vars.len() as f64;
    if noise == 0.0 {
        0.0
    } else {
        signal / noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::CellKind;

    #[test]
    fn direct_wire_leaks_perfectly() {
        let mut nl = Netlist::new("w");
        let s = nl.add_input("secret");
        let o = nl.add_input("other");
        let y = nl.add_gate(CellKind::Buf, &[s]);
        let z = nl.add_gate(CellKind::Xor, &[s, o]); // masked by `other`
        nl.mark_output(y, "y");
        nl.mark_output(z, "z");
        let leaks = leaking_nets(&nl, 0, 400, 0.5, 3).expect("analysis");
        // the secret input itself and the buffer output leak
        assert!(leaks.iter().any(|l| l.net == y));
        assert!(leaks.iter().all(|l| l.net != z), "XOR-masked wire is clean");
        assert!(leaks[0].correlation > 0.99);
    }

    #[test]
    fn masked_gadget_has_no_leaking_nets() {
        use crate::isw::mask_netlist;
        let mut nl = Netlist::new("and");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::And, &[a, b]);
        nl.mark_output(y, "y");
        let masked = mask_netlist(&nl);
        // correlate against share 0 of input a — a share alone tells
        // nothing, and no internal net may correlate with it strongly
        // ... but shares *do* flow through the gadget, so instead check
        // correlation against a *reconstructed secret* is impossible
        // here; we simply confirm the analysis runs and the output
        // shares do not individually expose the AND of the secrets.
        let leaks = leaking_nets(&masked.netlist, 0, 400, 0.9, 4).expect("analysis");
        // only nets trivially wired to the probed share may exceed 0.9
        for l in &leaks {
            let driver_ok = masked.netlist.net(l.net).driver.is_none()
                || masked
                    .netlist
                    .gate(masked.netlist.net(l.net).driver.expect("driver"))
                    .inputs
                    .len()
                    <= 1;
            assert!(driver_ok, "unexpected strong correlation at {:?}", l.net);
        }
    }

    #[test]
    fn snr_separates_signal_from_noise() {
        // two classes with distinct means, small noise
        let a: Vec<f64> = (0..100).map(|i| 1.0 + 0.01 * (i % 3) as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| 5.0 + 0.01 * (i % 3) as f64).collect();
        let snr = snr_per_net(&[a, b]);
        assert!(snr > 100.0, "snr = {snr}");
        // identical classes: no signal
        let c: Vec<f64> = (0..100).map(|i| 2.0 + 0.5 * (i % 5) as f64).collect();
        let snr0 = snr_per_net(&[c.clone(), c]);
        assert!(snr0 < 0.1, "snr = {snr0}");
    }

    #[test]
    fn snr_degenerate_inputs() {
        assert_eq!(snr_per_net(&[]), 0.0);
        assert_eq!(snr_per_net(&[vec![1.0]]), 0.0);
        assert_eq!(snr_per_net(&[vec![1.0, 1.0], vec![2.0, 2.0]]), 0.0);
    }
}
