//! Arbiter PUF under the additive linear delay model.
//!
//! An n-stage arbiter PUF races a signal through n switch stages; the
//! challenge selects the crossing pattern and an arbiter samples which
//! path wins. The standard model: the delay difference is a linear
//! function `w · Φ(c)` of the parity-transformed challenge `Φ(c)`, with
//! per-instance Gaussian stage weights `w` and per-evaluation thermal
//! noise.

use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

fn gaussian(rng: &mut StdRng, sigma: f64) -> f64 {
    // Box–Muller
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Arbiter PUF instance parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbiterPufConfig {
    /// Number of switch stages (challenge bits).
    pub stages: usize,
    /// Standard deviation of the per-stage process variation. The
    /// asymmetric-layout enhancement \[30\] increases this, improving
    /// inter-chip uniqueness and noise margin.
    pub variation_sigma: f64,
    /// Standard deviation of per-evaluation thermal noise.
    pub noise_sigma: f64,
}

impl Default for ArbiterPufConfig {
    fn default() -> Self {
        ArbiterPufConfig {
            stages: 32,
            variation_sigma: 1.0,
            noise_sigma: 0.05,
        }
    }
}

/// One manufactured arbiter PUF instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ArbiterPuf {
    weights: Vec<f64>, // stages + 1
    noise_sigma: f64,
    noise_rng: StdRng,
}

impl ArbiterPuf {
    /// "Manufactures" an instance: draws the stage weights from the
    /// process (`chip_seed` identifies the chip).
    pub fn manufacture(config: &ArbiterPufConfig, chip_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(chip_seed);
        let weights = (0..=config.stages)
            .map(|_| gaussian(&mut rng, config.variation_sigma))
            .collect();
        ArbiterPuf {
            weights,
            noise_sigma: config.noise_sigma,
            noise_rng: StdRng::seed_from_u64(chip_seed ^ 0x5EED_0000),
        }
    }

    /// Number of challenge bits.
    pub fn stages(&self) -> usize {
        self.weights.len() - 1
    }

    /// The parity feature transform `Φ(c)`: `Φ_i = Π_{j≥i} (1 - 2c_j)`,
    /// with a trailing constant 1.
    pub fn features(challenge: &[bool]) -> Vec<f64> {
        let n = challenge.len();
        let mut phi = vec![1.0; n + 1];
        for i in (0..n).rev() {
            let sign = if challenge[i] { -1.0 } else { 1.0 };
            phi[i] = phi[i + 1] * sign;
        }
        phi
    }

    /// The noiseless delay difference for a challenge.
    pub fn delay_difference(&self, challenge: &[bool]) -> f64 {
        assert_eq!(challenge.len(), self.stages(), "challenge width");
        Self::features(challenge)
            .iter()
            .zip(&self.weights)
            .map(|(f, w)| f * w)
            .sum()
    }

    /// Evaluates the PUF response with fresh thermal noise.
    pub fn respond(&mut self, challenge: &[bool]) -> bool {
        let noise = gaussian(&mut self.noise_rng, self.noise_sigma);
        self.delay_difference(challenge) + noise > 0.0
    }

    /// The ideal (noise-free) response.
    pub fn respond_ideal(&self, challenge: &[bool]) -> bool {
        self.delay_difference(challenge) > 0.0
    }
}

/// An XOR arbiter PUF: `k` independent arbiter chains whose responses
/// are XOR-combined — the classical hardening against modeling attacks.
#[derive(Debug, Clone, PartialEq)]
pub struct XorArbiterPuf {
    chains: Vec<ArbiterPuf>,
}

impl XorArbiterPuf {
    /// Manufactures `k` chains on one chip.
    pub fn manufacture(config: &ArbiterPufConfig, k: usize, chip_seed: u64) -> Self {
        XorArbiterPuf {
            chains: (0..k)
                .map(|i| ArbiterPuf::manufacture(config, chip_seed.wrapping_add(i as u64 * 77)))
                .collect(),
        }
    }

    /// Number of challenge bits.
    pub fn stages(&self) -> usize {
        self.chains[0].stages()
    }

    /// Evaluates the XOR of all chain responses (with noise).
    pub fn respond(&mut self, challenge: &[bool]) -> bool {
        self.chains
            .iter_mut()
            .fold(false, |acc, c| acc ^ c.respond(challenge))
    }

    /// The ideal (noise-free) response.
    pub fn respond_ideal(&self, challenge: &[bool]) -> bool {
        self.chains
            .iter()
            .fold(false, |acc, c| acc ^ c.respond_ideal(challenge))
    }
}

/// Draws `count` uniformly random challenges of width `stages`.
pub fn random_challenges(stages: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..stages).map(|_| rng.gen()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_have_expected_shape() {
        let phi = ArbiterPuf::features(&[false, false, false]);
        assert_eq!(phi, vec![1.0, 1.0, 1.0, 1.0]);
        let phi = ArbiterPuf::features(&[true, false, false]);
        assert_eq!(phi, vec![-1.0, 1.0, 1.0, 1.0]);
        let phi = ArbiterPuf::features(&[false, false, true]);
        assert_eq!(phi, vec![-1.0, -1.0, -1.0, 1.0]);
    }

    #[test]
    fn responses_are_deterministic_without_noise() {
        let config = ArbiterPufConfig {
            noise_sigma: 0.0,
            ..ArbiterPufConfig::default()
        };
        let mut puf = ArbiterPuf::manufacture(&config, 1);
        let challenges = random_challenges(32, 50, 2);
        for c in &challenges {
            assert_eq!(puf.respond(c), puf.respond_ideal(c));
        }
    }

    #[test]
    fn different_chips_differ() {
        let config = ArbiterPufConfig::default();
        let a = ArbiterPuf::manufacture(&config, 10);
        let b = ArbiterPuf::manufacture(&config, 11);
        let challenges = random_challenges(32, 200, 3);
        let differing = challenges
            .iter()
            .filter(|c| a.respond_ideal(c) != b.respond_ideal(c))
            .count();
        assert!(
            (60..=140).contains(&differing),
            "two chips should disagree on roughly half: {differing}/200"
        );
    }

    #[test]
    fn noise_flips_marginal_responses_occasionally() {
        let config = ArbiterPufConfig {
            noise_sigma: 1.0, // exaggerated
            ..ArbiterPufConfig::default()
        };
        let mut puf = ArbiterPuf::manufacture(&config, 20);
        let challenges = random_challenges(32, 300, 4);
        let flips: usize = challenges
            .iter()
            .filter(|c| puf.respond(c) != puf.respond_ideal(c))
            .count();
        assert!(flips > 0, "heavy noise must flip something");
    }

    #[test]
    fn xor_puf_combines_chains() {
        let config = ArbiterPufConfig {
            noise_sigma: 0.0,
            ..ArbiterPufConfig::default()
        };
        let xor3 = XorArbiterPuf::manufacture(&config, 3, 30);
        let challenges = random_challenges(32, 100, 5);
        for c in &challenges {
            let expect = xor3
                .chains
                .iter()
                .fold(false, |acc, chain| acc ^ chain.respond_ideal(c));
            assert_eq!(xor3.respond_ideal(c), expect);
        }
    }

    #[test]
    #[should_panic(expected = "challenge width")]
    fn wrong_challenge_width_panics() {
        let puf = ArbiterPuf::manufacture(&ArbiterPufConfig::default(), 1);
        let _ = puf.respond_ideal(&[true; 5]);
    }
}
