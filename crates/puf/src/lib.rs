//! # seceda-puf
//!
//! Entropy primitives: physically unclonable functions and true random
//! number generation — the metering/counterfeiting cells of Table II.
//!
//! * [`arbiter`] — the arbiter PUF under the standard additive linear
//!   delay model, including the asymmetric-layout variation enhancement
//!   of \[30\] (physical synthesis tuning entropy primitives);
//! * [`ro`] — ring-oscillator PUF with pairwise frequency comparison;
//! * [`sram`] — SRAM power-up PUF with per-cell mismatch;
//! * [`metrics`] — the standard PUF quality metrics: uniqueness,
//!   reliability, uniformity, bit-aliasing (validated during timing and
//!   power verification per Table II);
//! * [`attack`] — a from-scratch logistic-regression modeling attack on
//!   arbiter PUFs: accuracy versus collected CRPs, plus the XOR-PUF
//!   hardening comparison;
//! * [`trng`] — a biased-source TRNG with a von Neumann extractor and
//!   SP 800-90B-style health tests (repetition count and adaptive
//!   proportion), the secure-RNG allocation HLS needs \[41\].

pub mod arbiter;
pub mod attack;
pub mod metrics;
pub mod ro;
pub mod sram;
pub mod trng;

pub use arbiter::{random_challenges, ArbiterPuf, ArbiterPufConfig, XorArbiterPuf};
pub use attack::{collect_crps, model_arbiter_puf, ModelingAttackResult};
pub use metrics::{bit_aliasing, reliability, uniformity, uniqueness};
pub use ro::{RoPuf, RoPufConfig};
pub use sram::{SramPuf, SramPufConfig};
pub use trng::{Trng, TrngConfig, TrngHealth};
