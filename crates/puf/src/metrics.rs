//! Standard PUF quality metrics.
//!
//! All metrics operate on response matrices: `responses[chip][bit]`.

/// Uniqueness: mean pairwise inter-chip Hamming distance, normalized by
/// the response length. Ideal: 0.5.
///
/// # Panics
///
/// Panics with fewer than two chips or inconsistent lengths.
pub fn uniqueness(responses: &[Vec<bool>]) -> f64 {
    assert!(responses.len() >= 2, "need at least two chips");
    let n = responses[0].len();
    assert!(n > 0, "empty responses");
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..responses.len() {
        for j in (i + 1)..responses.len() {
            assert_eq!(responses[j].len(), n, "inconsistent response widths");
            let hd = responses[i]
                .iter()
                .zip(&responses[j])
                .filter(|(a, b)| a != b)
                .count();
            total += hd as f64 / n as f64;
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Reliability: `1 -` mean intra-chip Hamming distance between a
/// reference readout and repeated readouts of the *same* chip.
/// Ideal: 1.0.
///
/// # Panics
///
/// Panics on empty or inconsistent inputs.
pub fn reliability(reference: &[bool], rereads: &[Vec<bool>]) -> f64 {
    assert!(!reference.is_empty(), "empty reference");
    assert!(!rereads.is_empty(), "need at least one re-read");
    let n = reference.len();
    let mut total = 0.0;
    for r in rereads {
        assert_eq!(r.len(), n, "inconsistent widths");
        let hd = reference.iter().zip(r).filter(|(a, b)| a != b).count();
        total += hd as f64 / n as f64;
    }
    1.0 - total / rereads.len() as f64
}

/// Uniformity: fraction of 1 bits in a single chip's response.
/// Ideal: 0.5.
pub fn uniformity(response: &[bool]) -> f64 {
    if response.is_empty() {
        return 0.0;
    }
    response.iter().filter(|&&b| b).count() as f64 / response.len() as f64
}

/// Bit-aliasing: per response bit, the fraction of chips producing 1 —
/// returns the worst deviation from 0.5 over all bits. Ideal: 0.0.
///
/// # Panics
///
/// Panics on empty or inconsistent inputs.
pub fn bit_aliasing(responses: &[Vec<bool>]) -> f64 {
    assert!(!responses.is_empty(), "no chips");
    let n = responses[0].len();
    let mut worst = 0.0f64;
    for bit in 0..n {
        let ones = responses
            .iter()
            .map(|r| {
                assert_eq!(r.len(), n, "inconsistent widths");
                r[bit] as usize
            })
            .sum::<usize>();
        let p = ones as f64 / responses.len() as f64;
        worst = worst.max((p - 0.5).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::{random_challenges, ArbiterPuf, ArbiterPufConfig};

    fn population(config: &ArbiterPufConfig, chips: usize) -> Vec<Vec<bool>> {
        let challenges = random_challenges(config.stages, 128, 77);
        (0..chips)
            .map(|chip| {
                let puf = ArbiterPuf::manufacture(config, 1000 + chip as u64);
                challenges.iter().map(|c| puf.respond_ideal(c)).collect()
            })
            .collect()
    }

    #[test]
    fn arbiter_population_metrics_near_ideal() {
        let config = ArbiterPufConfig::default();
        let pop = population(&config, 24);
        let u = uniqueness(&pop);
        assert!((0.38..=0.62).contains(&u), "uniqueness {u}");
        let a = bit_aliasing(&pop);
        assert!(a < 0.45, "bit aliasing {a}");
        for chip in &pop {
            let uf = uniformity(chip);
            assert!((0.2..=0.8).contains(&uf), "uniformity {uf}");
        }
    }

    #[test]
    fn reliability_degrades_with_noise() {
        let challenges = random_challenges(32, 256, 88);
        let quiet_config = ArbiterPufConfig {
            noise_sigma: 0.02,
            ..ArbiterPufConfig::default()
        };
        let noisy_config = ArbiterPufConfig {
            noise_sigma: 1.5,
            ..ArbiterPufConfig::default()
        };
        let eval = |config: &ArbiterPufConfig| {
            let mut puf = ArbiterPuf::manufacture(config, 5);
            let reference: Vec<bool> = challenges.iter().map(|c| puf.respond_ideal(c)).collect();
            let rereads: Vec<Vec<bool>> = (0..10)
                .map(|_| challenges.iter().map(|c| puf.respond(c)).collect())
                .collect();
            reliability(&reference, &rereads)
        };
        let quiet = eval(&quiet_config);
        let noisy = eval(&noisy_config);
        assert!(
            quiet > noisy,
            "noise must cost reliability: {quiet} vs {noisy}"
        );
        assert!(quiet > 0.95, "quiet reliability {quiet}");
    }

    #[test]
    fn asymmetric_layout_improves_reliability() {
        // [30]: deliberately increasing stage variation raises the delay
        // margin over thermal noise — layout optimization of an entropy
        // primitive
        let challenges = random_challenges(32, 256, 99);
        let eval = |variation: f64| {
            let config = ArbiterPufConfig {
                variation_sigma: variation,
                noise_sigma: 0.3,
                ..ArbiterPufConfig::default()
            };
            let mut puf = ArbiterPuf::manufacture(&config, 6);
            let reference: Vec<bool> = challenges.iter().map(|c| puf.respond_ideal(c)).collect();
            let rereads: Vec<Vec<bool>> = (0..10)
                .map(|_| challenges.iter().map(|c| puf.respond(c)).collect())
                .collect();
            reliability(&reference, &rereads)
        };
        let symmetric = eval(0.5);
        let asymmetric = eval(2.0);
        assert!(
            asymmetric > symmetric,
            "larger variation should improve noise margin: {asymmetric} vs {symmetric}"
        );
    }

    #[test]
    fn perfect_inputs_give_perfect_metrics() {
        let a = vec![true, false, true, false];
        let b = vec![false, true, false, true];
        assert!((uniqueness(&[a.clone(), b]) - 1.0).abs() < 1e-9);
        assert!((reliability(&a, &[a.clone(), a.clone()]) - 1.0).abs() < 1e-9);
        assert!((uniformity(&a) - 0.5).abs() < 1e-9);
    }
}
