//! Ring-oscillator PUF.

use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

fn gaussian(rng: &mut StdRng, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// RO PUF parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoPufConfig {
    /// Number of ring oscillators.
    pub num_oscillators: usize,
    /// Nominal frequency (arbitrary units).
    pub nominal_frequency: f64,
    /// Process-variation standard deviation of each RO's frequency.
    pub variation_sigma: f64,
    /// Per-measurement jitter standard deviation.
    pub noise_sigma: f64,
}

impl Default for RoPufConfig {
    fn default() -> Self {
        RoPufConfig {
            num_oscillators: 32,
            nominal_frequency: 100.0,
            variation_sigma: 1.0,
            noise_sigma: 0.05,
        }
    }
}

/// A manufactured RO PUF instance. Response bits come from comparing
/// disjoint oscillator pairs: bit `i` is `freq[2i] > freq[2i+1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RoPuf {
    frequencies: Vec<f64>,
    noise_sigma: f64,
    noise_rng: StdRng,
}

impl RoPuf {
    /// Manufactures an instance.
    pub fn manufacture(config: &RoPufConfig, chip_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(chip_seed);
        let frequencies = (0..config.num_oscillators)
            .map(|_| config.nominal_frequency + gaussian(&mut rng, config.variation_sigma))
            .collect();
        RoPuf {
            frequencies,
            noise_sigma: config.noise_sigma,
            noise_rng: StdRng::seed_from_u64(chip_seed ^ 0x0501_13A7),
        }
    }

    /// Number of response bits (half the oscillator count).
    pub fn response_bits(&self) -> usize {
        self.frequencies.len() / 2
    }

    /// Reads the full response with fresh measurement jitter.
    pub fn read(&mut self) -> Vec<bool> {
        (0..self.response_bits())
            .map(|i| {
                let fa = self.frequencies[2 * i] + gaussian(&mut self.noise_rng, self.noise_sigma);
                let fb =
                    self.frequencies[2 * i + 1] + gaussian(&mut self.noise_rng, self.noise_sigma);
                fa > fb
            })
            .collect()
    }

    /// The ideal (jitter-free) response.
    pub fn read_ideal(&self) -> Vec<bool> {
        (0..self.response_bits())
            .map(|i| self.frequencies[2 * i] > self.frequencies[2 * i + 1])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{reliability, uniqueness};

    #[test]
    fn population_is_unique_and_reliable() {
        let config = RoPufConfig::default();
        let responses: Vec<Vec<bool>> = (0..10)
            .map(|chip| RoPuf::manufacture(&config, 500 + chip).read_ideal())
            .collect();
        let u = uniqueness(&responses);
        assert!((0.3..=0.7).contains(&u), "uniqueness {u}");

        let mut chip = RoPuf::manufacture(&config, 501);
        let reference = chip.read_ideal();
        let rereads: Vec<Vec<bool>> = (0..10).map(|_| chip.read()).collect();
        let r = reliability(&reference, &rereads);
        assert!(r > 0.9, "reliability {r}");
    }

    #[test]
    fn jitter_hurts_reliability() {
        let noisy = RoPufConfig {
            noise_sigma: 2.0,
            ..RoPufConfig::default()
        };
        let mut chip = RoPuf::manufacture(&noisy, 502);
        let reference = chip.read_ideal();
        let rereads: Vec<Vec<bool>> = (0..10).map(|_| chip.read()).collect();
        let r = reliability(&reference, &rereads);
        assert!(r < 0.99, "heavy jitter must flip bits: {r}");
    }
}
