//! Logistic-regression modeling attack on arbiter PUFs.
//!
//! The arbiter PUF's response is `sign(w · Φ(c))` — a linear threshold
//! function, learnable from challenge/response pairs. This module trains
//! a from-scratch logistic regression with SGD and reports prediction
//! accuracy on held-out challenges. XOR PUFs compose `k` such functions
//! and resist this (linear) attack, which the tests demonstrate.

use crate::arbiter::{random_challenges, ArbiterPuf};

/// Result of a modeling attack.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelingAttackResult {
    /// Learned weight vector (same feature space as the PUF model).
    pub weights: Vec<f64>,
    /// Prediction accuracy on the held-out test CRPs.
    pub accuracy: f64,
    /// Number of training CRPs used.
    pub training_crps: usize,
}

/// Trains a logistic-regression model from `(challenge, response)` pairs
/// and evaluates it on a test set.
///
/// # Panics
///
/// Panics if the training set is empty or widths are inconsistent.
pub fn model_arbiter_puf(
    train: &[(Vec<bool>, bool)],
    test: &[(Vec<bool>, bool)],
    epochs: usize,
    learning_rate: f64,
) -> ModelingAttackResult {
    assert!(!train.is_empty(), "empty training set");
    let stages = train[0].0.len();
    let mut weights = vec![0.0f64; stages + 1];
    for epoch in 0..epochs {
        let lr = learning_rate / (1.0 + epoch as f64 * 0.1);
        for (challenge, response) in train {
            assert_eq!(challenge.len(), stages, "inconsistent challenge width");
            let phi = ArbiterPuf::features(challenge);
            let z: f64 = phi.iter().zip(&weights).map(|(f, w)| f * w).sum();
            let p = 1.0 / (1.0 + (-z).exp());
            let y = *response as u8 as f64;
            let err = y - p;
            for (w, f) in weights.iter_mut().zip(&phi) {
                *w += lr * err * f;
            }
        }
    }
    let correct = test
        .iter()
        .filter(|(challenge, response)| {
            let phi = ArbiterPuf::features(challenge);
            let z: f64 = phi.iter().zip(&weights).map(|(f, w)| f * w).sum();
            (z > 0.0) == *response
        })
        .count();
    let accuracy = if test.is_empty() {
        0.0
    } else {
        correct as f64 / test.len() as f64
    };
    ModelingAttackResult {
        weights,
        accuracy,
        training_crps: train.len(),
    }
}

/// Convenience: collects CRPs from any response function.
pub fn collect_crps(
    mut respond: impl FnMut(&[bool]) -> bool,
    stages: usize,
    count: usize,
    seed: u64,
) -> Vec<(Vec<bool>, bool)> {
    random_challenges(stages, count, seed)
        .into_iter()
        .map(|c| {
            let r = respond(&c);
            (c, r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::{ArbiterPuf, ArbiterPufConfig, XorArbiterPuf};

    fn quiet() -> ArbiterPufConfig {
        ArbiterPufConfig {
            noise_sigma: 0.0,
            ..ArbiterPufConfig::default()
        }
    }

    #[test]
    fn attack_clones_a_plain_arbiter_puf() {
        let puf = ArbiterPuf::manufacture(&quiet(), 42);
        let train = collect_crps(|c| puf.respond_ideal(c), 32, 2000, 1);
        let test = collect_crps(|c| puf.respond_ideal(c), 32, 500, 2);
        let result = model_arbiter_puf(&train, &test, 30, 0.1);
        assert!(
            result.accuracy > 0.95,
            "2000 CRPs should clone a 32-stage arbiter PUF: {}",
            result.accuracy
        );
    }

    #[test]
    fn accuracy_grows_with_crps() {
        let puf = ArbiterPuf::manufacture(&quiet(), 43);
        let test = collect_crps(|c| puf.respond_ideal(c), 32, 500, 3);
        let mut last = 0.0;
        let mut accuracies = Vec::new();
        for &n in &[50usize, 200, 1000, 4000] {
            let train = collect_crps(|c| puf.respond_ideal(c), 32, n, 4);
            let result = model_arbiter_puf(&train, &test, 30, 0.1);
            accuracies.push(result.accuracy);
            last = result.accuracy;
        }
        assert!(
            accuracies[0] < accuracies[3],
            "more data must help: {accuracies:?}"
        );
        assert!(last > 0.95, "final accuracy {last}");
    }

    #[test]
    fn xor_puf_resists_the_linear_attack() {
        let plain = ArbiterPuf::manufacture(&quiet(), 44);
        let xor = XorArbiterPuf::manufacture(&quiet(), 4, 44);
        let plain_train = collect_crps(|c| plain.respond_ideal(c), 32, 2000, 5);
        let plain_test = collect_crps(|c| plain.respond_ideal(c), 32, 500, 6);
        let xor_train = collect_crps(|c| xor.respond_ideal(c), 32, 2000, 5);
        let xor_test = collect_crps(|c| xor.respond_ideal(c), 32, 500, 6);
        let plain_result = model_arbiter_puf(&plain_train, &plain_test, 30, 0.1);
        let xor_result = model_arbiter_puf(&xor_train, &xor_test, 30, 0.1);
        assert!(
            plain_result.accuracy - xor_result.accuracy > 0.2,
            "XOR-4 must resist linear modeling: plain {} vs xor {}",
            plain_result.accuracy,
            xor_result.accuracy
        );
        assert!(
            xor_result.accuracy < 0.75,
            "XOR-4 accuracy should be near chance: {}",
            xor_result.accuracy
        );
    }

    #[test]
    fn noisy_crps_cap_the_accuracy() {
        let noisy_config = ArbiterPufConfig {
            noise_sigma: 0.8,
            ..ArbiterPufConfig::default()
        };
        let mut puf = ArbiterPuf::manufacture(&noisy_config, 45);
        let train: Vec<(Vec<bool>, bool)> = random_challenges(32, 2000, 7)
            .into_iter()
            .map(|c| {
                let r = puf.respond(&c);
                (c, r)
            })
            .collect();
        let test = collect_crps(|c| puf.respond_ideal(c), 32, 500, 8);
        let result = model_arbiter_puf(&train, &test, 30, 0.1);
        // the model still learns the dominant linear part
        assert!(result.accuracy > 0.8, "accuracy {}", result.accuracy);
    }
}
