//! True random number generation with entropy conditioning and online
//! health tests.
//!
//! The raw source is a (possibly biased, possibly failing) physical coin;
//! a von Neumann extractor removes bias; SP 800-90B-style health tests —
//! repetition count and adaptive proportion — catch total failures of
//! the source at runtime, as required for any key-generation or masking
//! randomness supply \[41\].

use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// TRNG parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrngConfig {
    /// Probability that the raw source emits 1 (0.5 = unbiased).
    pub source_bias: f64,
    /// If `true`, the source is broken and repeats its last bit (models
    /// a stuck ring oscillator or an attacker freezing the source).
    pub stuck: bool,
    /// Repetition-count test cutoff (identical consecutive raw bits).
    pub repetition_cutoff: usize,
    /// Adaptive-proportion window size.
    pub proportion_window: usize,
    /// Adaptive-proportion cutoff (max count of the majority symbol).
    pub proportion_cutoff: usize,
    /// RNG seed for the physical noise.
    pub seed: u64,
}

impl Default for TrngConfig {
    fn default() -> Self {
        TrngConfig {
            source_bias: 0.5,
            stuck: false,
            repetition_cutoff: 32,
            proportion_window: 512,
            proportion_cutoff: 400,
            seed: 0x7278_6E67,
        }
    }
}

/// Health status of the entropy source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrngHealth {
    /// All tests passing.
    Healthy,
    /// The repetition-count test tripped.
    RepetitionFailure,
    /// The adaptive-proportion test tripped.
    ProportionFailure,
}

/// A TRNG with conditioning and health monitoring.
#[derive(Debug, Clone)]
pub struct Trng {
    config: TrngConfig,
    rng: StdRng,
    last_raw: Option<bool>,
    repetition_run: usize,
    window: Vec<bool>,
    health: TrngHealth,
}

impl Trng {
    /// Builds a TRNG over the configured source.
    pub fn new(config: TrngConfig) -> Self {
        Trng {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            last_raw: None,
            repetition_run: 0,
            window: Vec::new(),
            health: TrngHealth::Healthy,
        }
    }

    /// Current health verdict.
    pub fn health(&self) -> TrngHealth {
        self.health
    }

    fn raw_bit(&mut self) -> bool {
        let bit = if self.config.stuck {
            self.last_raw.unwrap_or(true)
        } else {
            self.rng.gen_bool(self.config.source_bias.clamp(0.0, 1.0))
        };
        // repetition-count test
        if Some(bit) == self.last_raw {
            self.repetition_run += 1;
            if self.repetition_run >= self.config.repetition_cutoff {
                self.health = TrngHealth::RepetitionFailure;
            }
        } else {
            self.repetition_run = 1;
        }
        self.last_raw = Some(bit);
        // adaptive-proportion test
        self.window.push(bit);
        if self.window.len() == self.config.proportion_window {
            let ones = self.window.iter().filter(|&&b| b).count();
            let majority = ones.max(self.config.proportion_window - ones);
            if majority >= self.config.proportion_cutoff {
                self.health = TrngHealth::ProportionFailure;
            }
            self.window.clear();
        }
        bit
    }

    /// Produces one conditioned (von Neumann extracted) bit, consuming
    /// raw bits until an unequal pair arrives. Returns `None` if the
    /// source fails a health test first (after which the TRNG refuses
    /// service, as a secure design must).
    pub fn bit(&mut self) -> Option<bool> {
        if self.health != TrngHealth::Healthy {
            return None;
        }
        for _ in 0..4096 {
            let a = self.raw_bit();
            let b = self.raw_bit();
            if self.health != TrngHealth::Healthy {
                return None;
            }
            if a != b {
                return Some(a);
            }
        }
        None // pathological source
    }

    /// Produces `n` conditioned bits (or fewer if the source fails).
    pub fn bits(&mut self, n: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.bit() {
                Some(b) => out.push(b),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_source_delivers_unbiased_bits() {
        let mut trng = Trng::new(TrngConfig::default());
        let bits = trng.bits(4000);
        assert_eq!(bits.len(), 4000);
        assert_eq!(trng.health(), TrngHealth::Healthy);
        let ones = bits.iter().filter(|&&b| b).count();
        assert!((1800..=2200).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn biased_source_still_extracts_unbiased_bits() {
        let mut trng = Trng::new(TrngConfig {
            source_bias: 0.7,
            // 70% bias trips the default proportion cutoff eventually,
            // so widen it for this extraction test
            proportion_cutoff: 512,
            ..TrngConfig::default()
        });
        let bits = trng.bits(3000);
        assert_eq!(bits.len(), 3000);
        let ones = bits.iter().filter(|&&b| b).count();
        // von Neumann output is exactly unbiased regardless of p
        assert!((1350..=1650).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn stuck_source_is_caught_and_service_stops() {
        let mut trng = Trng::new(TrngConfig {
            stuck: true,
            ..TrngConfig::default()
        });
        let bits = trng.bits(100);
        assert!(bits.is_empty(), "stuck source must never emit");
        assert_eq!(trng.health(), TrngHealth::RepetitionFailure);
    }

    #[test]
    fn heavy_bias_trips_the_proportion_test() {
        let mut trng = Trng::new(TrngConfig {
            source_bias: 0.95,
            repetition_cutoff: 1000, // let the proportion test catch it
            ..TrngConfig::default()
        });
        let _ = trng.bits(2000);
        assert_eq!(trng.health(), TrngHealth::ProportionFailure);
    }
}
