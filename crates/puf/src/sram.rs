//! SRAM power-up PUF.
//!
//! Each cell's cross-coupled inverter pair has a process mismatch; the
//! power-up value follows the mismatch sign unless the mismatch is so
//! small that supply noise wins — those are the unreliable cells.

use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

fn gaussian(rng: &mut StdRng, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// SRAM PUF parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramPufConfig {
    /// Number of cells (response bits).
    pub cells: usize,
    /// Mismatch standard deviation.
    pub mismatch_sigma: f64,
    /// Power-up noise standard deviation.
    pub noise_sigma: f64,
}

impl Default for SramPufConfig {
    fn default() -> Self {
        SramPufConfig {
            cells: 256,
            mismatch_sigma: 1.0,
            noise_sigma: 0.1,
        }
    }
}

/// A manufactured SRAM PUF instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SramPuf {
    mismatch: Vec<f64>,
    noise_sigma: f64,
    noise_rng: StdRng,
}

impl SramPuf {
    /// Manufactures an instance.
    pub fn manufacture(config: &SramPufConfig, chip_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(chip_seed);
        let mismatch = (0..config.cells)
            .map(|_| gaussian(&mut rng, config.mismatch_sigma))
            .collect();
        SramPuf {
            mismatch,
            noise_sigma: config.noise_sigma,
            noise_rng: StdRng::seed_from_u64(chip_seed ^ 0x54A3),
        }
    }

    /// Simulates a power-up readout with fresh noise.
    pub fn power_up(&mut self) -> Vec<bool> {
        let sigma = self.noise_sigma;
        let mut values = Vec::with_capacity(self.mismatch.len());
        for &m in &self.mismatch {
            values.push(m + gaussian(&mut self.noise_rng, sigma) > 0.0);
        }
        values
    }

    /// The ideal (noise-free) power-up pattern.
    pub fn power_up_ideal(&self) -> Vec<bool> {
        self.mismatch.iter().map(|&m| m > 0.0).collect()
    }

    /// Indices of cells whose |mismatch| is below `margin` — candidates
    /// for dark-bit masking during enrollment.
    pub fn unreliable_cells(&self, margin: f64) -> Vec<usize> {
        self.mismatch
            .iter()
            .enumerate()
            .filter(|(_, m)| m.abs() < margin)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{reliability, uniqueness};

    #[test]
    fn population_metrics() {
        let config = SramPufConfig::default();
        let responses: Vec<Vec<bool>> = (0..8)
            .map(|chip| SramPuf::manufacture(&config, 900 + chip).power_up_ideal())
            .collect();
        let u = uniqueness(&responses);
        assert!((0.4..=0.6).contains(&u), "uniqueness {u}");
    }

    #[test]
    fn dark_bit_masking_improves_reliability() {
        let config = SramPufConfig {
            noise_sigma: 0.4,
            ..SramPufConfig::default()
        };
        let mut chip = SramPuf::manufacture(&config, 901);
        let reference = chip.power_up_ideal();
        let rereads: Vec<Vec<bool>> = (0..10).map(|_| chip.power_up()).collect();
        let raw = reliability(&reference, &rereads);
        // mask out low-margin cells and recompute
        let mask = chip.unreliable_cells(1.0);
        let filter = |r: &[bool]| -> Vec<bool> {
            r.iter()
                .enumerate()
                .filter(|(i, _)| !mask.contains(i))
                .map(|(_, &b)| b)
                .collect()
        };
        let masked_ref = filter(&reference);
        let masked_rereads: Vec<Vec<bool>> = rereads.iter().map(|r| filter(r)).collect();
        let masked = reliability(&masked_ref, &masked_rereads);
        assert!(
            masked > raw,
            "dark-bit masking must help: {masked} vs {raw}"
        );
        assert!(masked > 0.985, "masked reliability {masked}");
    }
}
