//! Property-based tests for PUFs and the TRNG.

use seceda_puf::{
    bit_aliasing, reliability, uniformity, uniqueness, ArbiterPuf, ArbiterPufConfig, Trng,
    TrngConfig, TrngHealth,
};
use seceda_testkit::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn metrics_stay_in_range(chips in 2usize..8, bits in 1usize..64, seed in any::<u64>()) {
        // synthesize an arbitrary response matrix from the seed
        let responses: Vec<Vec<bool>> = (0..chips)
            .map(|c| {
                (0..bits)
                    .map(|b| (seed.rotate_left((c * 7 + b) as u32) & 1) == 1)
                    .collect()
            })
            .collect();
        let u = uniqueness(&responses);
        prop_assert!((0.0..=1.0).contains(&u));
        let a = bit_aliasing(&responses);
        prop_assert!((0.0..=0.5 + 1e-9).contains(&a));
        for r in &responses {
            let f = uniformity(r);
            prop_assert!((0.0..=1.0).contains(&f));
        }
        let rel = reliability(&responses[0], &responses[1..].to_vec());
        prop_assert!((0.0..=1.0).contains(&rel));
    }

    #[test]
    fn noiseless_puf_is_perfectly_reliable(chip in any::<u64>()) {
        let config = ArbiterPufConfig {
            noise_sigma: 0.0,
            ..ArbiterPufConfig::default()
        };
        let mut puf = ArbiterPuf::manufacture(&config, chip);
        let challenges = seceda_puf::random_challenges(32, 64, chip ^ 1);
        let reference: Vec<bool> = challenges.iter().map(|c| puf.respond_ideal(c)).collect();
        let reread: Vec<bool> = challenges.iter().map(|c| puf.respond(c)).collect();
        prop_assert_eq!(reference, reread);
    }

    #[test]
    fn von_neumann_output_is_unbiased_for_any_source_bias(bias_pct in 20u32..80) {
        let mut trng = Trng::new(TrngConfig {
            source_bias: bias_pct as f64 / 100.0,
            repetition_cutoff: 10_000,
            proportion_cutoff: 100_000,
            proportion_window: 99_999,
            seed: bias_pct as u64 * 31,
            ..TrngConfig::default()
        });
        let bits = trng.bits(1500);
        prop_assert_eq!(bits.len(), 1500);
        let ones = bits.iter().filter(|&&b| b).count();
        prop_assert!((600..=900).contains(&ones), "ones = {}", ones);
    }

    #[test]
    fn stuck_sources_are_always_caught(seed in any::<u64>()) {
        let mut trng = Trng::new(TrngConfig {
            stuck: true,
            seed,
            ..TrngConfig::default()
        });
        prop_assert!(trng.bits(16).is_empty());
        prop_assert_eq!(trng.health(), TrngHealth::RepetitionFailure);
    }
}
