//! SAT-based ATPG for single stuck-at faults.
//!
//! Random patterns knock out the easy faults; each remaining fault gets
//! a dedicated SAT query on a sensitization miter (good circuit vs.
//! faulty circuit, shared inputs, some output must differ). UNSAT proves
//! the fault untestable (redundant logic).
//!
//! The miter is built *incrementally*: [`AtpgSolver`] encodes the good
//! circuit exactly once and keeps one persistent solver across every
//! fault. Each query appends only the fault's fan-out cone, gated on a
//! fresh selector literal passed as an assumption, then retires the cone
//! with a root-level unit — so learned clauses about the good circuit
//! accumulate across the whole run instead of being rebuilt per fault.

use seceda_netlist::{NetId, Netlist, NetlistError};
use seceda_sat::{
    encode_faulty_cone, encode_netlist, Budget, CnfBuilder, GatedCnf, Lit, NetlistEncoding,
    SolveOutcome, Solver, StopReason,
};
use seceda_sim::{fault::stuck_at_universe, Fault, FaultKind, PackedFaultSim};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// Result of a test-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgResult {
    /// The generated test patterns.
    pub patterns: Vec<Vec<bool>>,
    /// Faults proven untestable (no input can expose them).
    pub untestable: Vec<Fault>,
    /// Achieved coverage over the *testable* faults.
    pub coverage: f64,
    /// Total fault universe size.
    pub total_faults: usize,
}

/// What a budgeted single-fault query produced.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultTestOutcome {
    /// A test pattern exposing the fault.
    Test(Vec<bool>),
    /// Proven untestable (redundant logic, or the fault reaches no
    /// output).
    Untestable,
    /// The per-fault budget ran out before the query was decided — the
    /// industry-standard *aborted fault*. The solver stays usable; the
    /// fault's clause group is retired, so later queries are unaffected.
    Aborted(StopReason),
}

/// A persistent incremental ATPG engine: the good circuit is encoded
/// once, and every fault query only appends that fault's selector-gated
/// fan-out cone to the same live solver.
pub struct AtpgSolver<'a> {
    nl: &'a Netlist,
    solver: Solver,
    good: NetlistEncoding,
    /// A literal constrained false at the root; stuck-at faults read it
    /// (or its negation) as their faulty source value.
    false_lit: Lit,
}

impl<'a> AtpgSolver<'a> {
    /// Encodes the good circuit into a fresh persistent solver.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (cyclic netlists).
    pub fn new(nl: &'a Netlist) -> Result<Self, NetlistError> {
        let mut solver = Solver::new(0);
        let good = encode_netlist(nl, &mut solver)?;
        let f = solver.new_var();
        solver.add_clause([f.neg()]);
        Ok(AtpgSolver {
            nl,
            solver,
            good,
            false_lit: f.pos(),
        })
    }

    /// The literal carrying the faulty value of `fault.net`.
    fn faulty_source(&self, fault: Fault) -> Lit {
        match fault.kind {
            FaultKind::StuckAt0 => self.false_lit,
            FaultKind::StuckAt1 => !self.false_lit,
            FaultKind::BitFlip => self.good.vars[fault.net.index()].neg(),
        }
    }

    /// Generates a test for a single fault; `None` means proven
    /// untestable (by structure when the fault reaches no output, by
    /// UNSAT otherwise).
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn generate_test(&mut self, fault: Fault) -> Result<Option<Vec<bool>>, NetlistError> {
        match self.generate_test_budgeted(fault, &Budget::unlimited())? {
            FaultTestOutcome::Test(pattern) => Ok(Some(pattern)),
            FaultTestOutcome::Untestable => Ok(None),
            // unlimited budgets skip every budget check
            FaultTestOutcome::Aborted(reason) => {
                unreachable!("unbudgeted ATPG query aborted: {reason}")
            }
        }
    }

    /// Budgeted [`AtpgSolver::generate_test`]: the sensitization query
    /// runs under `budget`, and exhaustion yields
    /// [`FaultTestOutcome::Aborted`] instead of an answer. The aborted
    /// fault's clause group is retired exactly like a decided one, so
    /// the engine continues to the next fault with a consistent solver.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn generate_test_budgeted(
        &mut self,
        fault: Fault,
        budget: &Budget,
    ) -> Result<FaultTestOutcome, NetlistError> {
        let faulty_source = self.faulty_source(fault);
        let sel = self.solver.new_var();
        let guard = sel.neg();
        let cone = encode_faulty_cone(
            self.nl,
            &self.good,
            fault.net,
            faulty_source,
            guard,
            &mut self.solver,
        )?;
        if cone.is_empty() {
            // the fault reaches no primary output: untestable without a
            // single solver call
            self.solver.add_clause([guard]);
            return Ok(FaultTestOutcome::Untestable);
        }
        // gated sensitization requirement: some cone output must differ
        let mut gated = GatedCnf::new(&mut self.solver, guard);
        let mut diffs = Vec::new();
        for &(k, flit) in &cone {
            let d = gated.new_var().pos();
            let good_out = self.good.output_vars[k].pos();
            gated.gate_xor(d, good_out, flit);
            diffs.push(d);
        }
        gated.add_clause(diffs);
        let result = self.solver.solve_budgeted(&[sel.pos()], budget);
        // retire this fault's clause group for good
        self.solver.add_clause([guard]);
        Ok(match result {
            SolveOutcome::Sat(model) => FaultTestOutcome::Test(
                self.good
                    .input_vars
                    .iter()
                    .map(|v| model[v.index()])
                    .collect(),
            ),
            SolveOutcome::Unsat => FaultTestOutcome::Untestable,
            SolveOutcome::Indeterminate(reason) => FaultTestOutcome::Aborted(reason),
        })
    }

    /// The net a fault on `net` feeds, resolved through the good
    /// encoding (introspection hook for coverage-style callers).
    pub fn good_var_of(&self, net: NetId) -> seceda_sat::Var {
        self.good.vars[net.index()]
    }
}

/// Generates a test for a single fault; `None` means proven untestable.
///
/// One-shot convenience wrapper over [`AtpgSolver`]; batch callers
/// should keep one `AtpgSolver` across faults.
///
/// # Errors
///
/// Propagates encoding errors.
pub fn generate_test_for(nl: &Netlist, fault: Fault) -> Result<Option<Vec<bool>>, NetlistError> {
    AtpgSolver::new(nl)?.generate_test(fault)
}

/// Full ATPG: random bootstrap then SAT cleanup.
///
/// # Errors
///
/// Propagates simulator/encoding errors.
pub fn generate_tests(
    nl: &Netlist,
    random_patterns: usize,
    seed: u64,
) -> Result<AtpgResult, NetlistError> {
    let mut sp = seceda_trace::span("dft.atpg");
    sp.attr("gates", nl.num_gates());
    sp.attr("random_patterns", random_patterns);
    let faults = stuck_at_universe(nl);
    let sim = PackedFaultSim::new(nl)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let num_inputs = nl.inputs().len();
    let mut patterns: Vec<Vec<bool>> = (0..random_patterns)
        .map(|_| (0..num_inputs).map(|_| rng.gen()).collect())
        .collect();
    // incremental grading: the random bootstrap drops the easy faults,
    // then each SAT pattern is graded (packed) against only the faults
    // still undetected at that moment — a SAT pattern generated for one
    // fault frequently detects several others, saving their SAT queries,
    // and the full end-of-run re-grade disappears entirely (the final
    // `detected` vector is identical to a from-scratch grade of all
    // patterns against all faults, since detection is monotone).
    let mut detected = vec![false; faults.len()];
    sim.grade(&patterns, &faults, &mut detected);
    let mut untestable = Vec::new();
    let mut sat_queries = 0u64;
    let mut atpg = AtpgSolver::new(nl)?;
    for (k, &f) in faults.iter().enumerate() {
        // heartbeat: the watchdog sees fault-list progress even while
        // individual SAT queries are slow
        seceda_trace::progress("dft.faults_processed", k as u64 + 1);
        if detected[k] {
            continue;
        }
        sat_queries += 1;
        match atpg.generate_test(f)? {
            Some(pattern) => {
                sim.grade(std::slice::from_ref(&pattern), &faults, &mut detected);
                patterns.push(pattern);
            }
            None => untestable.push(f),
        }
    }
    let testable = faults.len() - untestable.len();
    let covered = detected.iter().filter(|&&d| d).count();
    let coverage = if testable == 0 {
        1.0
    } else {
        covered as f64 / testable as f64
    };
    seceda_trace::counter("dft.patterns_generated", patterns.len() as u64);
    seceda_trace::counter("dft.sat_queries", sat_queries);
    seceda_trace::counter("dft.aborted_faults", untestable.len() as u64);
    sp.attr("total_faults", faults.len());
    sp.attr("patterns", patterns.len());
    sp.attr("untestable", untestable.len());
    sp.attr("coverage", coverage);
    Ok(AtpgResult {
        patterns,
        untestable,
        coverage,
        total_faults: faults.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{c17, CellKind};

    #[test]
    fn c17_reaches_full_coverage() {
        let nl = c17();
        let result = generate_tests(&nl, 4, 9).expect("atpg");
        assert!(result.untestable.is_empty(), "c17 is fully testable");
        assert!(
            (result.coverage - 1.0).abs() < 1e-9,
            "coverage {}",
            result.coverage
        );
    }

    #[test]
    fn redundant_logic_is_proven_untestable() {
        // y = a | (a & b): the AND is redundant; its stuck-at-0 is
        // untestable
        let mut nl = Netlist::new("red");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let ab = nl.add_gate(CellKind::And, &[a, b]);
        let y = nl.add_gate(CellKind::Or, &[a, ab]);
        nl.mark_output(y, "y");
        let result = generate_tests(&nl, 8, 10).expect("atpg");
        let sa0 = Fault::stuck_at(ab, false);
        assert!(
            result.untestable.contains(&sa0),
            "redundant AND stuck-at-0 must be untestable: {:?}",
            result.untestable
        );
    }

    #[test]
    fn sat_patterns_actually_detect_their_faults() {
        let nl = c17();
        let faults = stuck_at_universe(&nl);
        let sim = seceda_sim::FaultSim::new(&nl).expect("sim");
        let mut atpg = AtpgSolver::new(&nl).expect("encode");
        for &f in &faults {
            if let Some(pattern) = atpg.generate_test(f).expect("query") {
                assert!(sim.detects(&pattern, f), "SAT pattern must detect {f:?}");
            }
        }
    }

    #[test]
    fn persistent_solver_agrees_with_one_shot_queries() {
        // differential: the shared-solver path must classify every fault
        // exactly like a fresh solver per fault
        let nl = c17();
        let faults = stuck_at_universe(&nl);
        let mut atpg = AtpgSolver::new(&nl).expect("encode");
        for &f in &faults {
            let shared = atpg.generate_test(f).expect("query").is_some();
            let fresh = generate_test_for(&nl, f).expect("query").is_some();
            assert_eq!(shared, fresh, "testability verdicts diverge on {f:?}");
        }
    }

    #[test]
    fn zero_budget_aborts_fault_and_solver_stays_usable() {
        let nl = c17();
        let faults = stuck_at_universe(&nl);
        let mut atpg = AtpgSolver::new(&nl).expect("encode");
        // starve the first query by propagations: the first poll fires
        // immediately, before any decision can be made
        let starved = Budget::unlimited().with_max_propagations(0);
        let aborted = atpg
            .generate_test_budgeted(faults[0], &starved)
            .expect("query");
        assert!(
            matches!(aborted, FaultTestOutcome::Aborted(_)),
            "a zero-propagation budget must abort: {aborted:?}"
        );
        // the aborted fault's cone was retired; every later unbudgeted
        // query must still agree with a fresh one-shot solver
        for &f in &faults {
            let shared = atpg.generate_test(f).expect("query").is_some();
            let fresh = generate_test_for(&nl, f).expect("query").is_some();
            assert_eq!(shared, fresh, "verdicts diverge after abort on {f:?}");
        }
        // and re-querying the starved fault with no budget decides it
        assert!(matches!(
            atpg.generate_test_budgeted(faults[0], &Budget::unlimited())
                .expect("query"),
            FaultTestOutcome::Test(_) | FaultTestOutcome::Untestable
        ));
    }

    #[test]
    fn more_random_patterns_reduce_sat_work() {
        let nl = c17();
        let few = generate_tests(&nl, 1, 11).expect("atpg");
        let many = generate_tests(&nl, 32, 11).expect("atpg");
        // both must reach full coverage; with 32 random patterns the SAT
        // stage has less to do so the final pattern count shrinks or ties
        assert!((few.coverage - 1.0).abs() < 1e-9);
        assert!((many.coverage - 1.0).abs() < 1e-9);
    }
}
