//! SAT-based ATPG for single stuck-at faults.
//!
//! Random patterns knock out the easy faults; each remaining fault gets
//! a dedicated SAT query on a sensitization miter (good circuit vs.
//! faulty circuit, shared inputs, some output must differ). UNSAT proves
//! the fault untestable (redundant logic).

use seceda_netlist::{Netlist, NetlistError};
use seceda_sat::{encode_netlist, Cnf, SatResult, Solver};
use seceda_sim::{fault::stuck_at_universe, Fault, FaultKind, PackedFaultSim};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// Result of a test-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgResult {
    /// The generated test patterns.
    pub patterns: Vec<Vec<bool>>,
    /// Faults proven untestable (no input can expose them).
    pub untestable: Vec<Fault>,
    /// Achieved coverage over the *testable* faults.
    pub coverage: f64,
    /// Total fault universe size.
    pub total_faults: usize,
}

/// Encodes the faulty copy of `nl` with `fault` *structurally* injected:
/// the faulted net's loads read a substituted constant/inverted net.
fn encode_with_fault(
    nl: &Netlist,
    cnf: &mut Cnf,
    fault: Fault,
) -> Result<seceda_sat::NetlistEncoding, NetlistError> {
    // build a structurally faulted netlist, then encode it normally
    let mut faulty = nl.clone();
    use seceda_netlist::{CellKind, GateTags};
    let replacement = match fault.kind {
        FaultKind::StuckAt0 => faulty.add_gate(CellKind::Const0, &[]),
        FaultKind::StuckAt1 => faulty.add_gate(CellKind::Const1, &[]),
        FaultKind::BitFlip => {
            faulty.add_gate_tagged(CellKind::Not, &[fault.net], GateTags::default())
        }
    };
    faulty.replace_net_uses(fault.net, replacement);
    encode_netlist(&faulty, cnf)
}

/// Generates a test for a single fault; `None` means proven untestable.
///
/// # Errors
///
/// Propagates encoding errors.
pub fn generate_test_for(nl: &Netlist, fault: Fault) -> Result<Option<Vec<bool>>, NetlistError> {
    let mut cnf = Cnf::new();
    let good = encode_netlist(nl, &mut cnf)?;
    let bad = encode_with_fault(nl, &mut cnf, fault)?;
    for (&g, &b) in good.input_vars.iter().zip(&bad.input_vars) {
        cnf.gate_buf(g.pos(), b.pos());
    }
    let mut diffs = Vec::new();
    for (&og, &ob) in good.output_vars.iter().zip(&bad.output_vars) {
        let d = cnf.new_var().pos();
        cnf.gate_xor(d, og.pos(), ob.pos());
        diffs.push(d);
    }
    let any = cnf.new_var().pos();
    for &d in &diffs {
        cnf.add_clause([any, !d]);
    }
    let mut big = diffs;
    big.push(!any);
    cnf.add_clause(big);
    let mut solver = Solver::from_cnf(&cnf);
    Ok(match solver.solve_with_assumptions(&[any]) {
        SatResult::Sat(model) => Some(good.input_vars.iter().map(|v| model[v.index()]).collect()),
        SatResult::Unsat => None,
    })
}

/// Full ATPG: random bootstrap then SAT cleanup.
///
/// # Errors
///
/// Propagates simulator/encoding errors.
pub fn generate_tests(
    nl: &Netlist,
    random_patterns: usize,
    seed: u64,
) -> Result<AtpgResult, NetlistError> {
    let mut sp = seceda_trace::span("dft.atpg");
    sp.attr("gates", nl.num_gates());
    sp.attr("random_patterns", random_patterns);
    let faults = stuck_at_universe(nl);
    let sim = PackedFaultSim::new(nl)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let num_inputs = nl.inputs().len();
    let mut patterns: Vec<Vec<bool>> = (0..random_patterns)
        .map(|_| (0..num_inputs).map(|_| rng.gen()).collect())
        .collect();
    // incremental grading: the random bootstrap drops the easy faults,
    // then each SAT pattern is graded (packed) against only the faults
    // still undetected at that moment — a SAT pattern generated for one
    // fault frequently detects several others, saving their SAT queries,
    // and the full end-of-run re-grade disappears entirely (the final
    // `detected` vector is identical to a from-scratch grade of all
    // patterns against all faults, since detection is monotone).
    let mut detected = vec![false; faults.len()];
    sim.grade(&patterns, &faults, &mut detected);
    let mut untestable = Vec::new();
    let mut sat_queries = 0u64;
    for (k, &f) in faults.iter().enumerate() {
        if detected[k] {
            continue;
        }
        sat_queries += 1;
        match generate_test_for(nl, f)? {
            Some(pattern) => {
                sim.grade(std::slice::from_ref(&pattern), &faults, &mut detected);
                patterns.push(pattern);
            }
            None => untestable.push(f),
        }
    }
    let testable = faults.len() - untestable.len();
    let covered = detected.iter().filter(|&&d| d).count();
    let coverage = if testable == 0 {
        1.0
    } else {
        covered as f64 / testable as f64
    };
    seceda_trace::counter("dft.patterns_generated", patterns.len() as u64);
    seceda_trace::counter("dft.sat_queries", sat_queries);
    seceda_trace::counter("dft.aborted_faults", untestable.len() as u64);
    sp.attr("total_faults", faults.len());
    sp.attr("patterns", patterns.len());
    sp.attr("untestable", untestable.len());
    sp.attr("coverage", coverage);
    Ok(AtpgResult {
        patterns,
        untestable,
        coverage,
        total_faults: faults.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{c17, CellKind};

    #[test]
    fn c17_reaches_full_coverage() {
        let nl = c17();
        let result = generate_tests(&nl, 4, 9).expect("atpg");
        assert!(result.untestable.is_empty(), "c17 is fully testable");
        assert!(
            (result.coverage - 1.0).abs() < 1e-9,
            "coverage {}",
            result.coverage
        );
    }

    #[test]
    fn redundant_logic_is_proven_untestable() {
        // y = a | (a & b): the AND is redundant; its stuck-at-0 is
        // untestable
        let mut nl = Netlist::new("red");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let ab = nl.add_gate(CellKind::And, &[a, b]);
        let y = nl.add_gate(CellKind::Or, &[a, ab]);
        nl.mark_output(y, "y");
        let result = generate_tests(&nl, 8, 10).expect("atpg");
        let sa0 = Fault::stuck_at(ab, false);
        assert!(
            result.untestable.contains(&sa0),
            "redundant AND stuck-at-0 must be untestable: {:?}",
            result.untestable
        );
    }

    #[test]
    fn sat_patterns_actually_detect_their_faults() {
        let nl = c17();
        let faults = stuck_at_universe(&nl);
        let sim = seceda_sim::FaultSim::new(&nl).expect("sim");
        for &f in &faults {
            if let Some(pattern) = generate_test_for(&nl, f).expect("query") {
                assert!(sim.detects(&pattern, f), "SAT pattern must detect {f:?}");
            }
        }
    }

    #[test]
    fn more_random_patterns_reduce_sat_work() {
        let nl = c17();
        let few = generate_tests(&nl, 1, 11).expect("atpg");
        let many = generate_tests(&nl, 32, 11).expect("atpg");
        // both must reach full coverage; with 32 random patterns the SAT
        // stage has less to do so the final pattern count shrinks or ties
        assert!((few.coverage - 1.0).abs() < 1e-9);
        assert!((many.coverage - 1.0).abs() < 1e-9);
    }
}
