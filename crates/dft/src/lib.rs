//! # seceda-dft
//!
//! Design-for-test infrastructure and its security tensions — the
//! testing row of Table II and Sec. III-F of the paper.
//!
//! Testability and security pull in opposite directions \[56\]: the same
//! scan chain that makes a chip testable hands an attacker register-level
//! access. This crate builds both sides:
//!
//! * [`atpg`] — SAT-based automatic test pattern generation for stuck-at
//!   faults, with random-pattern bootstrapping and untestability proofs;
//! * [`scan`] — scan-chain insertion (mux-scan DFFs) and shift/capture
//!   simulation helpers;
//! * [`scan_attack`] — the classical scan-based key-recovery attack
//!   \[39\] on a registered cipher block, plus *secure scan* (keyed
//!   scan-out scrambling) that defeats it;
//! * [`bist`] — logic BIST: LFSR pattern generation and a MISR response
//!   compactor with golden-signature checking;
//! * [`dfx`] — the security-aware DFX controller the paper calls for:
//!   it consumes fault verdicts (natural vs. malicious, from
//!   `seceda-fia`) and manages the locking key, releasing it only in an
//!   authorized test mode.

pub mod atpg;
pub mod bist;
pub mod dfx;
pub mod scan;
pub mod scan_attack;

pub use atpg::{generate_test_for, generate_tests, AtpgResult, AtpgSolver, FaultTestOutcome};
pub use bist::{run_bist, BistConfig, BistResult, Lfsr, Misr};
pub use dfx::{DfxController, DfxResponse, DfxState};
pub use scan::{insert_scan_chain, ScanChain};
pub use scan_attack::{scan_attack_recover_key, scan_victim, secure_scan_wrap, SecuredScanDesign};
