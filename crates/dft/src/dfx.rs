//! The security-aware DFX controller (Sec. III-F).
//!
//! Classical DFX combines scan, BIST, and recovery logic. The paper
//! argues the *response policy* must distinguish natural from malicious
//! faults: fastest recovery for the former, re-keying or discontinuation
//! of service for the latter — and that the DFX fabric should also own
//! key management for logic locking (delivering the unlock key only in
//! an authorized state).

use seceda_fia::FaultVerdict;

/// Operating state of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DfxState {
    /// Normal operation.
    Mission,
    /// Authorized test mode (scan/BIST enabled, key accessible).
    Test,
    /// Recovering from a natural fault (retry/repair).
    Recovering,
    /// Attack suspected: secrets zeroized, service halted.
    Lockdown,
}

/// The controller's reaction to an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DfxResponse {
    /// Continue normal operation.
    Proceed,
    /// Retry the failed operation after transparent recovery.
    RecoverAndResume,
    /// Rotate session keys and continue cautiously.
    ReKey,
    /// Halt: zeroize and refuse service.
    Halt,
}

/// The security-aware DFX controller.
#[derive(Debug, Clone)]
pub struct DfxController {
    state: DfxState,
    test_credential: u64,
    locking_key: Vec<bool>,
    rekey_budget: u32,
}

impl DfxController {
    /// Creates a controller holding the locking key, protected by a test
    /// credential.
    pub fn new(test_credential: u64, locking_key: Vec<bool>, rekey_budget: u32) -> Self {
        DfxController {
            state: DfxState::Mission,
            test_credential,
            locking_key,
            rekey_budget,
        }
    }

    /// Current state.
    pub fn state(&self) -> DfxState {
        self.state
    }

    /// Requests entry into test mode. Only the correct credential
    /// succeeds, and never from lockdown.
    pub fn enter_test_mode(&mut self, credential: u64) -> bool {
        if self.state == DfxState::Lockdown {
            return false;
        }
        if credential == self.test_credential {
            self.state = DfxState::Test;
            true
        } else {
            // a wrong credential is itself suspicious
            self.state = DfxState::Lockdown;
            false
        }
    }

    /// Returns to mission mode from test or recovery.
    pub fn leave_special_mode(&mut self) {
        if self.state != DfxState::Lockdown {
            self.state = DfxState::Mission;
        }
    }

    /// Releases the locking key — only in authorized test mode.
    pub fn locking_key(&self) -> Option<&[bool]> {
        if self.state == DfxState::Test {
            Some(&self.locking_key)
        } else {
            None
        }
    }

    /// Feeds a fault verdict (from the discriminator) and returns the
    /// mandated response, updating internal state.
    pub fn on_fault(&mut self, verdict: FaultVerdict) -> DfxResponse {
        if self.state == DfxState::Lockdown {
            return DfxResponse::Halt;
        }
        match verdict {
            FaultVerdict::Undecided => DfxResponse::Proceed,
            FaultVerdict::Natural => {
                self.state = DfxState::Recovering;
                DfxResponse::RecoverAndResume
            }
            FaultVerdict::Malicious => {
                if self.rekey_budget > 0 {
                    self.rekey_budget -= 1;
                    DfxResponse::ReKey
                } else {
                    self.state = DfxState::Lockdown;
                    self.locking_key.iter_mut().for_each(|b| *b = false);
                    DfxResponse::Halt
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> DfxController {
        DfxController::new(0xC0FFEE, vec![true, false, true, true], 2)
    }

    #[test]
    fn natural_faults_recover() {
        let mut c = controller();
        assert_eq!(
            c.on_fault(FaultVerdict::Natural),
            DfxResponse::RecoverAndResume
        );
        assert_eq!(c.state(), DfxState::Recovering);
        c.leave_special_mode();
        assert_eq!(c.state(), DfxState::Mission);
    }

    #[test]
    fn malicious_faults_escalate_to_lockdown() {
        let mut c = controller();
        assert_eq!(c.on_fault(FaultVerdict::Malicious), DfxResponse::ReKey);
        assert_eq!(c.on_fault(FaultVerdict::Malicious), DfxResponse::ReKey);
        assert_eq!(c.on_fault(FaultVerdict::Malicious), DfxResponse::Halt);
        assert_eq!(c.state(), DfxState::Lockdown);
        // once locked down, everything halts
        assert_eq!(c.on_fault(FaultVerdict::Natural), DfxResponse::Halt);
    }

    #[test]
    fn key_released_only_in_test_mode() {
        let mut c = controller();
        assert!(c.locking_key().is_none());
        assert!(c.enter_test_mode(0xC0FFEE));
        assert_eq!(c.locking_key(), Some(&[true, false, true, true][..]));
        c.leave_special_mode();
        assert!(c.locking_key().is_none());
    }

    #[test]
    fn wrong_credential_locks_down_and_zeroizes() {
        let mut c = controller();
        assert!(!c.enter_test_mode(0xBAD));
        assert_eq!(c.state(), DfxState::Lockdown);
        assert!(!c.enter_test_mode(0xC0FFEE), "lockdown is sticky");
        assert!(c.locking_key().is_none());
    }

    #[test]
    fn lockdown_zeroizes_the_key() {
        let mut c = DfxController::new(1, vec![true; 4], 0);
        assert_eq!(c.on_fault(FaultVerdict::Malicious), DfxResponse::Halt);
        // even if state were somehow bypassed, the key material is gone
        assert!(c.locking_key.iter().all(|&b| !b));
    }

    #[test]
    fn undecided_proceeds() {
        let mut c = controller();
        assert_eq!(c.on_fault(FaultVerdict::Undecided), DfxResponse::Proceed);
        assert_eq!(c.state(), DfxState::Mission);
    }
}
