//! Scan-chain insertion and shift/capture simulation.
//!
//! Mux-scan: every DFF's data input is replaced by
//! `scan_enable ? previous_chain_bit : functional_data`; the last DFF
//! output is exported as `scan_out`. With `scan_enable` high the
//! registers form a shift register fully controllable and observable
//! from the outside — which is exactly the security problem
//! [`crate::scan_attack`] demonstrates.

use seceda_netlist::{CellKind, GateId, GateTags, NetId, Netlist};

/// A scan-inserted design.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanChain {
    /// The modified netlist, with new inputs `scan_enable`, `scan_in`
    /// and a new output `scan_out`.
    pub netlist: Netlist,
    /// DFF gate ids in chain order (scan_in feeds the first; the last
    /// drives scan_out).
    pub chain: Vec<GateId>,
    /// The `scan_enable` input net.
    pub scan_enable: NetId,
    /// The `scan_in` input net.
    pub scan_in: NetId,
}

impl ScanChain {
    /// Chain length (number of scan flops).
    pub fn len(&self) -> usize {
        self.chain.len()
    }

    /// `true` if the design had no DFFs.
    pub fn is_empty(&self) -> bool {
        self.chain.is_empty()
    }

    /// Shifts `bits` into the chain (LSB first ends up in the *last*
    /// flop), starting from `state`; returns the new state. Functional
    /// inputs are held at `held_inputs`.
    pub fn shift_in(&self, state: &[bool], bits: &[bool], held_inputs: &[bool]) -> Vec<bool> {
        let mut st = state.to_vec();
        for &b in bits {
            let mut inputs = held_inputs.to_vec();
            inputs.push(true); // scan_enable
            inputs.push(b); // scan_in
            let (_, next) = self.netlist.step(&inputs, &st).expect("step");
            st = next;
        }
        st
    }

    /// One functional capture cycle (scan_enable low).
    pub fn capture(&self, state: &[bool], inputs: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let mut full = inputs.to_vec();
        full.push(false); // scan_enable
        full.push(false); // scan_in
        self.netlist.step(&full, state).expect("step")
    }

    /// Shifts the chain contents out (returns bits in the order they
    /// appear on `scan_out`: last flop first). Functional inputs held.
    pub fn shift_out(&self, state: &[bool], held_inputs: &[bool]) -> Vec<bool> {
        let mut st = state.to_vec();
        let mut out = Vec::with_capacity(self.chain.len());
        // scan_out is the last output
        for _ in 0..self.chain.len() {
            let mut inputs = held_inputs.to_vec();
            inputs.push(true); // scan_enable
            inputs.push(false); // scan_in
            let (outs, next) = self.netlist.step(&inputs, &st).expect("step");
            out.push(outs[outs.len() - 1]);
            st = next;
        }
        out
    }
}

/// Inserts a mux-scan chain over all DFFs (in creation order).
///
/// # Panics
///
/// Panics if the design has no DFFs.
pub fn insert_scan_chain(nl: &Netlist) -> ScanChain {
    let dffs = nl.dffs();
    assert!(!dffs.is_empty(), "scan insertion needs registers");
    let mut scanned = nl.clone();
    let scan_enable = scanned.add_input("scan_enable");
    let scan_in = scanned.add_input("scan_in");
    let tags = GateTags::default();
    let mut prev_q = scan_in;
    for &d in &dffs {
        let functional_d = scanned.gate(d).inputs[0];
        // mux: scan_enable ? prev_q : functional_d
        let mux =
            scanned.add_gate_tagged(CellKind::Mux, &[scan_enable, functional_d, prev_q], tags);
        scanned.gate_mut(d).inputs[0] = mux;
        prev_q = scanned.gate(d).output;
    }
    scanned.mark_output(prev_q, "scan_out");
    ScanChain {
        netlist: scanned,
        chain: dffs,
        scan_enable,
        scan_in,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_cipher::sbox_first_round_registered;

    #[test]
    fn chain_shifts_patterns_through() {
        let nl = sbox_first_round_registered();
        let scan = insert_scan_chain(&nl);
        assert_eq!(scan.len(), 8);
        let held = vec![false; 16];
        // shift in an 8-bit pattern, then shift it back out
        let pattern = [true, false, true, true, false, false, true, false];
        let state = scan.shift_in(&vec![false; 8], &pattern, &held);
        let out = scan.shift_out(&state, &held);
        // first-in bit reaches the end of the chain and exits first, so
        // the pattern comes back in its original order
        assert_eq!(out, pattern.to_vec());
    }

    #[test]
    fn functional_mode_is_unchanged() {
        let nl = sbox_first_round_registered();
        let scan = insert_scan_chain(&nl);
        let inputs: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
        let mut plain_state = vec![false; 8];
        let mut scan_state = vec![false; 8];
        for _ in 0..3 {
            let (plain_out, pn) = nl.step(&inputs, &plain_state).expect("step");
            let (scan_out, sn) = scan.capture(&scan_state, &inputs);
            assert_eq!(&scan_out[..plain_out.len()], &plain_out[..]);
            plain_state = pn;
            scan_state = sn;
        }
    }

    #[test]
    fn capture_then_dump_observes_registers() {
        let nl = sbox_first_round_registered();
        let scan = insert_scan_chain(&nl);
        let inputs: Vec<bool> = (0..16).map(|i| i % 2 == 0).collect();
        let (_, captured) = scan.capture(&vec![false; 8], &inputs);
        let dumped = scan.shift_out(&captured, &vec![false; 16]);
        // the dump must contain exactly the captured state (reversed:
        // last flop exits first)
        let expect: Vec<bool> = captured.iter().rev().copied().collect();
        assert_eq!(dumped, expect);
    }
}
