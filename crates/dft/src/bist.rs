//! Logic built-in self test: LFSR stimulus, MISR compaction.

use seceda_netlist::{Netlist, NetlistError};
use seceda_sim::{pack_patterns, Fault, PackedFaultSim};

/// A Fibonacci LFSR over up to 64 bits with a fixed maximal-ish tap set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    state: u64,
    width: u32,
    taps: u64,
}

impl Lfsr {
    /// Creates an LFSR of `width` bits seeded with `seed` (a zero seed
    /// is replaced by 1, which a real LFSR cannot leave either).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or above 64.
    pub fn new(seed: u64, width: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        let taps = match width {
            16 => 0x2D,                  // x^16 + x^14 + x^13 + x^11 + 1, period 65535
            8 => 0x1D,                   // x^8 + x^6 + x^5 + x^4 + 1, period 255
            _ => (1 << (width - 1)) | 1, // fallback (period not maximal)
        };
        let state = seed & mask;
        Lfsr {
            state: if state == 0 { 1 } else { state },
            width,
            taps: taps & mask,
        }
    }

    /// Advances one step and returns the output bit.
    pub fn next_bit(&mut self) -> bool {
        let fb = (self.state & self.taps).count_ones() & 1;
        let out = self.state & 1 == 1;
        self.state = (self.state >> 1) | ((fb as u64) << (self.width - 1));
        out
    }

    /// Produces a pattern of `n` bits.
    pub fn pattern(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.next_bit()).collect()
    }
}

/// A multiple-input signature register: compacts response vectors into a
/// rolling signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Misr {
    state: u64,
    width: u32,
    taps: u64,
}

impl Misr {
    /// Creates a MISR of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or above 64.
    pub fn new(width: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        Misr {
            state: 0,
            width,
            taps: (0xB400_0000_0000_0000u64 >> (64 - width)) & mask | 1,
        }
    }

    /// Absorbs one response vector (LSB-first bits).
    pub fn absorb(&mut self, response: &[bool]) {
        let mut word = 0u64;
        for (i, &b) in response.iter().enumerate() {
            if b {
                word ^= 1 << (i as u32 % self.width);
            }
        }
        let fb = (self.state & self.taps).count_ones() & 1;
        self.state = ((self.state >> 1) | ((fb as u64) << (self.width - 1))) ^ word;
    }

    /// The current signature.
    pub fn signature(&self) -> u64 {
        self.state
    }
}

/// BIST parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistConfig {
    /// Number of LFSR patterns to apply.
    pub patterns: usize,
    /// LFSR seed.
    pub seed: u64,
    /// MISR width.
    pub misr_width: u32,
}

impl Default for BistConfig {
    fn default() -> Self {
        BistConfig {
            patterns: 256,
            seed: 0xACE1,
            misr_width: 32,
        }
    }
}

/// Result of one BIST session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistResult {
    /// The compacted signature.
    pub signature: u64,
    /// Number of patterns applied.
    pub patterns: usize,
}

/// Runs BIST on a combinational netlist with optional injected faults
/// (empty slice = golden run).
///
/// LFSR patterns are applied in 64-pattern packed batches (the faulty
/// responses of all 64 come from one bit-parallel pass), then unpacked
/// and absorbed by the MISR in LFSR order — the signature is
/// bit-identical to the per-pattern scalar run.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_bist(
    nl: &Netlist,
    config: &BistConfig,
    faults: &[Fault],
) -> Result<BistResult, NetlistError> {
    let sim = PackedFaultSim::new(nl)?;
    let mut lfsr = Lfsr::new(config.seed, 16);
    let mut misr = Misr::new(config.misr_width);
    let n = nl.inputs().len();
    let num_outputs = nl.outputs().len();
    let mut response = vec![false; num_outputs];
    let mut remaining = config.patterns;
    while remaining > 0 {
        let batch = remaining.min(64);
        let patterns: Vec<Vec<bool>> = (0..batch).map(|_| lfsr.pattern(n)).collect();
        let words = pack_patterns(&patterns, n);
        let outs = sim.eval_outputs_with_faults(&words, faults);
        for p in 0..batch {
            for (o, &word) in outs.iter().enumerate() {
                response[o] = (word >> p) & 1 == 1;
            }
            misr.absorb(&response);
        }
        remaining -= batch;
    }
    Ok(BistResult {
        signature: misr.signature(),
        patterns: config.patterns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::c17;
    use seceda_sim::fault::stuck_at_universe;

    #[test]
    fn lfsr_16_has_long_period() {
        let mut lfsr = Lfsr::new(1, 16);
        let mut seen = std::collections::HashSet::new();
        let mut steps = 0u32;
        loop {
            lfsr.next_bit();
            if !seen.insert(lfsr.state) {
                break;
            }
            steps += 1;
            assert!(steps <= 70_000, "period check runaway");
        }
        assert!(steps > 60_000, "16-bit LFSR period too short: {steps}");
    }

    #[test]
    fn golden_signature_is_reproducible() {
        let nl = c17();
        let a = run_bist(&nl, &BistConfig::default(), &[]).expect("bist");
        let b = run_bist(&nl, &BistConfig::default(), &[]).expect("bist");
        assert_eq!(a.signature, b.signature);
    }

    #[test]
    fn faults_change_the_signature() {
        let nl = c17();
        let config = BistConfig::default();
        let golden = run_bist(&nl, &config, &[]).expect("bist");
        let mut detected = 0usize;
        let faults = stuck_at_universe(&nl);
        for &f in &faults {
            let faulty = run_bist(&nl, &config, &[f]).expect("bist");
            if faulty.signature != golden.signature {
                detected += 1;
            }
        }
        // 256 pseudo-random patterns detect (nearly) every c17 fault
        assert!(
            detected as f64 >= 0.95 * faults.len() as f64,
            "BIST detected only {detected}/{}",
            faults.len()
        );
    }

    #[test]
    fn packed_bist_signature_matches_scalar_per_pattern_run() {
        use seceda_sim::FaultSim;
        let nl = c17();
        let config = BistConfig {
            patterns: 100, // deliberately not a multiple of 64
            ..BistConfig::default()
        };
        let faults = stuck_at_universe(&nl);
        let scalar = FaultSim::new(&nl).expect("sim");
        for fault_list in [&[][..], &faults[..2]] {
            let packed_sig = run_bist(&nl, &config, fault_list).expect("bist").signature;
            let mut lfsr = Lfsr::new(config.seed, 16);
            let mut misr = Misr::new(config.misr_width);
            for _ in 0..config.patterns {
                let pattern = lfsr.pattern(nl.inputs().len());
                let response = scalar.outputs(&scalar.eval_with_faults(&pattern, fault_list));
                misr.absorb(&response);
            }
            assert_eq!(packed_sig, misr.signature());
        }
    }

    #[test]
    fn misr_distinguishes_response_order() {
        let mut a = Misr::new(32);
        a.absorb(&[true, false]);
        a.absorb(&[false, true]);
        let mut b = Misr::new(32);
        b.absorb(&[false, true]);
        b.absorb(&[true, false]);
        assert_ne!(a.signature(), b.signature());
    }
}
