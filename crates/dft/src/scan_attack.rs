//! The scan-based key-recovery attack \[39\] and secure scan.
//!
//! Victim: an AES first-round byte slice with the key *embedded* as
//! constants and the S-box output registered. In mission mode the key is
//! unobservable; with scan access the attacker applies a chosen
//! plaintext, captures one round, dumps the register through the scan
//! chain, and inverts `key = pt ^ SBOX⁻¹(dump)`.
//!
//! Secure scan scrambles the scan-out stream with a keyed LFSR: the test
//! engineer (who knows the test key) descrambles; the attacker reads
//! noise.

use crate::bist::Lfsr;
use crate::scan::{insert_scan_chain, ScanChain};
use seceda_cipher::{table_lookup, AES_SBOX};
use seceda_netlist::{bits_to_u64, u64_to_bits, CellKind, Netlist, Word};

/// Builds the attack victim: `pt\[8\]` input, embedded constant `key`,
/// registered S-box output, scan chain inserted.
pub fn scan_victim(key: u8) -> ScanChain {
    let mut nl = Netlist::new("scan_victim");
    let pt = Word::input(&mut nl, "pt", 8);
    let key_word = Word::constant(&mut nl, key as u64, 8);
    let x = pt.xor(&mut nl, &key_word);
    let table: Vec<u64> = AES_SBOX.iter().map(|&v| v as u64).collect();
    let s = table_lookup(&mut nl, &x, &table, 8);
    for (i, &bit) in s.bits().iter().enumerate() {
        let q = nl.add_gate(CellKind::Dff, &[bit]);
        nl.mark_output(q, format!("s[{i}]"));
    }
    insert_scan_chain(&nl)
}

fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &v) in AES_SBOX.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

/// Runs the scan attack: one chosen plaintext, one capture, one dump.
/// Returns the recovered key byte.
pub fn scan_attack_recover_key(victim: &ScanChain, chosen_pt: u8) -> u8 {
    let inputs = u64_to_bits(chosen_pt as u64, 8);
    // capture the round: registers now hold SBOX[pt ^ key]
    let (_, state) = victim.capture(&vec![false; victim.len()], &inputs);
    // dump via scan (first-out bit = last flop = MSB of the byte)
    let dump = victim.shift_out(&state, &inputs);
    let ordered: Vec<bool> = dump.into_iter().rev().collect();
    let sbox_out = bits_to_u64(&ordered) as u8;
    chosen_pt ^ inv_sbox()[sbox_out as usize]
}

/// A scan design hardened with keyed scan-out scrambling.
#[derive(Debug, Clone)]
pub struct SecuredScanDesign {
    /// The underlying scan design (unchanged netlist).
    pub scan: ScanChain,
    /// The secret test key seeding the scrambler.
    test_key: u16,
}

impl SecuredScanDesign {
    /// Dumps the chain as an *attacker* (no key): scan-out bits arrive
    /// XOR-scrambled with the keyed stream.
    pub fn dump_scrambled(&self, state: &[bool], held_inputs: &[bool]) -> Vec<bool> {
        let raw = self.scan.shift_out(state, held_inputs);
        let mut lfsr = Lfsr::new(self.test_key.into(), 16);
        raw.into_iter().map(|b| b ^ lfsr.next_bit()).collect()
    }

    /// Dumps and descrambles as the *authorized test engineer*.
    pub fn dump_authorized(&self, state: &[bool], held_inputs: &[bool], key: u16) -> Vec<bool> {
        let scrambled = self.dump_scrambled(state, held_inputs);
        let mut lfsr = Lfsr::new(key.into(), 16);
        scrambled.into_iter().map(|b| b ^ lfsr.next_bit()).collect()
    }

    /// Forwards a functional capture.
    pub fn capture(&self, state: &[bool], inputs: &[bool]) -> (Vec<bool>, Vec<bool>) {
        self.scan.capture(state, inputs)
    }
}

/// Wraps a scan design with keyed scan-out scrambling.
pub fn secure_scan_wrap(scan: ScanChain, test_key: u16) -> SecuredScanDesign {
    SecuredScanDesign { scan, test_key }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_scan_leaks_the_key() {
        for key in [0x00u8, 0x5A, 0xFF, 0x3C] {
            let victim = scan_victim(key);
            let recovered = scan_attack_recover_key(&victim, 0xA7);
            assert_eq!(recovered, key, "scan attack must recover {key:#x}");
        }
    }

    #[test]
    fn attack_works_for_any_chosen_plaintext() {
        let victim = scan_victim(0x42);
        for pt in [0x00u8, 0x01, 0x80, 0xFF] {
            assert_eq!(scan_attack_recover_key(&victim, pt), 0x42);
        }
    }

    #[test]
    fn secure_scan_defeats_the_attack_but_serves_the_tester() {
        let key = 0x42u8;
        let secured = secure_scan_wrap(scan_victim(key), 0xBEEF);
        let chosen_pt = 0xA7u8;
        let inputs = u64_to_bits(chosen_pt as u64, 8);
        let (_, state) = secured.capture(&vec![false; 8], &inputs);

        // attacker path: scrambled dump inverts to the wrong key
        let scrambled = secured.dump_scrambled(&state, &inputs);
        let ordered: Vec<bool> = scrambled.iter().rev().copied().collect();
        let guess = chosen_pt ^ inv_sbox()[bits_to_u64(&ordered) as usize];
        assert_ne!(guess, key, "scrambling must break the inversion");

        // tester path: correct key descrambles to the true register value
        let clear = secured.dump_authorized(&state, &inputs, 0xBEEF);
        let ordered: Vec<bool> = clear.iter().rev().copied().collect();
        let sbox_out = bits_to_u64(&ordered) as u8;
        assert_eq!(sbox_out, AES_SBOX[(chosen_pt ^ key) as usize]);

        // wrong test key descrambles to junk
        let junk = secured.dump_authorized(&state, &inputs, 0x1111);
        assert_ne!(junk, clear);
    }
}
