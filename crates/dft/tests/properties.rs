//! Property-based tests for the test infrastructure.

use seceda_dft::{generate_tests, insert_scan_chain, run_bist, BistConfig, Lfsr, Misr};
use seceda_netlist::{random_circuit, RandomCircuitConfig};
use seceda_sim::{fault::stuck_at_universe, FaultSim};
use seceda_testkit::prelude::*;

fn host(seed: u64, gates: usize) -> seceda_netlist::Netlist {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 5,
        num_gates: gates,
        num_outputs: 3,
        with_xor: true,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn atpg_reaches_full_coverage_of_testable_faults(seed in 0u64..1000, gates in 3usize..18) {
        let nl = host(seed, gates);
        let result = generate_tests(&nl, 8, seed ^ 1).expect("atpg");
        prop_assert!((result.coverage - 1.0).abs() < 1e-9,
            "testable faults must all be covered: {}", result.coverage);
        // untestable faults really are untestable: no exhaustive pattern
        // detects them
        let sim = FaultSim::new(&nl).expect("sim");
        for &f in &result.untestable {
            for p in 0..32u32 {
                let inputs: Vec<bool> = (0..5).map(|b| (p >> b) & 1 == 1).collect();
                prop_assert!(!sim.detects(&inputs, f), "{f:?} detected by {inputs:?}");
            }
        }
    }

    #[test]
    fn bist_signature_flags_most_stuck_at_faults(seed in 0u64..1000, gates in 4usize..20) {
        let nl = host(seed, gates);
        let config = BistConfig::default();
        let golden = run_bist(&nl, &config, &[]).expect("bist");
        let faults = stuck_at_universe(&nl);
        // grade BIST against the simulator ground truth: whenever BIST
        // keeps the golden signature, plain fault simulation with the
        // same 256 LFSR patterns must also miss the fault
        let sim = FaultSim::new(&nl).expect("sim");
        let mut lfsr = Lfsr::new(config.seed, 16);
        let patterns: Vec<Vec<bool>> = (0..config.patterns)
            .map(|_| lfsr.pattern(nl.inputs().len()))
            .collect();
        for &f in faults.iter().take(20) {
            let bist_detects =
                run_bist(&nl, &config, &[f]).expect("bist").signature != golden.signature;
            let sim_detects = patterns.iter().any(|p| sim.detects(p, f));
            if sim_detects {
                // MISR aliasing could theoretically mask it, but with a
                // 32-bit signature this is ~2^-32; treat as must-detect
                prop_assert!(bist_detects, "aliasing on {f:?}");
            } else {
                prop_assert!(!bist_detects, "BIST cannot detect what patterns miss");
            }
        }
    }

    #[test]
    fn scan_shift_is_the_identity_after_a_full_rotation(
        seed in 0u64..1000,
        pattern_bits in any::<u16>(),
    ) {
        // registered random design: 8 DFFs via the cipher slice
        let nl = seceda_cipher::sbox_first_round_registered();
        let scan = insert_scan_chain(&nl);
        let _ = seed;
        let pattern: Vec<bool> = (0..8).map(|b| (pattern_bits >> b) & 1 == 1).collect();
        let held = vec![false; 16];
        let state = scan.shift_in(&vec![false; 8], &pattern, &held);
        let out = scan.shift_out(&state, &held);
        prop_assert_eq!(out, pattern);
    }

    #[test]
    fn misr_is_order_sensitive_but_deterministic(
        a in proptest::collection::vec(any::<bool>(), 4),
        b in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let sig = |xs: &[&Vec<bool>]| {
            let mut m = Misr::new(32);
            for x in xs {
                m.absorb(x);
            }
            m.signature()
        };
        prop_assert_eq!(sig(&[&a, &b]), sig(&[&a, &b]));
        if a != b {
            prop_assert_ne!(sig(&[&a, &b]), sig(&[&b, &a]));
        }
    }
}
