//! Scheduling and allocation.

use crate::dfg::{Dfg, NodeId};
use std::collections::BTreeMap;

/// A schedule: control step (cycle) per node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Cycle per node, indexed by [`NodeId::index`].
    pub cycle: Vec<u32>,
}

impl Schedule {
    /// Total latency (last used cycle + 1); 0 for empty graphs.
    pub fn latency(&self) -> u32 {
        self.cycle.iter().max().map(|&c| c + 1).unwrap_or(0)
    }

    /// Nodes scheduled in `cycle`.
    pub fn nodes_in_cycle(&self, cycle: u32) -> Vec<NodeId> {
        self.cycle
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == cycle)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// As-soon-as-possible schedule: every node one cycle after its latest
/// argument (sources at cycle 0).
pub fn asap(dfg: &Dfg) -> Schedule {
    let mut cycle = vec![0u32; dfg.len()];
    for (i, n) in dfg.nodes().iter().enumerate() {
        let ready = n
            .args
            .iter()
            .map(|a| cycle[a.index()] + 1)
            .max()
            .unwrap_or(0);
        cycle[i] = ready;
    }
    Schedule { cycle }
}

/// As-late-as-possible schedule for a given latency bound.
///
/// # Panics
///
/// Panics if `latency` is smaller than the ASAP latency.
pub fn alap(dfg: &Dfg, latency: u32) -> Schedule {
    let asap_sched = asap(dfg);
    assert!(
        latency >= asap_sched.latency(),
        "latency bound below critical path"
    );
    let users = dfg.users();
    let mut cycle = vec![latency - 1; dfg.len()];
    for i in (0..dfg.len()).rev() {
        let deadline = users[i]
            .iter()
            .map(|u| cycle[u.index()].saturating_sub(1))
            .min()
            .unwrap_or(latency - 1);
        cycle[i] = deadline;
    }
    Schedule { cycle }
}

/// Allocation results for a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Functional units needed per class (peak concurrency).
    pub functional_units: BTreeMap<String, usize>,
    /// Registers needed (peak number of values alive across a cycle
    /// boundary).
    pub registers: usize,
    /// Idle FU slots: per class, `units * latency - ops` (the dead space
    /// BISA-style self-authentication fills).
    pub idle_slots: BTreeMap<String, usize>,
}

/// Resource-constrained list scheduling: at most `limits[class]` ops of
/// each FU class per cycle (classes absent from `limits` are unlimited).
pub fn list_schedule(dfg: &Dfg, limits: &BTreeMap<String, usize>) -> Schedule {
    let mut cycle = vec![0u32; dfg.len()];
    let mut usage: BTreeMap<(String, u32), usize> = BTreeMap::new();
    for (i, n) in dfg.nodes().iter().enumerate() {
        let ready = n
            .args
            .iter()
            .map(|a| cycle[a.index()] + 1)
            .max()
            .unwrap_or(0);
        let mut c = ready;
        if let Some(class) = n.op.fu_class() {
            if let Some(&limit) = limits.get(class) {
                while usage.get(&(class.to_string(), c)).copied().unwrap_or(0) >= limit {
                    c += 1;
                }
                *usage.entry((class.to_string(), c)).or_insert(0) += 1;
            }
        }
        cycle[i] = c;
    }
    Schedule { cycle }
}

/// Computes the allocation implied by a schedule.
pub fn allocate(dfg: &Dfg, schedule: &Schedule) -> Allocation {
    let latency = schedule.latency().max(1);
    // peak FU concurrency per class
    let mut per_cycle: BTreeMap<(String, u32), usize> = BTreeMap::new();
    let mut op_counts: BTreeMap<String, usize> = BTreeMap::new();
    for (i, n) in dfg.nodes().iter().enumerate() {
        if let Some(class) = n.op.fu_class() {
            *per_cycle
                .entry((class.to_string(), schedule.cycle[i]))
                .or_insert(0) += 1;
            *op_counts.entry(class.to_string()).or_insert(0) += 1;
        }
    }
    let mut functional_units: BTreeMap<String, usize> = BTreeMap::new();
    for ((class, _), &count) in &per_cycle {
        let e = functional_units.entry(class.clone()).or_insert(0);
        if count > *e {
            *e = count;
        }
    }
    // registers: values alive across each cycle boundary
    let users = dfg.users();
    let mut registers = 0usize;
    for boundary in 0..latency {
        let alive = (0..dfg.len())
            .filter(|&i| {
                let born = schedule.cycle[i];
                let last_use = users[i]
                    .iter()
                    .map(|u| schedule.cycle[u.index()])
                    .max()
                    .unwrap_or(born);
                born <= boundary && last_use > boundary
            })
            .count();
        registers = registers.max(alive);
    }
    let idle_slots: BTreeMap<String, usize> = functional_units
        .iter()
        .map(|(class, &units)| {
            let used = op_counts.get(class).copied().unwrap_or(0);
            (class.clone(), units * latency as usize - used)
        })
        .collect();
    Allocation {
        functional_units,
        registers,
        idle_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::Op;

    /// Four parallel multiplies feeding an add tree.
    fn workload() -> Dfg {
        let mut dfg = Dfg::new("w");
        let ins: Vec<_> = (0..8).map(|i| dfg.input(format!("i{i}"), false)).collect();
        let m: Vec<_> = (0..4)
            .map(|k| dfg.node(Op::Mul, &[ins[2 * k], ins[2 * k + 1]]))
            .collect();
        let a1 = dfg.node(Op::Add, &[m[0], m[1]]);
        let a2 = dfg.node(Op::Add, &[m[2], m[3]]);
        let s = dfg.node(Op::Add, &[a1, a2]);
        dfg.output("y", s);
        dfg
    }

    #[test]
    fn asap_respects_dependencies() {
        let dfg = workload();
        let s = asap(&dfg);
        for (i, n) in dfg.nodes().iter().enumerate() {
            for a in &n.args {
                assert!(s.cycle[i] > s.cycle[a.index()]);
            }
        }
        assert_eq!(s.latency(), 5); // in(0) mul(1) add(2) add(3) out(4)
    }

    #[test]
    fn alap_meets_deadline_and_dependencies() {
        let dfg = workload();
        let s = alap(&dfg, 6);
        assert!(s.latency() <= 6);
        for (i, n) in dfg.nodes().iter().enumerate() {
            for a in &n.args {
                assert!(s.cycle[i] > s.cycle[a.index()]);
            }
        }
    }

    #[test]
    fn resource_limits_stretch_latency() {
        let dfg = workload();
        let unlimited = list_schedule(&dfg, &BTreeMap::new());
        let mut limits = BTreeMap::new();
        limits.insert("multiplier".to_string(), 1usize);
        let constrained = list_schedule(&dfg, &limits);
        assert!(constrained.latency() > unlimited.latency());
        // at most one multiply per cycle
        for c in 0..constrained.latency() {
            let muls = constrained
                .nodes_in_cycle(c)
                .iter()
                .filter(|n| matches!(dfg.nodes()[n.index()].op, Op::Mul))
                .count();
            assert!(muls <= 1);
        }
    }

    #[test]
    fn allocation_counts_units_and_registers() {
        let dfg = workload();
        let s = asap(&dfg);
        let alloc = allocate(&dfg, &s);
        assert_eq!(alloc.functional_units["multiplier"], 4);
        assert!(alloc.registers >= 2);
        let mut limits = BTreeMap::new();
        limits.insert("multiplier".to_string(), 1usize);
        let constrained = list_schedule(&dfg, &limits);
        let alloc2 = allocate(&dfg, &constrained);
        assert_eq!(alloc2.functional_units["multiplier"], 1);
    }

    #[test]
    fn idle_slots_accounted() {
        let dfg = workload();
        let s = asap(&dfg);
        let alloc = allocate(&dfg, &s);
        // 4 multipliers over latency 5 = 20 slots, 4 used -> 16 idle
        assert_eq!(alloc.idle_slots["multiplier"], 16);
    }
}
