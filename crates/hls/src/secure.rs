//! Security-driven HLS transforms (Table II, HLS row).

use crate::dfg::{Dfg, NodeId, Op};
use crate::schedule::{allocate, Schedule};
use std::collections::BTreeMap;

/// A register-flushing plan for sensitive values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushPlan {
    /// `(node, flush_cycle)`: the register holding `node`'s value is
    /// overwritten in `flush_cycle` (one past its last use).
    pub flushes: Vec<(NodeId, u32)>,
    /// Sensitive residence cycles *without* flushing (values linger in
    /// registers until the end of the schedule).
    pub residence_without: u64,
    /// Sensitive residence cycles *with* flushing.
    pub residence_with: u64,
}

/// Nodes carrying secret-derived values (simple forward taint).
pub fn sensitive_nodes(dfg: &Dfg) -> Vec<bool> {
    let mut sensitive = vec![false; dfg.len()];
    for (i, n) in dfg.nodes().iter().enumerate() {
        sensitive[i] = match &n.op {
            Op::Input { secret, .. } => *secret,
            _ => n.args.iter().any(|a| sensitive[a.index()]),
        };
    }
    sensitive
}

/// Computes the register-flushing countermeasure: every sensitive value
/// is scheduled for overwrite one cycle after its last use, and the plan
/// quantifies the reduction in sensitive register residence (the window
/// a probing or cold-boot style adversary can read).
pub fn flush_plan(dfg: &Dfg, schedule: &Schedule) -> FlushPlan {
    let sensitive = sensitive_nodes(dfg);
    let users = dfg.users();
    let end = schedule.latency();
    let mut flushes = Vec::new();
    let mut without = 0u64;
    let mut with = 0u64;
    for i in 0..dfg.len() {
        if !sensitive[i] || matches!(dfg.nodes()[i].op, Op::Output(_)) {
            continue;
        }
        let born = schedule.cycle[i];
        let last_use = users[i]
            .iter()
            .map(|u| schedule.cycle[u.index()])
            .max()
            .unwrap_or(born);
        let flush_cycle = last_use + 1;
        flushes.push((NodeId(i as u32), flush_cycle));
        without += (end.max(born) - born) as u64;
        with += (flush_cycle - born) as u64;
    }
    FlushPlan {
        flushes,
        residence_without: without,
        residence_with: with,
    }
}

/// Masking-aware list scheduling: nodes carry a *share group* label
/// (`share_group[node] = Some(secret_id)`), and no two nodes of the same
/// group may execute in the same cycle — the HLS-level embodiment of
/// "never process all shares jointly" (paper Sec. II-B).
///
/// # Panics
///
/// Panics if `share_group` has the wrong length.
pub fn share_aware_schedule(
    dfg: &Dfg,
    limits: &BTreeMap<String, usize>,
    share_group: &[Option<u32>],
) -> Schedule {
    assert_eq!(share_group.len(), dfg.len(), "share label width");
    let mut cycle = vec![0u32; dfg.len()];
    let mut fu_usage: BTreeMap<(String, u32), usize> = BTreeMap::new();
    let mut group_usage: BTreeMap<(u32, u32), bool> = BTreeMap::new();
    for (i, n) in dfg.nodes().iter().enumerate() {
        let ready = n
            .args
            .iter()
            .map(|a| cycle[a.index()] + 1)
            .max()
            .unwrap_or(0);
        let mut c = ready;
        loop {
            let fu_ok = match n.op.fu_class() {
                Some(class) => match limits.get(class) {
                    Some(&limit) => {
                        fu_usage.get(&(class.to_string(), c)).copied().unwrap_or(0) < limit
                    }
                    None => true,
                },
                None => true,
            };
            let share_ok = match share_group[i] {
                Some(g) => !group_usage.get(&(g, c)).copied().unwrap_or(false),
                None => true,
            };
            if fu_ok && share_ok {
                break;
            }
            c += 1;
        }
        if let Some(class) = n.op.fu_class() {
            if limits.contains_key(class) {
                *fu_usage.entry((class.to_string(), c)).or_insert(0) += 1;
            }
        }
        if let Some(g) = share_group[i] {
            group_usage.insert((g, c), true);
        }
        cycle[i] = c;
    }
    Schedule { cycle }
}

/// A DFG augmented with PUF-based metering \[19\].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeteredDfg {
    /// The augmented graph: outputs are gated on an activation check.
    pub dfg: Dfg,
    /// The chip-specific activation code the designer must supply
    /// (derived from the PUF response input `puf_response`).
    pub activation_code: u16,
}

/// Adds active metering: the design reads a `puf_response` input,
/// compares it against an obfuscated expected value, and ANDs a
/// pass/fail mask into every output. An unactivated chip (wrong PUF
/// response / missing code) produces garbage — the foundry cannot sell
/// working over-produced parts.
pub fn add_metering(dfg: &Dfg, expected_response: u16) -> MeteredDfg {
    // Rebuild the graph: copy everything except the Output nodes, then
    // append the activation check and re-emit outputs gated on it.
    let mut metered = Dfg::new(format!("{}_metered", dfg.name()));
    let mut map: Vec<Option<NodeId>> = vec![None; dfg.len()];
    let mut pending_outputs: Vec<(String, NodeId)> = Vec::new();
    for (i, n) in dfg.nodes().iter().enumerate() {
        match &n.op {
            Op::Output(name) => {
                let value = map[n.args[0].index()].expect("topological");
                pending_outputs.push((name.clone(), value));
            }
            op => {
                let args: Vec<NodeId> = n
                    .args
                    .iter()
                    .map(|a| map[a.index()].expect("topological"))
                    .collect();
                map[i] = Some(metered.node(op.clone(), &args));
            }
        }
    }
    let puf = metered.input("puf_response", false);
    let expect = metered.node(Op::Const(expected_response), &[]);
    // diff == 0 iff the chip supplied the right activation code; every
    // output is XORed with it, so a wrong code corrupts all outputs
    // while the right one is functionally transparent.
    let diff = metered.node(Op::Xor, &[puf, expect]);
    for (name, value) in pending_outputs {
        let gated = metered.node(Op::Xor, &[value, diff]);
        metered.output(name, gated);
    }
    MeteredDfg {
        dfg: metered,
        activation_code: expected_response,
    }
}

/// Result of BISA-style self-authentication fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfAuthDfg {
    /// The filled graph, with an extra `auth_sig` output.
    pub dfg: Dfg,
    /// Number of authentication ops inserted (= idle slots filled).
    pub fill_ops: usize,
    /// The signature value `auth_sig` must produce on a genuine chip.
    pub expected_signature: u16,
}

/// BISA-style self-authentication \[20\]: fills the idle FU slots of a
/// schedule with a chain of checkable authentication ops producing a
/// known signature. A Trojan inserted into the former "dead space" now
/// displaces logic whose absence is detectable by a signature mismatch.
pub fn self_authentication_fill(dfg: &Dfg, schedule: &Schedule) -> SelfAuthDfg {
    let alloc = allocate(dfg, schedule);
    let idle: usize = alloc.idle_slots.values().sum();
    let mut filled = dfg.clone();
    let mut chain = filled.node(Op::Const(0x5EC1), &[]);
    let mut expected: u16 = 0x5EC1;
    for k in 0..idle {
        let c = (0x9E37u16).wrapping_mul(k as u16 + 1) ^ 0x0BAD;
        let cnode = filled.node(Op::Const(c), &[]);
        chain = filled.node(Op::Xor, &[chain, cnode]);
        expected ^= c;
    }
    filled.output("auth_sig", chain);
    SelfAuthDfg {
        dfg: filled,
        fill_ops: idle,
        expected_signature: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::asap;

    fn crypto_like() -> Dfg {
        let mut dfg = Dfg::new("c");
        let key = dfg.input("key", true);
        let pt = dfg.input("pt", false);
        let x = dfg.node(Op::Xor, &[key, pt]);
        let y = dfg.node(Op::Mul, &[x, x]);
        dfg.output("ct", y);
        dfg
    }

    #[test]
    fn sensitivity_propagates() {
        let dfg = crypto_like();
        let s = sensitive_nodes(&dfg);
        assert!(s[0], "key is secret");
        assert!(!s[1], "pt is public");
        assert!(s[2] && s[3], "derived values are sensitive");
    }

    #[test]
    fn flushing_shrinks_residence() {
        let dfg = crypto_like();
        let schedule = asap(&dfg);
        let plan = flush_plan(&dfg, &schedule);
        assert!(!plan.flushes.is_empty());
        assert!(
            plan.residence_with < plan.residence_without,
            "flushing must shorten sensitive windows: {} vs {}",
            plan.residence_with,
            plan.residence_without
        );
    }

    #[test]
    fn share_aware_scheduling_separates_shares() {
        // three "shares" that could all run in cycle 1
        let mut dfg = Dfg::new("sh");
        let a = dfg.input("a", false);
        let b = dfg.input("b", false);
        let s0 = dfg.node(Op::Xor, &[a, b]);
        let s1 = dfg.node(Op::Xor, &[a, b]);
        let s2 = dfg.node(Op::Xor, &[a, b]);
        dfg.output("o0", s0);
        dfg.output("o1", s1);
        dfg.output("o2", s2);
        let mut groups = vec![None; dfg.len()];
        groups[s0.index()] = Some(7);
        groups[s1.index()] = Some(7);
        groups[s2.index()] = Some(7);
        let plain = asap(&dfg);
        assert_eq!(plain.cycle[s0.index()], plain.cycle[s1.index()]);
        let aware = share_aware_schedule(&dfg, &BTreeMap::new(), &groups);
        let cycles = [
            aware.cycle[s0.index()],
            aware.cycle[s1.index()],
            aware.cycle[s2.index()],
        ];
        assert_ne!(cycles[0], cycles[1]);
        assert_ne!(cycles[1], cycles[2]);
        assert_ne!(cycles[0], cycles[2]);
        // dependencies still hold
        for (i, n) in dfg.nodes().iter().enumerate() {
            for arg in &n.args {
                assert!(aware.cycle[i] > aware.cycle[arg.index()]);
            }
        }
    }

    #[test]
    fn self_authentication_signature_checks_out() {
        let dfg = crypto_like();
        let schedule = asap(&dfg);
        let auth = self_authentication_fill(&dfg, &schedule);
        let outs = auth
            .dfg
            .run(&[("key".to_string(), 1u16), ("pt".to_string(), 2)], 0);
        let sig = outs
            .iter()
            .find(|(n, _)| n == "auth_sig")
            .expect("signature output")
            .1;
        assert_eq!(sig, auth.expected_signature);
        // tampering with the fill (modelled as one missing op) breaks it
        assert_ne!(sig ^ 0x9E37, auth.expected_signature);
    }

    #[test]
    fn metering_gates_functionality() {
        let dfg = crypto_like();
        let metered = add_metering(&dfg, 0xA5A5);
        let inputs_ok = vec![
            ("key".to_string(), 0x1234u16),
            ("pt".to_string(), 0x0F0F),
            ("puf_response".to_string(), 0xA5A5),
        ];
        let inputs_bad = vec![
            ("key".to_string(), 0x1234u16),
            ("pt".to_string(), 0x0F0F),
            ("puf_response".to_string(), 0x0000),
        ];
        let golden = dfg.run(&inputs_ok[..2].to_vec(), 0);
        let activated = metered.dfg.run(&inputs_ok, 0);
        let unactivated = metered.dfg.run(&inputs_bad, 0);
        assert_eq!(golden[0].1, activated[0].1, "activation restores function");
        assert_ne!(golden[0].1, unactivated[0].1, "unactivated chips misbehave");
    }
}
