//! # seceda-hls
//!
//! A small high-level-synthesis substrate (dataflow graph, scheduling,
//! binding) plus the HLS-stage security schemes of Table II:
//!
//! * [`dfg`] — the dataflow-graph IR with an executable semantics (the
//!   QIF analysis needs to *run* programs);
//! * [`schedule`] — ASAP / ALAP / resource-constrained list scheduling
//!   and functional-unit / register allocation;
//! * [`secure`] — register flushing after last use of sensitive values,
//!   masking-aware scheduling (shares of one secret never co-scheduled
//!   on one cycle), PUF-based metering allocation \[19\], and BISA-style
//!   self-authentication fill of idle schedule slots \[20\];
//! * [`ift`] — information-flow (taint) tracking \[14\] with one-time-pad
//!   declassification, and a quantitative information-flow estimator
//!   (mutual information between secret inputs and outputs) in the
//!   spirit of QIF-Verilog \[47\].

pub mod dfg;
pub mod ift;
pub mod schedule;
pub mod secure;

pub use dfg::{Dfg, NodeId, Op};
pub use ift::{estimate_leakage_bits, taint_analysis, TaintReport};
pub use schedule::{alap, asap, list_schedule, Allocation, Schedule};
pub use secure::{
    add_metering, flush_plan, self_authentication_fill, sensitive_nodes, share_aware_schedule,
    FlushPlan, MeteredDfg, SelfAuthDfg,
};
