//! Dataflow-graph IR with executable semantics.

use std::fmt;

/// Identifier of a DFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Operations of the dataflow graph. All values are `u16` words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// External input; `secret` marks confidential data (keys, PIN).
    Input {
        /// Port name.
        name: String,
        /// Confidentiality label.
        secret: bool,
    },
    /// Fresh uniform randomness (one value per execution).
    Random,
    /// Compile-time constant.
    Const(u16),
    /// Wrapping addition.
    Add,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise XOR.
    Xor,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise NOT.
    Not,
    /// Observable output.
    Output(String),
}

impl Op {
    /// Expected argument count (`usize::MAX` = checked elsewhere).
    pub fn arity(&self) -> usize {
        match self {
            Op::Input { .. } | Op::Random | Op::Const(_) => 0,
            Op::Not | Op::Output(_) => 1,
            _ => 2,
        }
    }

    /// The functional-unit class executing this op (None = free).
    pub fn fu_class(&self) -> Option<&'static str> {
        match self {
            Op::Add => Some("adder"),
            Op::Mul => Some("multiplier"),
            Op::Xor | Op::And | Op::Or | Op::Not => Some("logic"),
            _ => None,
        }
    }
}

/// A node: an operation plus its argument nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Argument nodes, in order.
    pub args: Vec<NodeId>,
}

/// A dataflow graph. Nodes are added in topological order (arguments
/// must exist before use), which the builder enforces.
///
/// # Example
///
/// ```
/// use seceda_hls::{Dfg, Op};
///
/// let mut dfg = Dfg::new("mac");
/// let a = dfg.input("a", false);
/// let b = dfg.input("b", false);
/// let p = dfg.node(Op::Mul, &[a, b]);
/// dfg.output("y", p);
/// assert_eq!(dfg.run(&[(String::from("a"), 3), (String::from("b"), 7)], 0)[0].1, 21);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfg {
    name: String,
    nodes: Vec<Node>,
}

impl Dfg {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Dfg {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a node.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch or dangling arguments.
    pub fn node(&mut self, op: Op, args: &[NodeId]) -> NodeId {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op:?}");
        for a in args {
            assert!(a.index() < self.nodes.len(), "argument {a} out of range");
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op,
            args: args.to_vec(),
        });
        id
    }

    /// Convenience: adds an input.
    pub fn input(&mut self, name: impl Into<String>, secret: bool) -> NodeId {
        self.node(
            Op::Input {
                name: name.into(),
                secret,
            },
            &[],
        )
    }

    /// Convenience: adds an output of `value`.
    pub fn output(&mut self, name: impl Into<String>, value: NodeId) -> NodeId {
        self.node(Op::Output(name.into()), &[value])
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all output nodes, in creation order.
    pub fn outputs(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| matches!(self.nodes[i].op, Op::Output(_)))
            .map(|i| NodeId(i as u32))
            .collect()
    }

    /// Per-node consumer lists.
    pub fn users(&self) -> Vec<Vec<NodeId>> {
        let mut users = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for a in &n.args {
                users[a.index()].push(NodeId(i as u32));
            }
        }
        users
    }

    /// Number of `Random` nodes in the graph.
    pub fn num_randoms(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Random))
            .count()
    }

    /// Executes the graph with explicit randomness: `randoms[k]` is the
    /// value of the k-th `Random` node (in creation order).
    ///
    /// # Panics
    ///
    /// Panics if an input port is missing or `randoms` is too short.
    pub fn run_with_randoms(
        &self,
        inputs: &[(String, u16)],
        randoms: &[u16],
    ) -> Vec<(String, u16)> {
        let mut cursor = 0usize;
        let mut next_random = move |supplied: &[u16]| -> u16 {
            let v = supplied[cursor];
            cursor += 1;
            v
        };
        let mut values = vec![0u16; self.nodes.len()];
        let mut outputs = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let arg = |k: usize| values[n.args[k].index()];
            values[i] = match &n.op {
                Op::Input { name, .. } => {
                    inputs
                        .iter()
                        .find(|(p, _)| p == name)
                        .unwrap_or_else(|| panic!("missing input `{name}`"))
                        .1
                }
                Op::Random => next_random(randoms),
                Op::Const(c) => *c,
                Op::Add => arg(0).wrapping_add(arg(1)),
                Op::Mul => arg(0).wrapping_mul(arg(1)),
                Op::Xor => arg(0) ^ arg(1),
                Op::And => arg(0) & arg(1),
                Op::Or => arg(0) | arg(1),
                Op::Not => !arg(0),
                Op::Output(name) => {
                    let v = arg(0);
                    outputs.push((name.clone(), v));
                    v
                }
            };
        }
        outputs
    }

    /// Executes the graph: `inputs` maps port names to values,
    /// `random_seed` drives the `Random` nodes deterministically.
    /// Returns `(output name, value)` pairs in output order.
    ///
    /// # Panics
    ///
    /// Panics if an input port is missing.
    pub fn run(&self, inputs: &[(String, u16)], random_seed: u64) -> Vec<(String, u16)> {
        let mut state = random_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next_random = move || -> u16 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u16
        };
        let mut values = vec![0u16; self.nodes.len()];
        let mut outputs = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let arg = |k: usize| values[n.args[k].index()];
            values[i] = match &n.op {
                Op::Input { name, .. } => {
                    inputs
                        .iter()
                        .find(|(p, _)| p == name)
                        .unwrap_or_else(|| panic!("missing input `{name}`"))
                        .1
                }
                Op::Random => next_random(),
                Op::Const(c) => *c,
                Op::Add => arg(0).wrapping_add(arg(1)),
                Op::Mul => arg(0).wrapping_mul(arg(1)),
                Op::Xor => arg(0) ^ arg(1),
                Op::And => arg(0) & arg(1),
                Op::Or => arg(0) | arg(1),
                Op::Not => !arg(0),
                Op::Output(name) => {
                    let v = arg(0);
                    outputs.push((name.clone(), v));
                    v
                }
            };
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> Dfg {
        let mut dfg = Dfg::new("mac");
        let a = dfg.input("a", false);
        let b = dfg.input("b", false);
        let c = dfg.input("c", false);
        let p = dfg.node(Op::Mul, &[a, b]);
        let s = dfg.node(Op::Add, &[p, c]);
        dfg.output("y", s);
        dfg
    }

    #[test]
    fn executes_arithmetic() {
        let dfg = mac();
        let out = dfg.run(&[("a".into(), 3), ("b".into(), 7), ("c".into(), 100)], 0);
        assert_eq!(out, vec![("y".into(), 121)]);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let mut dfg = Dfg::new("r");
        let r = dfg.node(Op::Random, &[]);
        dfg.output("y", r);
        let a = dfg.run(&[], 42);
        let b = dfg.run(&[], 42);
        let c = dfg.run(&[], 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn users_and_outputs() {
        let dfg = mac();
        let users = dfg.users();
        // input a is used once (by the Mul)
        assert_eq!(users[0].len(), 1);
        assert_eq!(dfg.outputs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_enforced() {
        let mut dfg = Dfg::new("x");
        let a = dfg.input("a", false);
        dfg.node(Op::Add, &[a]);
    }

    #[test]
    #[should_panic(expected = "missing input")]
    fn missing_input_detected() {
        let dfg = mac();
        dfg.run(&[("a".into(), 1)], 0);
    }
}
