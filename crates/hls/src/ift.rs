//! Information-flow tracking and quantitative leakage estimation.
//!
//! Two complementary analyses on the DFG:
//!
//! * **Taint tracking** \[14\]: secret labels propagate forward through
//!   operations; XOR with *fresh* (single-use) randomness declassifies —
//!   the one-time-pad rule. The report lists tainted outputs, the
//!   validation artifact a security-centric HLS flow gates on.
//! * **Quantitative information flow** \[47\], \[48\]: an empirical estimate
//!   of the mutual information `I(secret; outputs)` in bits, obtained by
//!   executing the graph over the secret space with sampled randomness.

use crate::dfg::{Dfg, Op};
use std::collections::HashMap;

/// Result of taint analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintReport {
    /// Taint per node.
    pub tainted: Vec<bool>,
    /// Names of tainted outputs (must be empty for a design to pass
    /// security sign-off).
    pub tainted_outputs: Vec<String>,
}

impl TaintReport {
    /// `true` when no secret reaches any output untransformed.
    pub fn passes(&self) -> bool {
        self.tainted_outputs.is_empty()
    }
}

/// Runs forward taint analysis with one-time-pad declassification:
/// `Xor(tainted, r)` is clean when `r` is a `Random` node consumed by
/// exactly this operation.
pub fn taint_analysis(dfg: &Dfg) -> TaintReport {
    let users = dfg.users();
    let mut tainted = vec![false; dfg.len()];
    for (i, n) in dfg.nodes().iter().enumerate() {
        tainted[i] = match &n.op {
            Op::Input { secret, .. } => *secret,
            Op::Random | Op::Const(_) => false,
            Op::Xor => {
                let a = n.args[0];
                let b = n.args[1];
                let fresh_otp = |r: crate::dfg::NodeId| {
                    matches!(dfg.nodes()[r.index()].op, Op::Random) && users[r.index()].len() == 1
                };
                let ta = tainted[a.index()];
                let tb = tainted[b.index()];
                match (ta, tb) {
                    (true, false) if fresh_otp(b) => false,
                    (false, true) if fresh_otp(a) => false,
                    _ => ta || tb,
                }
            }
            _ => n.args.iter().any(|a| tainted[a.index()]),
        };
    }
    let tainted_outputs = dfg
        .nodes()
        .iter()
        .enumerate()
        .filter_map(|(i, n)| match &n.op {
            Op::Output(name) if tainted[i] => Some(name.clone()),
            _ => None,
        })
        .collect();
    TaintReport {
        tainted,
        tainted_outputs,
    }
}

/// Computes the *exact* mutual information between the secret inputs
/// (enumerated over `secret_bits` low bits, other inputs zero) and the
/// concatenated outputs, marginalizing every `Random` node over
/// `random_bits`-wide uniform values. Returns bits of leakage.
///
/// # Panics
///
/// Panics if the enumeration exceeds 2^20 executions or the graph has no
/// secret input.
pub fn estimate_leakage_bits(dfg: &Dfg, secret_bits: u32, random_bits: u32) -> f64 {
    let num_random_nodes = dfg.num_randoms() as u32;
    let total_bits = secret_bits + num_random_nodes * random_bits;
    assert!(
        total_bits <= 20,
        "enumeration too large ({total_bits} bits)"
    );
    let secret_names: Vec<String> = dfg
        .nodes()
        .iter()
        .filter_map(|n| match &n.op {
            Op::Input { name, secret: true } => Some(name.clone()),
            _ => None,
        })
        .collect();
    assert!(!secret_names.is_empty(), "no secret input to analyze");
    let public_names: Vec<String> = dfg
        .nodes()
        .iter()
        .filter_map(|n| match &n.op {
            Op::Input {
                name,
                secret: false,
            } => Some(name.clone()),
            _ => None,
        })
        .collect();

    let num_secrets = 1u32 << secret_bits;
    let random_space = 1u64 << (num_random_nodes * random_bits);
    // exact joint distribution p(s, o) with uniform s and uniform randoms
    let mut joint: HashMap<(u32, Vec<u16>), f64> = HashMap::new();
    let mut marginal_o: HashMap<Vec<u16>, f64> = HashMap::new();
    let p_s = 1.0 / num_secrets as f64;
    for s in 0..num_secrets {
        for r in 0..random_space {
            let randoms: Vec<u16> = (0..num_random_nodes)
                .map(|k| ((r >> (k * random_bits)) & ((1 << random_bits) - 1)) as u16)
                .collect();
            let mut inputs: Vec<(String, u16)> = Vec::new();
            for name in &secret_names {
                inputs.push((name.clone(), s as u16));
            }
            for name in &public_names {
                inputs.push((name.clone(), 0));
            }
            let outs: Vec<u16> = dfg
                .run_with_randoms(&inputs, &randoms)
                .into_iter()
                .map(|(_, v)| v)
                .collect();
            let w = p_s / random_space as f64;
            *joint.entry((s, outs.clone())).or_insert(0.0) += w;
            *marginal_o.entry(outs).or_insert(0.0) += w;
        }
    }
    // I(S;O) = sum p(s,o) log2( p(s,o) / (p(s) p(o)) )
    let mut mi = 0.0;
    for ((_, o), &pso) in &joint {
        let po = marginal_o[o];
        mi += pso * (pso / (p_s * po)).log2();
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_output_of_secret_is_tainted_and_leaks_fully() {
        let mut dfg = Dfg::new("leaky");
        let k = dfg.input("key", true);
        dfg.output("y", k);
        let report = taint_analysis(&dfg);
        assert!(!report.passes());
        assert_eq!(report.tainted_outputs, vec!["y".to_string()]);
        let bits = estimate_leakage_bits(&dfg, 4, 0);
        assert!((bits - 4.0).abs() < 1e-9, "full 4-bit leak, got {bits}");
    }

    #[test]
    fn one_time_pad_declassifies_and_leaks_nothing() {
        let mut dfg = Dfg::new("otp");
        let k = dfg.input("key", true);
        let r = dfg.node(Op::Random, &[]);
        let c = dfg.node(Op::Xor, &[k, r]);
        dfg.output("ct", c);
        let report = taint_analysis(&dfg);
        assert!(report.passes(), "{:?}", report.tainted_outputs);
        // NOTE: the pad is 4 bits wide too, so the XOR result's low 4
        // bits are perfectly masked; the upper 12 bits are zero either
        // way. Exact MI must be 0.
        let bits = estimate_leakage_bits(&dfg, 4, 4);
        assert!(bits < 1e-9, "pad must hide the secret, got {bits}");
    }

    #[test]
    fn reused_pad_is_not_declassified() {
        // r used twice: xor(k0, r) and xor(k1, r) — classic two-time pad
        let mut dfg = Dfg::new("ttp");
        let k0 = dfg.input("k0", true);
        let k1 = dfg.input("k1", true);
        let r = dfg.node(Op::Random, &[]);
        let c0 = dfg.node(Op::Xor, &[k0, r]);
        let c1 = dfg.node(Op::Xor, &[k1, r]);
        dfg.output("c0", c0);
        dfg.output("c1", c1);
        let report = taint_analysis(&dfg);
        assert!(!report.passes(), "two-time pad must stay tainted");
    }

    #[test]
    fn partial_leak_measured_between_zero_and_full() {
        // output = secret & 0b0011 : exactly 2 of 4 bits leak
        let mut dfg = Dfg::new("partial");
        let k = dfg.input("key", true);
        let m = dfg.node(Op::Const(0b0011), &[]);
        let v = dfg.node(Op::And, &[k, m]);
        dfg.output("y", v);
        let bits = estimate_leakage_bits(&dfg, 4, 0);
        assert!((bits - 2.0).abs() < 1e-9, "expected 2 bits, got {bits}");
    }

    #[test]
    fn arithmetic_keeps_taint() {
        let mut dfg = Dfg::new("ar");
        let k = dfg.input("key", true);
        let p = dfg.input("pt", false);
        let s = dfg.node(Op::Add, &[k, p]);
        dfg.output("y", s);
        assert!(!taint_analysis(&dfg).passes());
    }
}
