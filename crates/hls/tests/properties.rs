//! Property-based tests for HLS scheduling and IFT.

use seceda_hls::{alap, asap, list_schedule, taint_analysis, Dfg, Op};
use seceda_testkit::prelude::*;
use std::collections::BTreeMap;

/// Builds a random layered DFG from a spec of (op_selector, arg_a, arg_b).
fn build_dfg(spec: &[(u8, usize, usize)]) -> Dfg {
    let mut dfg = Dfg::new("p");
    let mut nodes = vec![
        dfg.input("k", true),
        dfg.input("x", false),
        dfg.input("y", false),
    ];
    for &(op_sel, a, b) in spec {
        let a = nodes[a % nodes.len()];
        let b = nodes[b % nodes.len()];
        let n = match op_sel % 5 {
            0 => dfg.node(Op::Add, &[a, b]),
            1 => dfg.node(Op::Mul, &[a, b]),
            2 => dfg.node(Op::Xor, &[a, b]),
            3 => dfg.node(Op::And, &[a, b]),
            _ => dfg.node(Op::Not, &[a]),
        };
        nodes.push(n);
    }
    let last = *nodes.last().expect("non-empty");
    dfg.output("out", last);
    dfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedules_respect_dependencies(
        spec in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..25),
    ) {
        let dfg = build_dfg(&spec);
        let a = asap(&dfg);
        for (i, n) in dfg.nodes().iter().enumerate() {
            for arg in &n.args {
                prop_assert!(a.cycle[i] > a.cycle[arg.index()]);
            }
        }
        let l = alap(&dfg, a.latency() + 3);
        prop_assert!(l.latency() <= a.latency() + 3);
        for (i, n) in dfg.nodes().iter().enumerate() {
            for arg in &n.args {
                prop_assert!(l.cycle[i] > l.cycle[arg.index()]);
            }
        }
        // asap is a lower bound on any legal schedule
        for i in 0..dfg.len() {
            prop_assert!(a.cycle[i] <= l.cycle[i]);
        }
    }

    #[test]
    fn resource_limits_are_never_violated(
        spec in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..25),
        mul_limit in 1usize..3,
    ) {
        let dfg = build_dfg(&spec);
        let mut limits = BTreeMap::new();
        limits.insert("multiplier".to_string(), mul_limit);
        let s = list_schedule(&dfg, &limits);
        for c in 0..s.latency() {
            let muls = s
                .nodes_in_cycle(c)
                .iter()
                .filter(|n| matches!(dfg.nodes()[n.index()].op, Op::Mul))
                .count();
            prop_assert!(muls <= mul_limit);
        }
    }

    #[test]
    fn taint_is_monotone_along_dataflow(
        spec in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..25),
    ) {
        // without Random nodes there is no declassification, so taint can
        // only grow along edges
        let dfg = build_dfg(&spec);
        let report = taint_analysis(&dfg);
        for n in dfg.nodes() {
            let out_tainted = {
                let idx = dfg
                    .nodes()
                    .iter()
                    .position(|m| std::ptr::eq(m, n))
                    .expect("self");
                report.tainted[idx]
            };
            for arg in &n.args {
                if report.tainted[arg.index()] {
                    prop_assert!(out_tainted, "taint must propagate");
                }
            }
        }
    }
}
