//! Property-based tests for the verification crate.

use seceda_netlist::{random_circuit, RandomCircuitConfig};
use seceda_synth::{map_to_nand, optimize, SynthesisMode};
use seceda_testkit::prelude::*;
use seceda_verif::{check_equivalence, fingerprint, EquivResult};

fn host(seed: u64, gates: usize) -> seceda_netlist::Netlist {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 5,
        num_gates: gates,
        num_outputs: 3,
        with_xor: true,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn synthesis_results_verify_equivalent(seed in 0u64..4000, gates in 3usize..30) {
        let nl = host(seed, gates);
        let optimized = optimize(&nl, SynthesisMode::Classical);
        prop_assert_eq!(
            check_equivalence(&nl, &optimized).expect("check"),
            EquivResult::Equivalent
        );
        let mapped = map_to_nand(&nl);
        prop_assert_eq!(
            check_equivalence(&nl, &mapped).expect("check"),
            EquivResult::Equivalent
        );
    }

    #[test]
    fn counterexamples_are_genuine(seed in 0u64..4000, gates in 3usize..25) {
        // corrupt one gate kind and demand either equivalence (the gate
        // was redundant) or a real distinguishing witness
        let nl = host(seed, gates);
        let mut corrupted = nl.clone();
        let gid = seceda_netlist::GateId::from_index(0);
        let kind = corrupted.gate(gid).kind;
        use seceda_netlist::CellKind;
        let flipped = match kind {
            CellKind::And => CellKind::Nand,
            CellKind::Nand => CellKind::And,
            CellKind::Or => CellKind::Nor,
            CellKind::Nor => CellKind::Or,
            CellKind::Xor => CellKind::Xnor,
            CellKind::Xnor => CellKind::Xor,
            CellKind::Not => CellKind::Buf,
            CellKind::Buf => CellKind::Not,
            k => k,
        };
        corrupted.gate_mut(gid).kind = flipped;
        match check_equivalence(&nl, &corrupted).expect("check") {
            EquivResult::Equivalent => {
                prop_assert_eq!(corrupted.truth_table(), nl.truth_table());
            }
            EquivResult::Counterexample(inputs) => {
                prop_assert_ne!(nl.evaluate(&inputs), corrupted.evaluate(&inputs));
            }
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive(seed in 0u64..4000, gates in 3usize..25) {
        let nl = host(seed, gates);
        prop_assert_eq!(fingerprint(&nl), fingerprint(&nl.clone()));
        let mut tampered = nl.clone();
        let a = tampered.inputs()[0];
        let _extra = tampered.add_gate(seceda_netlist::CellKind::Not, &[a]);
        prop_assert_ne!(fingerprint(&nl), fingerprint(&tampered));
    }
}
