//! Formal validation of error-detection properties \[32\].
//!
//! For a protected design with an alarm output, prove by SAT — for every
//! single fault in the universe — that no input can make the functional
//! outputs differ while the alarm stays low. This is the "demonstrate
//! the absence of vulnerabilities" mode the paper's red-team/blue-team
//! discussion contrasts with mere simulation.

use seceda_fia::codes::ProtectedNetlist;
use seceda_netlist::{CellKind, GateTags, Netlist, NetlistError};
use seceda_sat::{encode_netlist, Cnf, SatResult, Solver};
use seceda_sim::{fault::stuck_at_universe, Fault, FaultKind};

/// Result of the formal detection proof.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionProof {
    /// Faults proven always-detected-or-masked.
    pub proven: usize,
    /// Faults with a silent-corruption witness: `(fault, inputs)`.
    pub violations: Vec<(Fault, Vec<bool>)>,
    /// Faults analyzed in total.
    pub total: usize,
}

impl DetectionProof {
    /// `true` when the detection property holds for every fault.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

fn inject(nl: &Netlist, fault: Fault) -> Netlist {
    let mut faulty = nl.clone();
    let replacement = match fault.kind {
        FaultKind::StuckAt0 => faulty.add_gate(CellKind::Const0, &[]),
        FaultKind::StuckAt1 => faulty.add_gate(CellKind::Const1, &[]),
        FaultKind::BitFlip => {
            faulty.add_gate_tagged(CellKind::Not, &[fault.net], GateTags::default())
        }
    };
    faulty.replace_net_uses(fault.net, replacement);
    faulty
}

/// Proves (or refutes) single-fault detection for a protected netlist:
/// for each fault over gate-output nets, search for an input where the
/// functional outputs differ but the alarm stays low.
///
/// Only gate-output faults are considered; faults on shared primary
/// inputs are common-mode and outside any detection scheme's contract.
///
/// # Errors
///
/// Propagates encoding errors.
///
/// # Panics
///
/// Panics if the design has no alarm output.
pub fn prove_detection(protected: &ProtectedNetlist) -> Result<DetectionProof, NetlistError> {
    let alarm_index = protected
        .alarm_index
        .expect("detection proof needs an alarm output");
    let nl = &protected.netlist;
    let faults: Vec<Fault> = stuck_at_universe(nl)
        .into_iter()
        .filter(|f| nl.net(f.net).driver.is_some())
        .collect();
    let mut proven = 0usize;
    let mut violations = Vec::new();
    for &fault in &faults {
        let faulty = inject(nl, fault);
        let mut cnf = Cnf::new();
        let good = encode_netlist(nl, &mut cnf)?;
        let bad = encode_netlist(&faulty, &mut cnf)?;
        for (&g, &b) in good.input_vars.iter().zip(&bad.input_vars) {
            cnf.gate_buf(g.pos(), b.pos());
        }
        // some functional output differs
        let mut diffs = Vec::new();
        for (k, (&og, &ob)) in good.output_vars.iter().zip(&bad.output_vars).enumerate() {
            if k == alarm_index {
                continue;
            }
            let d = cnf.new_var().pos();
            cnf.gate_xor(d, og.pos(), ob.pos());
            diffs.push(d);
        }
        let any = cnf.new_var().pos();
        for &d in &diffs {
            cnf.add_clause([any, !d]);
        }
        let mut big = diffs;
        big.push(!any);
        cnf.add_clause(big);
        // and the (faulty design's) alarm stays low
        let alarm = bad.output_vars[alarm_index];
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve_with_assumptions(&[any, alarm.neg()]) {
            SatResult::Unsat => proven += 1,
            SatResult::Sat(model) => {
                let witness = good.input_vars.iter().map(|v| model[v.index()]).collect();
                violations.push((fault, witness));
            }
        }
    }
    Ok(DetectionProof {
        proven,
        violations,
        total: faults.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_fia::codes::duplicate_with_compare;
    use seceda_netlist::majority;
    use seceda_sim::FaultSim;

    #[test]
    fn dwc_detection_is_provable() {
        let p = duplicate_with_compare(&majority());
        let proof = prove_detection(&p).expect("prove");
        assert!(
            proof.holds(),
            "duplication-with-compare must be provably single-fault secure: {:?}",
            proof.violations
        );
        assert_eq!(proof.proven, proof.total);
    }

    #[test]
    fn unprotected_design_with_fake_alarm_fails_with_witness() {
        // alarm output is a constant 0 — every corrupting fault violates
        let mut nl = majority();
        let zero = nl.add_gate(seceda_netlist::CellKind::Const0, &[]);
        nl.mark_output(zero, "alarm");
        let fake = ProtectedNetlist {
            netlist: nl.clone(),
            alarm_index: Some(1),
        };
        let proof = prove_detection(&fake).expect("prove");
        assert!(!proof.holds());
        // each witness must actually demonstrate silent corruption
        let sim = FaultSim::new(&nl).expect("sim");
        for (fault, inputs) in &proof.violations {
            let good = sim.outputs(&sim.eval_with_faults(inputs, &[]));
            let bad = sim.outputs(&sim.eval_with_faults(inputs, &[*fault]));
            assert_ne!(good[0], bad[0], "functional output must differ");
            assert!(!bad[1], "alarm must stay low");
        }
    }
}
