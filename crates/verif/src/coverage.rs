//! Formal validation of error-detection properties \[32\].
//!
//! For a protected design with an alarm output, prove by SAT — for every
//! single fault in the universe — that no input can make the functional
//! outputs differ while the alarm stays low. This is the "demonstrate
//! the absence of vulnerabilities" mode the paper's red-team/blue-team
//! discussion contrasts with mere simulation.
//!
//! The proof loop shares ONE good-circuit encoding and one persistent
//! solver across the whole fault universe: each fault contributes only
//! its selector-gated fan-out cone (see
//! [`encode_faulty_cone`]), activated by assumption and retired after
//! its query. Faults whose cone reaches no functional output are proven
//! detected-or-masked without any solver call at all.

use seceda_fia::codes::ProtectedNetlist;
use seceda_netlist::NetlistError;
use seceda_sat::{
    encode_faulty_cone, encode_netlist, Budget, CnfBuilder, GatedCnf, SolveOutcome, Solver,
};
use seceda_sim::{fault::stuck_at_universe, Fault, FaultKind};

/// Result of the formal detection proof.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionProof {
    /// Faults proven always-detected-or-masked.
    pub proven: usize,
    /// Faults with a silent-corruption witness: `(fault, inputs)`.
    pub violations: Vec<(Fault, Vec<bool>)>,
    /// Faults whose proof query exhausted its budget before deciding
    /// (always empty for [`prove_detection`]). An undecided fault is a
    /// hole in the proof, so [`DetectionProof::holds`] is `false` while
    /// any remain.
    pub undecided: Vec<Fault>,
    /// Faults analyzed in total.
    pub total: usize,
}

impl DetectionProof {
    /// `true` when the detection property is *proven* for every fault —
    /// no violation witnesses and no budget-starved undecided queries.
    pub fn holds(&self) -> bool {
        self.violations.is_empty() && self.undecided.is_empty()
    }
}

/// Proves (or refutes) single-fault detection for a protected netlist:
/// for each fault over gate-output nets, search for an input where the
/// functional outputs differ but the alarm stays low.
///
/// Only gate-output faults are considered; faults on shared primary
/// inputs are common-mode and outside any detection scheme's contract.
///
/// # Errors
///
/// Propagates encoding errors.
///
/// # Panics
///
/// Panics if the design has no alarm output.
pub fn prove_detection(protected: &ProtectedNetlist) -> Result<DetectionProof, NetlistError> {
    prove_detection_budgeted(protected, &Budget::unlimited())
}

/// Budgeted [`prove_detection`]: the conflict cap meters the whole proof
/// loop (each per-fault query gets whatever the previous queries left),
/// the deadline bounds its wall clock. A query whose budget runs out
/// degrades *that fault* to [`DetectionProof::undecided`] — the loop
/// keeps going, so one pathological fault cannot wedge the whole proof,
/// but the final proof honestly reports its holes via
/// [`DetectionProof::holds`].
///
/// # Errors
///
/// Propagates encoding errors.
///
/// # Panics
///
/// Panics if the design has no alarm output.
pub fn prove_detection_budgeted(
    protected: &ProtectedNetlist,
    budget: &Budget,
) -> Result<DetectionProof, NetlistError> {
    let alarm_index = protected
        .alarm_index
        .expect("detection proof needs an alarm output");
    let nl = &protected.netlist;
    let faults: Vec<Fault> = stuck_at_universe(nl)
        .into_iter()
        .filter(|f| nl.net(f.net).driver.is_some())
        .collect();
    let mut solver = Solver::new(0);
    let good = encode_netlist(nl, &mut solver)?;
    let f0 = solver.new_var();
    solver.add_clause([f0.neg()]);
    let mut proven = 0usize;
    let mut violations = Vec::new();
    let mut undecided = Vec::new();
    for &fault in &faults {
        let faulty_source = match fault.kind {
            FaultKind::StuckAt0 => f0.pos(),
            FaultKind::StuckAt1 => f0.neg(),
            FaultKind::BitFlip => good.vars[fault.net.index()].neg(),
        };
        let sel = solver.new_var();
        let guard = sel.neg();
        let cone = encode_faulty_cone(nl, &good, fault.net, faulty_source, guard, &mut solver)?;
        let func: Vec<_> = cone
            .iter()
            .copied()
            .filter(|&(k, _)| k != alarm_index)
            .collect();
        if func.is_empty() {
            // the fault cannot reach any functional output, so silent
            // corruption is structurally impossible
            solver.add_clause([guard]);
            proven += 1;
            continue;
        }
        // the faulty design's alarm: its cone literal if the fault can
        // reach the alarm, the shared good literal otherwise
        let alarm_lit = cone
            .iter()
            .find(|&&(k, _)| k == alarm_index)
            .map(|&(_, l)| l)
            .unwrap_or_else(|| good.output_vars[alarm_index].pos());
        // some functional output differs
        let mut gated = GatedCnf::new(&mut solver, guard);
        let mut diffs = Vec::new();
        for &(k, flit) in &func {
            let d = gated.new_var().pos();
            let good_out = good.output_vars[k].pos();
            gated.gate_xor(d, good_out, flit);
            diffs.push(d);
        }
        gated.add_clause(diffs);
        // ... while the alarm stays low; the remaining budget is
        // whatever earlier queries did not spend
        let sub = budget.minus(solver.num_conflicts, solver.num_propagations);
        match solver.solve_budgeted(&[sel.pos(), !alarm_lit], &sub) {
            SolveOutcome::Unsat => proven += 1,
            SolveOutcome::Sat(model) => {
                let witness = good.input_vars.iter().map(|v| model[v.index()]).collect();
                violations.push((fault, witness));
            }
            SolveOutcome::Indeterminate(_) => undecided.push(fault),
        }
        solver.add_clause([guard]);
    }
    if !undecided.is_empty() {
        seceda_trace::counter("verif.undecided_faults", undecided.len() as u64);
    }
    Ok(DetectionProof {
        proven,
        violations,
        undecided,
        total: faults.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_fia::codes::duplicate_with_compare;
    use seceda_netlist::majority;
    use seceda_sim::FaultSim;

    #[test]
    fn dwc_detection_is_provable() {
        let p = duplicate_with_compare(&majority());
        let proof = prove_detection(&p).expect("prove");
        assert!(
            proof.holds(),
            "duplication-with-compare must be provably single-fault secure: {:?}",
            proof.violations
        );
        assert_eq!(proof.proven, proof.total);
    }

    #[test]
    fn starved_proof_reports_undecided_holes_instead_of_wedging() {
        let p = duplicate_with_compare(&majority());
        let starved = Budget::unlimited().with_max_propagations(0);
        let proof = prove_detection_budgeted(&p, &starved).expect("prove");
        assert!(
            !proof.undecided.is_empty(),
            "a zero-propagation budget must leave queries undecided"
        );
        assert!(!proof.holds(), "undecided faults are holes in the proof");
        assert!(proof.violations.is_empty(), "no false violations");
        // structurally-proven faults need no solver call and still count
        assert_eq!(
            proof.proven + proof.undecided.len(),
            proof.total,
            "every fault is either proven structurally or undecided"
        );
        // the same proof with an unlimited budget has no holes
        let full = prove_detection_budgeted(&p, &Budget::unlimited()).expect("prove");
        assert!(full.holds());
        assert!(full.undecided.is_empty());
    }

    #[test]
    fn unprotected_design_with_fake_alarm_fails_with_witness() {
        // alarm output is a constant 0 — every corrupting fault violates
        let mut nl = majority();
        let zero = nl.add_gate(seceda_netlist::CellKind::Const0, &[]);
        nl.mark_output(zero, "alarm");
        let fake = ProtectedNetlist {
            netlist: nl.clone(),
            alarm_index: Some(1),
        };
        let proof = prove_detection(&fake).expect("prove");
        assert!(!proof.holds());
        // each witness must actually demonstrate silent corruption
        let sim = FaultSim::new(&nl).expect("sim");
        for (fault, inputs) in &proof.violations {
            let good = sim.outputs(&sim.eval_with_faults(inputs, &[]));
            let bad = sim.outputs(&sim.eval_with_faults(inputs, &[*fault]));
            assert_ne!(good[0], bad[0], "functional output must differ");
            assert!(!bad[1], "alarm must stay low");
        }
    }
}
