//! Bounded model checking by time-frame unrolling.

use seceda_netlist::{Netlist, NetlistError};
use seceda_sat::{encode_netlist, Cnf, CnfBuilder, SatResult, Solver};

/// Result of a reachability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BmcResult {
    /// A witness: input vector per cycle driving the monitored output to
    /// the target value in the last listed cycle.
    Reachable(Vec<Vec<bool>>),
    /// Not reachable within the bound.
    UnreachableWithin(usize),
}

impl BmcResult {
    /// `true` if a witness was found.
    pub fn is_reachable(&self) -> bool {
        matches!(self, BmcResult::Reachable(_))
    }
}

/// Checks whether output `output_index` can take `target_value` within
/// `bound` cycles from the all-zero initial state.
///
/// Frames are encoded separately; frame `i+1`'s register outputs are
/// tied to frame `i`'s register inputs.
///
/// # Errors
///
/// Returns a netlist error on cyclic combinational logic.
///
/// # Panics
///
/// Panics if `output_index` is out of range or `bound == 0`.
pub fn bmc_reach(
    nl: &Netlist,
    output_index: usize,
    target_value: bool,
    bound: usize,
) -> Result<BmcResult, NetlistError> {
    assert!(output_index < nl.outputs().len(), "output out of range");
    assert!(bound > 0, "bound must be positive");
    let dffs = nl.dffs();
    for depth in 1..=bound {
        let mut cnf = Cnf::new();
        let frames: Vec<_> = (0..depth)
            .map(|_| encode_netlist(nl, &mut cnf))
            .collect::<Result<_, _>>()?;
        // initial state: all registers zero
        for &d in &dffs {
            let q = frames[0].vars[nl.gate(d).output.index()];
            cnf.add_clause([q.neg()]);
        }
        // chain the frames
        for f in 1..depth {
            for &d in &dffs {
                let q_next = frames[f].vars[nl.gate(d).output.index()];
                let d_prev = frames[f - 1].vars[nl.gate(d).inputs[0].index()];
                cnf.gate_buf(q_next.pos(), d_prev.pos());
            }
        }
        // target: monitored output takes the value in the last frame
        let (net, _) = nl.outputs()[output_index].clone();
        let out_var = frames[depth - 1].vars[net.index()];
        let mut solver = Solver::from_cnf(&cnf);
        if let SatResult::Sat(model) = solver.solve_with_assumptions(&[out_var.lit(target_value)]) {
            let witness = frames
                .iter()
                .map(|fr| {
                    fr.input_vars
                        .iter()
                        .map(|v| model[v.index()])
                        .collect::<Vec<bool>>()
                })
                .collect();
            return Ok(BmcResult::Reachable(witness));
        }
    }
    Ok(BmcResult::UnreachableWithin(bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::CellKind;

    /// A 2-bit saturating counter that raises `alarm` when it reaches 3;
    /// it only counts when `en` is high.
    fn counter_with_alarm() -> Netlist {
        let mut nl = Netlist::new("cnt_alarm");
        let en = nl.add_input("en");
        let q0_fb = nl.add_net();
        let q1_fb = nl.add_net();
        // next0 = en ? !q0 : q0 ; next1 = en & q0 ? !q1 : q1
        let nq0 = nl.add_gate(CellKind::Not, &[q0_fb]);
        let next0 = nl.add_gate(CellKind::Mux, &[en, q0_fb, nq0]);
        let carry = nl.add_gate(CellKind::And, &[en, q0_fb]);
        let nq1 = nl.add_gate(CellKind::Not, &[q1_fb]);
        let next1 = nl.add_gate(CellKind::Mux, &[carry, q1_fb, nq1]);
        let q0 = nl.add_gate(CellKind::Dff, &[next0]);
        let q1 = nl.add_gate(CellKind::Dff, &[next1]);
        // patch feedback
        for (fb, q) in [(q0_fb, q0), (q1_fb, q1)] {
            nl.replace_net_uses(fb, q);
        }
        let alarm = nl.add_gate(CellKind::And, &[q0, q1]);
        nl.mark_output(alarm, "alarm");
        nl
    }

    #[test]
    fn alarm_reachable_in_exactly_four_cycles() {
        let nl = counter_with_alarm();
        // counter reads 3 after three increments; the alarm output shows
        // it in the following frame’s combinational logic, i.e. frame 4
        let result = bmc_reach(&nl, 0, true, 6).expect("bmc");
        match &result {
            BmcResult::Reachable(witness) => {
                assert_eq!(witness.len(), 4, "witness: {witness:?}");
                // replay the witness on the simulator
                let mut state = vec![false; 2];
                let mut alarm_seen = false;
                for inputs in witness {
                    let (outs, next) = nl.step(inputs, &state).expect("step");
                    alarm_seen = outs[0];
                    state = next;
                }
                assert!(alarm_seen, "replay must confirm the witness");
            }
            other => panic!("expected reachable, got {other:?}"),
        }
    }

    #[test]
    fn alarm_unreachable_in_three_cycles() {
        let nl = counter_with_alarm();
        let result = bmc_reach(&nl, 0, true, 3).expect("bmc");
        assert_eq!(result, BmcResult::UnreachableWithin(3));
    }

    #[test]
    fn zero_is_immediately_reachable() {
        let nl = counter_with_alarm();
        let result = bmc_reach(&nl, 0, false, 1).expect("bmc");
        assert!(result.is_reachable());
    }
}
