//! # seceda-verif
//!
//! Functional validation with security duties — the validation row of
//! Table II.
//!
//! * [`equiv`] — SAT-based combinational equivalence checking: the
//!   correctness side of locking/camouflaging ("does the unlocked design
//!   still compute the right function?");
//! * [`bmc`] — bounded model checking of sequential netlists by
//!   time-frame unrolling: reachability of covert/alarm conditions
//!   (the architectural-vulnerability analysis of \[31\], scaled to our
//!   substrate);
//! * [`coverage`] — *formal* validation of error-detection properties
//!   \[32\]: prove by SAT that no single fault can corrupt functional
//!   outputs without raising the alarm;
//! * [`pch`] — proof-carrying hardware \[34\]: an IP vendor ships a
//!   design with a certificate (structural isolation or equivalence
//!   evidence) that the integrator re-checks mechanically before
//!   trusting the module.

pub mod bmc;
pub mod coverage;
pub mod equiv;
pub mod pch;

pub use bmc::{bmc_reach, BmcResult};
pub use coverage::{prove_detection, prove_detection_budgeted, DetectionProof};
pub use equiv::{check_equivalence, EquivResult};
pub use pch::{check_certificate, fingerprint, isolation_certificate, Certificate, Property};
