//! Proof-carrying hardware \[34\].
//!
//! An IP vendor ships a module together with a *certificate*; the
//! integrator runs a mechanical, cheap check before trusting it. Two
//! certificate kinds are supported:
//!
//! * **Structural isolation** — "no path from input X to output Y". The
//!   evidence is the cut: a set of nets such that every X→Y path crosses
//!   it and none of its nets is used. Checkable in linear time; this is
//!   how "the debug port cannot observe the key register" style claims
//!   travel with an IP block.
//! * **Functional equivalence** — "this netlist computes the same
//!   function as the reference". The evidence is the reference netlist;
//!   the checker re-runs the SAT equivalence proof (trusted-checker
//!   model).

use crate::equiv::{check_equivalence, EquivResult};
use seceda_netlist::{NetId, Netlist, NetlistError};

/// A property claimed about a module.
#[derive(Debug, Clone, PartialEq)]
pub enum Property {
    /// No structural path from the named input to the named output.
    Isolated {
        /// Source port name.
        from_input: String,
        /// Sink port name.
        to_output: String,
    },
    /// Equivalent to a reference implementation.
    EquivalentTo(Box<Netlist>),
}

/// A certificate accompanying a module.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// The property claimed.
    pub property: Property,
    /// Fingerprint of the netlist the certificate was issued for (the
    /// checker rejects certificates applied to a different design).
    pub design_fingerprint: u64,
}

/// A cheap structural fingerprint (FNV over the gate list).
pub fn fingerprint(nl: &Netlist) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    mix(nl.inputs().len() as u64);
    mix(nl.outputs().len() as u64);
    for g in nl.gates() {
        mix(g.kind as u64 + 1);
        for &i in &g.inputs {
            mix(i.index() as u64 + 0x1000);
        }
        mix(g.output.index() as u64 + 0x2000);
    }
    h
}

/// Issues an isolation certificate, *if the property actually holds*.
/// Returns `None` when a path exists (the vendor cannot certify a lie).
pub fn isolation_certificate(
    nl: &Netlist,
    from_input: &str,
    to_output: &str,
) -> Option<Certificate> {
    if path_exists(nl, from_input, to_output)? {
        return None;
    }
    Some(Certificate {
        property: Property::Isolated {
            from_input: from_input.to_string(),
            to_output: to_output.to_string(),
        },
        design_fingerprint: fingerprint(nl),
    })
}

/// Returns whether a structural path exists from the named input to the
/// named output. `None` if either port is unknown.
fn path_exists(nl: &Netlist, from_input: &str, to_output: &str) -> Option<bool> {
    let src: NetId = *nl
        .inputs()
        .iter()
        .find(|&&n| nl.net_name(n) == Some(from_input))?;
    let (dst, _) = nl
        .outputs()
        .iter()
        .find(|(_, name)| name == to_output)?
        .clone();
    // forward reachability over fanout
    let fanout = nl.fanout_map();
    let mut seen = vec![false; nl.num_nets()];
    let mut stack = vec![src];
    while let Some(n) = stack.pop() {
        if n == dst {
            return Some(true);
        }
        if seen[n.index()] {
            continue;
        }
        seen[n.index()] = true;
        for &g in &fanout[n.index()] {
            stack.push(nl.gate(g).output);
        }
    }
    Some(dst == src)
}

/// The integrator's check: validates a certificate against the received
/// netlist. Returns `true` only if the fingerprint matches *and* the
/// property re-verifies.
///
/// # Errors
///
/// Propagates encoding errors for equivalence certificates.
pub fn check_certificate(nl: &Netlist, cert: &Certificate) -> Result<bool, NetlistError> {
    if fingerprint(nl) != cert.design_fingerprint {
        return Ok(false);
    }
    match &cert.property {
        Property::Isolated {
            from_input,
            to_output,
        } => Ok(matches!(
            path_exists(nl, from_input, to_output),
            Some(false)
        )),
        Property::EquivalentTo(reference) => {
            Ok(check_equivalence(nl, reference)? == EquivResult::Equivalent)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::CellKind;

    /// Two independent cones: (a,b) -> x and (c) -> y.
    fn split_design() -> Netlist {
        let mut nl = Netlist::new("iso");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x = nl.add_gate(CellKind::And, &[a, b]);
        let y = nl.add_gate(CellKind::Not, &[c]);
        nl.mark_output(x, "x");
        nl.mark_output(y, "y");
        nl
    }

    #[test]
    fn honest_isolation_certificate_checks_out() {
        let nl = split_design();
        let cert = isolation_certificate(&nl, "a", "y").expect("a does not reach y");
        assert!(check_certificate(&nl, &cert).expect("check"));
    }

    #[test]
    fn vendor_cannot_certify_a_lie() {
        let nl = split_design();
        assert!(isolation_certificate(&nl, "a", "x").is_none());
        assert!(isolation_certificate(&nl, "c", "y").is_none());
    }

    #[test]
    fn certificate_bound_to_the_design() {
        let nl = split_design();
        let cert = isolation_certificate(&nl, "a", "y").expect("cert");
        // a tampered design (Trojan wire from a's cone into y's cone)
        let mut tampered = nl.clone();
        let a = tampered.inputs()[0];
        let y_net = tampered.outputs()[1].0;
        let leak = tampered.add_gate(CellKind::Or, &[y_net, a]);
        tampered.replace_net_uses(y_net, leak);
        let gid = tampered.net(leak).driver.expect("driver");
        // keep the OR reading the original net (replace_net_uses moved it)
        tampered.gate_mut(gid).inputs[0] = y_net;
        assert!(
            !check_certificate(&tampered, &cert).expect("check"),
            "fingerprint mismatch must reject"
        );
    }

    #[test]
    fn forged_certificate_for_tampered_design_fails_property_check() {
        let nl = split_design();
        let mut tampered = nl.clone();
        let a = tampered.inputs()[0];
        let y_net = tampered.outputs()[1].0;
        let leak = tampered.add_gate(CellKind::Or, &[y_net, a]);
        tampered.replace_net_uses(y_net, leak);
        let gid = tampered.net(leak).driver.expect("driver");
        tampered.gate_mut(gid).inputs[0] = y_net;
        // the attacker forges a certificate with the *tampered* hash
        let forged = Certificate {
            property: Property::Isolated {
                from_input: "a".into(),
                to_output: "y".into(),
            },
            design_fingerprint: fingerprint(&tampered),
        };
        assert!(
            !check_certificate(&tampered, &forged).expect("check"),
            "property re-verification must catch the leak path"
        );
    }

    #[test]
    fn equivalence_certificate_roundtrip() {
        let nl = split_design();
        let cert = Certificate {
            property: Property::EquivalentTo(Box::new(nl.clone())),
            design_fingerprint: fingerprint(&nl),
        };
        assert!(check_certificate(&nl, &cert).expect("check"));
    }
}
