//! SAT-based combinational equivalence checking.

use seceda_netlist::{Netlist, NetlistError};
use seceda_sat::{miter, Cnf, SatResult, Solver};

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// The circuits agree on every input.
    Equivalent,
    /// A distinguishing input assignment (in port order of circuit `a`).
    Counterexample(Vec<bool>),
}

impl EquivResult {
    /// `true` when equivalent.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

/// Checks combinational equivalence of two netlists with matching
/// interfaces.
///
/// # Errors
///
/// Returns a netlist error if either circuit is cyclic.
///
/// # Panics
///
/// Panics if the interfaces do not match (see [`miter`]).
pub fn check_equivalence(a: &Netlist, b: &Netlist) -> Result<EquivResult, NetlistError> {
    let mut cnf = Cnf::new();
    let (enc_a, _, diff) = miter(a, b, &mut cnf)?;
    let mut solver = Solver::from_cnf(&cnf);
    Ok(match solver.solve_with_assumptions(&[diff]) {
        SatResult::Unsat => EquivResult::Equivalent,
        SatResult::Sat(model) => {
            EquivResult::Counterexample(enc_a.input_vars.iter().map(|v| model[v.index()]).collect())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{c17, parse_netlist, CellKind};

    #[test]
    fn identical_circuits_are_equivalent() {
        let nl = c17();
        assert!(check_equivalence(&nl, &nl.clone())
            .expect("check")
            .is_equivalent());
    }

    #[test]
    fn roundtripped_circuit_stays_equivalent() {
        let nl = c17();
        let back = parse_netlist(&seceda_netlist::format_netlist(&nl)).expect("parse");
        assert!(check_equivalence(&nl, &back)
            .expect("check")
            .is_equivalent());
    }

    #[test]
    fn counterexample_is_a_real_witness() {
        let mut a = Netlist::new("and");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let o = a.add_gate(CellKind::And, &[x, y]);
        a.mark_output(o, "o");

        let mut b = Netlist::new("nand");
        let x2 = b.add_input("x");
        let y2 = b.add_input("y");
        let o2 = b.add_gate(CellKind::Nand, &[x2, y2]);
        b.mark_output(o2, "o");

        match check_equivalence(&a, &b).expect("check") {
            EquivResult::Counterexample(inputs) => {
                assert_ne!(a.evaluate(&inputs), b.evaluate(&inputs));
            }
            EquivResult::Equivalent => panic!("AND != NAND"),
        }
    }
}
