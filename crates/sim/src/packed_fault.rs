//! Bit-parallel fault simulation with fault dropping and cone
//! restriction — the industrial recipe that makes stuck-at grading,
//! ATPG bootstrap, and MERO-style N-detect tractable on real circuits.
//!
//! Three compounding optimizations over the scalar reference
//! ([`crate::FaultSim::coverage_scalar`]):
//!
//! * **64 patterns per pass** — the good circuit is simulated once per
//!   64-pattern word ([`PackedSim`]), and each faulty circuit once per
//!   word; detection of all 64 patterns is a single masked XOR of
//!   output words.
//! * **Fault dropping** — a fault leaves the active list the moment any
//!   pattern detects it; later patterns never touch it again.
//! * **Cone restriction** — the faulty circuit re-evaluates only the
//!   fan-out cone of the faulted net, event-driven in topological
//!   order, and stops early when the fault effect converges with the
//!   good value or reaches a primary output.
//!
//! The active fault list fans out across cores with
//! [`seceda_testkit::par`]; every fault is graded independently, so the
//! result is bit-identical for any worker count.
//!
//! Detection results are **exactly** those of the scalar reference:
//! per fault, *detected iff some pattern makes a primary output
//! differ* — including the scalar path's quirk that a fault on a net
//! no assignment ever touches (a DFF output pseudo-input) has no
//! effect.

use crate::fault::{Fault, FaultKind};
use crate::packed::{eval_gate, pack_patterns, PackedSim};
use seceda_netlist::{GateId, Netlist, NetlistError};
use seceda_testkit::par;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The packed, dropping, cone-restricted fault-grading engine.
#[derive(Debug, Clone)]
pub struct PackedFaultSim<'a> {
    sim: PackedSim<'a>,
    nl: &'a Netlist,
    /// Per gate: position in the combinational topological order;
    /// `u32::MAX` for sequential gates (cones stop at state elements).
    level: Vec<u32>,
    /// Per net: combinational gates reading it.
    fanout: Vec<Vec<GateId>>,
    /// Per net: is it marked as a primary output?
    is_output: Vec<bool>,
    /// Per net: does a fault injected here take effect? True for primary
    /// inputs and combinational gate outputs — exactly the nets the
    /// scalar simulator assigns (and therefore faults) during a pass.
    fault_applies: Vec<bool>,
    num_comb_gates: u64,
}

/// Per-worker scratch: reused across every fault a worker grades, so
/// the per-fault cost is proportional to the fault's cone, not to the
/// netlist size.
struct Scratch {
    /// Faulty packed values; equal to the good values outside the set
    /// of touched nets, restored after every fault.
    vals: Vec<u64>,
    /// Net indices whose `vals` entry differs from the good values.
    touched: Vec<u32>,
    /// Per gate: epoch stamp deduplicating heap pushes.
    queued: Vec<u32>,
    epoch: u32,
    /// Min-heap of (topo level, gate index): pending cone gates.
    heap: BinaryHeap<Reverse<(u32, u32)>>,
}

impl Scratch {
    fn new(good: &[u64], num_gates: usize) -> Self {
        Scratch {
            vals: good.to_vec(),
            touched: Vec::new(),
            queued: vec![0; num_gates],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }
}

/// The packed word a fault forces onto its net, given the good word.
fn forced_word(kind: FaultKind, good: u64) -> u64 {
    match kind {
        FaultKind::StuckAt0 => 0,
        FaultKind::StuckAt1 => u64::MAX,
        FaultKind::BitFlip => !good,
    }
}

/// Detection mask for a batch of `n` patterns packed into one word.
fn batch_mask(n: usize) -> u64 {
    debug_assert!((1..=64).contains(&n));
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

impl<'a> PackedFaultSim<'a> {
    /// Builds the engine for a netlist (combinational logic graded;
    /// DFF outputs are constant-zero pseudo-inputs, as everywhere else).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] on cyclic logic.
    pub fn new(nl: &'a Netlist) -> Result<Self, NetlistError> {
        let sim = PackedSim::new(nl)?;
        let mut level = vec![u32::MAX; nl.num_gates()];
        for (pos, &gid) in sim.order().iter().enumerate() {
            level[gid.index()] = pos as u32;
        }
        let mut fanout = vec![Vec::new(); nl.num_nets()];
        for (gi, g) in nl.gates().iter().enumerate() {
            if g.kind.is_sequential() {
                continue;
            }
            for &inp in &g.inputs {
                let loads = &mut fanout[inp.index()];
                // a gate reading the same net twice is one cone entry
                if loads.last() != Some(&GateId::from_index(gi)) {
                    loads.push(GateId::from_index(gi));
                }
            }
        }
        let mut is_output = vec![false; nl.num_nets()];
        for &(net, _) in nl.outputs() {
            is_output[net.index()] = true;
        }
        let mut fault_applies = vec![false; nl.num_nets()];
        for &pi in nl.inputs() {
            fault_applies[pi.index()] = true;
        }
        for g in nl.gates() {
            if !g.kind.is_sequential() {
                fault_applies[g.output.index()] = true;
            }
        }
        let num_comb_gates = sim.order().len() as u64;
        Ok(PackedFaultSim {
            sim,
            nl,
            level,
            fanout,
            is_output,
            fault_applies,
            num_comb_gates,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        self.nl
    }

    fn push_cone_gate(&self, sc: &mut Scratch, gid: GateId) {
        let gi = gid.index();
        let lvl = self.level[gi];
        if lvl == u32::MAX || sc.queued[gi] == sc.epoch {
            return;
        }
        sc.queued[gi] = sc.epoch;
        sc.heap.push(Reverse((lvl, gi as u32)));
    }

    /// Simulates one fault against one packed batch; returns whether
    /// any of the `mask`ed patterns detects it, plus the number of
    /// combinational gates the cone restriction skipped.
    ///
    /// `sc.vals` must equal `good` on entry and is restored on exit.
    fn grade_one(&self, sc: &mut Scratch, good: &[u64], fault: Fault, mask: u64) -> (bool, u64) {
        let ni = fault.net.index();
        if !self.fault_applies[ni] {
            // the scalar pass never assigns (and so never faults) this net
            return (false, self.num_comb_gates);
        }
        // force only the bits carrying real patterns, so phantom
        // differences in unused bit lanes cannot propagate
        let forced = (good[ni] & !mask) | (forced_word(fault.kind, good[ni]) & mask);
        if forced == good[ni] {
            // no pattern excites the fault: the faulty circuit is the
            // good circuit, nothing to re-evaluate
            return (false, self.num_comb_gates);
        }
        sc.epoch = sc.epoch.wrapping_add(1);
        if sc.epoch == 0 {
            // stamp wrap: invalidate all stale stamps once per 2^32 faults
            sc.queued.fill(0);
            sc.epoch = 1;
        }
        let mut detected = self.is_output[ni];
        let mut evaluated = 0u64;
        sc.vals[ni] = forced;
        sc.touched.push(ni as u32);
        if !detected {
            for &load in &self.fanout[ni] {
                self.push_cone_gate(sc, load);
            }
            while let Some(Reverse((_, gi))) = sc.heap.pop() {
                evaluated += 1;
                let g = self.nl.gate(GateId::from_index(gi as usize));
                let oi = g.output.index();
                let new = eval_gate(g, &sc.vals);
                if new == sc.vals[oi] {
                    continue; // fault effect converged at this gate
                }
                sc.vals[oi] = new;
                sc.touched.push(oi as u32);
                if self.is_output[oi] {
                    detected = true; // drop: no need to finish the cone
                    break;
                }
                for &load in &self.fanout[oi] {
                    self.push_cone_gate(sc, load);
                }
            }
            sc.heap.clear();
        }
        for &t in &sc.touched {
            sc.vals[t as usize] = good[t as usize];
        }
        sc.touched.clear();
        (detected, self.num_comb_gates - evaluated)
    }

    /// Grades `patterns` against `faults`, updating `detected` in
    /// place: faults already marked detected are skipped (dropped), and
    /// each still-active fault is marked as soon as any pattern detects
    /// it. This is the incremental entry point ATPG uses as SAT
    /// patterns arrive.
    ///
    /// The final `detected` vector is bit-identical to the scalar
    /// reference grading all `patterns` against all `faults`.
    ///
    /// # Panics
    ///
    /// Panics if `detected` and `faults` differ in length or on pattern
    /// width mismatch.
    pub fn grade(&self, patterns: &[Vec<bool>], faults: &[Fault], detected: &mut [bool]) {
        assert_eq!(faults.len(), detected.len(), "detected/fault mismatch");
        let num_inputs = self.nl.inputs().len();
        let mut dropped = 0u64;
        let mut cone_skipped = 0u64;
        let mut graded = 0u64;
        for batch in patterns.chunks(64) {
            // one histogram sample per 64-pattern batch; batch cost
            // shrinks as fault dropping thins the active set
            let _batch_t = seceda_trace::hist_timer("sim.fault_batch_ns");
            graded += batch.len() as u64;
            seceda_trace::progress("sim.patterns_graded", graded);
            let active: Vec<u32> = (0..faults.len() as u32)
                .filter(|&k| !detected[k as usize])
                .collect();
            if active.is_empty() {
                break;
            }
            let words = pack_patterns(batch, num_inputs);
            let good = self.sim.eval(&words);
            let mask = batch_mask(batch.len());
            seceda_trace::gauge("sim.par_workers", par::workers_for(active.len()) as f64);
            let results = par::par_map_init(
                &active,
                || Scratch::new(&good, self.nl.num_gates()),
                |sc, _, &k| self.grade_one(sc, &good, faults[k as usize], mask),
            );
            for (&k, &(det, skipped)) in active.iter().zip(&results) {
                cone_skipped += skipped;
                if det {
                    detected[k as usize] = true;
                    dropped += 1;
                }
            }
        }
        seceda_trace::counter("sim.faults_dropped", dropped);
        seceda_trace::counter("sim.cone_gates_skipped", cone_skipped);
    }

    /// Grades a pattern set against a fault list; returns, per fault,
    /// whether any pattern detects it, plus the overall coverage
    /// fraction. Drop-in packed replacement for the scalar
    /// [`crate::FaultSim::coverage_scalar`].
    ///
    /// # Panics
    ///
    /// Panics on pattern width mismatch.
    pub fn coverage(&self, patterns: &[Vec<bool>], faults: &[Fault]) -> (Vec<bool>, f64) {
        let mut sp = seceda_trace::span("sim.fault_coverage");
        sp.attr("patterns", patterns.len());
        sp.attr("faults", faults.len());
        sp.attr("engine", "packed");
        let mut detected = vec![false; faults.len()];
        self.grade(patterns, faults, &mut detected);
        let num_detected = detected.iter().filter(|&&d| d).count();
        let frac = if faults.is_empty() {
            1.0
        } else {
            num_detected as f64 / faults.len() as f64
        };
        seceda_trace::counter("sim.patterns_simulated", patterns.len() as u64);
        seceda_trace::counter("sim.faults_detected", num_detected as u64);
        sp.attr("coverage", frac);
        (detected, frac)
    }

    /// Returns `true` if `pattern` detects `fault`, reusing
    /// already-computed good packed values for that pattern (see
    /// [`PackedFaultSim::good_values`]).
    pub fn detects_given_good(&self, good: &[u64], fault: Fault) -> bool {
        let mut sc = Scratch::new(good, self.nl.num_gates());
        self.grade_one(&mut sc, good, fault, batch_mask(1)).0
    }

    /// Packed per-net good values of a single scalar pattern (bit 0
    /// carries the pattern; the other 63 lanes replicate pattern 0's
    /// zero-extension).
    ///
    /// # Panics
    ///
    /// Panics on input width mismatch.
    pub fn good_values(&self, pattern: &[bool]) -> Vec<u64> {
        let words = pack_patterns(
            std::slice::from_ref(&pattern.to_vec()),
            self.nl.inputs().len(),
        );
        self.sim.eval(&words)
    }

    /// Evaluates 64 patterns of the *faulty* circuit and returns the
    /// packed primary-output words, mirroring the scalar
    /// [`crate::FaultSim::eval_with_faults`] semantics bit for bit:
    /// faults take effect at the moment a net is assigned (primary
    /// inputs and combinational gate outputs; the last fault listed for
    /// a net wins), so BIST signatures over packed batches equal the
    /// scalar per-pattern signatures.
    ///
    /// # Panics
    ///
    /// Panics on input width mismatch.
    pub fn eval_outputs_with_faults(&self, inputs: &[u64], faults: &[Fault]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.nl.inputs().len(), "input width mismatch");
        let mut forced: Vec<Option<FaultKind>> = vec![None; self.nl.num_nets()];
        for f in faults {
            forced[f.net.index()] = Some(f.kind);
        }
        let mut values = vec![0u64; self.nl.num_nets()];
        for (k, &pi) in self.nl.inputs().iter().enumerate() {
            values[pi.index()] = match forced[pi.index()] {
                Some(kind) => forced_word(kind, inputs[k]),
                None => inputs[k],
            };
        }
        for &gid in self.sim.order() {
            let g = self.nl.gate(gid);
            let good = eval_gate(g, &values);
            values[g.output.index()] = match forced[g.output.index()] {
                Some(kind) => forced_word(kind, good),
                None => good,
            };
        }
        self.nl
            .outputs()
            .iter()
            .map(|&(n, _)| values[n.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{stuck_at_universe, FaultSim};
    use seceda_netlist::{c17, CellKind, Netlist};

    #[test]
    fn packed_coverage_matches_scalar_on_c17() {
        let nl = c17();
        let scalar = FaultSim::new(&nl).expect("sim");
        let packed = PackedFaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|b| (p >> b) & 1 == 1).collect())
            .collect();
        assert_eq!(
            packed.coverage(&patterns, &faults),
            scalar.coverage_scalar(&patterns, &faults)
        );
    }

    #[test]
    fn incremental_grading_equals_batch_grading() {
        let nl = c17();
        let packed = PackedFaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|b| (p >> b) & 1 == 1).collect())
            .collect();
        let (batch, _) = packed.coverage(&patterns, &faults);
        let mut incremental = vec![false; faults.len()];
        for p in &patterns {
            packed.grade(std::slice::from_ref(p), &faults, &mut incremental);
        }
        assert_eq!(batch, incremental);
    }

    #[test]
    fn dff_output_faults_have_no_effect_like_scalar() {
        // q feeds an XOR with input a; scalar fault passes never assign q,
        // so a stuck-at-1 there is (quirkily) invisible — packed must agree
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let d = nl.add_net();
        let q = nl.add_gate(CellKind::Dff, &[d]);
        let y = nl.add_gate(CellKind::Xor, &[a, q]);
        nl.mark_output(y, "y");
        let scalar = FaultSim::new(&nl).expect("sim");
        let packed = PackedFaultSim::new(&nl).expect("sim");
        let fault = Fault::stuck_at(q, true);
        let patterns = vec![vec![false], vec![true]];
        assert_eq!(
            packed.coverage(&patterns, &[fault]),
            scalar.coverage_scalar(&patterns, &[fault])
        );
        assert_eq!(packed.coverage(&patterns, &[fault]).0, vec![false]);
    }

    #[test]
    fn partial_batch_mask_hides_unused_lanes() {
        // a single pattern that does NOT detect the fault must stay
        // undetected even though unused lanes would have detected it
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::And, &[a, b]);
        nl.mark_output(y, "y");
        let packed = PackedFaultSim::new(&nl).expect("sim");
        let f = Fault::stuck_at(a, false);
        let (det, _) = packed.coverage(&[vec![true, false]], &[f]);
        assert_eq!(det, vec![false]);
        let (det, _) = packed.coverage(&[vec![true, true]], &[f]);
        assert_eq!(det, vec![true]);
    }

    #[test]
    fn packed_faulty_outputs_match_scalar_eval() {
        let nl = c17();
        let scalar = FaultSim::new(&nl).expect("sim");
        let packed = PackedFaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|b| (p >> b) & 1 == 1).collect())
            .collect();
        let words = pack_patterns(&patterns, 5);
        for &f in faults.iter().take(8) {
            let outs = packed.eval_outputs_with_faults(&words, &[f]);
            for (p, pattern) in patterns.iter().enumerate() {
                let scalar_outs = scalar.outputs(&scalar.eval_with_faults(pattern, &[f]));
                for (o, &w) in outs.iter().enumerate() {
                    assert_eq!((w >> p) & 1 == 1, scalar_outs[o], "fault {f:?} p={p} o={o}");
                }
            }
        }
    }
}
