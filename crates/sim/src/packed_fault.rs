//! Bit-parallel fault simulation with fault dropping and cone
//! restriction — the industrial recipe that makes stuck-at grading,
//! ATPG bootstrap, and MERO-style N-detect tractable on real circuits.
//!
//! Four compounding optimizations over the scalar reference
//! ([`crate::FaultSim::coverage_scalar`]):
//!
//! * **256 patterns per pass** — gates evaluate over [`Lane256`] words
//!   (four `u64` lanes, autovectorized), so the good circuit and each
//!   faulty cone are walked once per 256-pattern chunk; detection of
//!   all 256 patterns is a single masked XOR of output words. The
//!   64-lane `u64` path remains as the differential-testing reference
//!   ([`PackedFaultSim::coverage_u64`]).
//! * **Fault batching** — when a chunk holds 64 or fewer patterns
//!   (ATPG's one-pattern incremental grading, tails of a pattern set),
//!   each 64-bit sub-lane of a wide word carries a *different fault*
//!   over the same patterns, so one cone walk grades up to four faults.
//! * **Fault dropping** — a fault leaves the active list the moment any
//!   pattern detects it; later patterns never touch it again.
//! * **Cone restriction** — the faulty circuit re-evaluates only the
//!   fan-out cone of the faulted net, event-driven in topological
//!   order, and stops early when the fault effect converges with the
//!   good value or every fault in the pass has reached a primary
//!   output.
//!
//! The active fault list fans out across cores with
//! [`seceda_testkit::par`]; every fault is graded independently (fault
//! groups are formed deterministically from the active list), so the
//! result is bit-identical for any worker count.
//!
//! Detection results are **exactly** those of the scalar reference:
//! per fault, *detected iff some pattern makes a primary output
//! differ* — including the scalar path's quirk that a fault on a net
//! no assignment ever touches (a DFF output pseudo-input) has no
//! effect.

use crate::fault::{Fault, FaultKind};
use crate::packed::{
    eval_gate, eval_gate_w, eval_nets_w, pack_patterns, pack_patterns_w, PackedSim,
};
use crate::simword::{Lane256, SimWord};
use seceda_netlist::{Netlist, NetlistError};
use seceda_testkit::par;

/// The packed, dropping, cone-restricted fault-grading engine.
#[derive(Debug, Clone)]
pub struct PackedFaultSim<'a> {
    sim: PackedSim<'a>,
    nl: &'a Netlist,
    /// Combinational gates cloned into topological order, so a cone
    /// walk streams through memory in evaluation order.
    comb: Vec<seceda_netlist::Gate>,
    /// CSR fan-out: `fanout_pos[fanout_start[n]..fanout_start[n+1]]`
    /// are the *topo positions* of the combinational gates reading net
    /// *n* (deduplicated per gate), so a cone push is a single
    /// branch-free bitset write.
    fanout_start: Vec<u32>,
    fanout_pos: Vec<u32>,
    /// Per net: is it marked as a primary output?
    is_output: Vec<bool>,
    /// Per net: does a fault injected here take effect? True for primary
    /// inputs and combinational gate outputs — exactly the nets the
    /// scalar simulator assigns (and therefore faults) during a pass.
    fault_applies: Vec<bool>,
    num_comb_gates: u64,
}

/// Per-worker scratch: reused across every fault a worker grades, so
/// the per-fault cost is proportional to the fault's cone, not to the
/// netlist size.
struct Scratch<W> {
    /// Faulty packed values; equal to the good values outside the set
    /// of touched nets, restored after every pass.
    vals: Vec<W>,
    /// Net indices whose `vals` entry differs from the good values.
    touched: Vec<u32>,
    /// Pending cone gates as a bitset over topo positions. Fan-out
    /// gates sit strictly later in topo order than their driver, so the
    /// cone walk is a monotone wavefront: push = set bit, pop = scan
    /// forward for the lowest set bit — no heap, no dedup stamps.
    /// All-zero between passes.
    pending: Vec<u64>,
    /// Forced sites of the current pass: (net, fault kind, lane mask).
    /// Needed to re-force a site that sits inside another site's cone.
    sites: Vec<(u32, FaultKind, W)>,
}

impl<W: SimWord> Scratch<W> {
    fn new(good: &[W], num_comb_gates: usize) -> Self {
        Scratch {
            vals: good.to_vec(),
            touched: Vec::new(),
            pending: vec![0; num_comb_gates.div_ceil(64)],
            sites: Vec::new(),
        }
    }
}

/// The word a fault forces onto its net, given the good word.
fn apply_fault<W: SimWord>(kind: FaultKind, good: W) -> W {
    match kind {
        FaultKind::StuckAt0 => W::ZERO,
        FaultKind::StuckAt1 => W::ONES,
        FaultKind::BitFlip => !good,
    }
}

/// Detection mask for a batch of `n` patterns packed into one `u64`.
fn batch_mask(n: usize) -> u64 {
    debug_assert!((1..=64).contains(&n));
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

impl<'a> PackedFaultSim<'a> {
    /// Builds the engine for a netlist (combinational logic graded;
    /// DFF outputs are constant-zero pseudo-inputs, as everywhere else).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] on cyclic logic.
    pub fn new(nl: &'a Netlist) -> Result<Self, NetlistError> {
        let sim = PackedSim::new(nl)?;
        let mut level = vec![u32::MAX; nl.num_gates()];
        for (pos, &gid) in sim.order().iter().enumerate() {
            level[gid.index()] = pos as u32;
        }
        // CSR fan-out in two passes (count, fill); a gate reading the
        // same net twice is one cone entry
        let mut last_gate = vec![u32::MAX; nl.num_nets()];
        let mut fanout_start = vec![0u32; nl.num_nets() + 1];
        for (gi, g) in nl.gates().iter().enumerate() {
            if g.kind.is_sequential() {
                continue;
            }
            for &inp in &g.inputs {
                if last_gate[inp.index()] != gi as u32 {
                    last_gate[inp.index()] = gi as u32;
                    fanout_start[inp.index() + 1] += 1;
                }
            }
        }
        for n in 0..nl.num_nets() {
            fanout_start[n + 1] += fanout_start[n];
        }
        let mut cursor = fanout_start.clone();
        let mut fanout_pos = vec![0u32; *fanout_start.last().expect("non-empty starts") as usize];
        last_gate.fill(u32::MAX);
        for (gi, g) in nl.gates().iter().enumerate() {
            if g.kind.is_sequential() {
                continue;
            }
            for &inp in &g.inputs {
                if last_gate[inp.index()] != gi as u32 {
                    last_gate[inp.index()] = gi as u32;
                    fanout_pos[cursor[inp.index()] as usize] = level[gi];
                    cursor[inp.index()] += 1;
                }
            }
        }
        let comb: Vec<seceda_netlist::Gate> = sim
            .order()
            .iter()
            .map(|&gid| nl.gate(gid).clone())
            .collect();
        let mut is_output = vec![false; nl.num_nets()];
        for &(net, _) in nl.outputs() {
            is_output[net.index()] = true;
        }
        let mut fault_applies = vec![false; nl.num_nets()];
        for &pi in nl.inputs() {
            fault_applies[pi.index()] = true;
        }
        for g in nl.gates() {
            if !g.kind.is_sequential() {
                fault_applies[g.output.index()] = true;
            }
        }
        let num_comb_gates = sim.order().len() as u64;
        Ok(PackedFaultSim {
            sim,
            nl,
            comb,
            fanout_start,
            fanout_pos,
            is_output,
            fault_applies,
            num_comb_gates,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        self.nl
    }

    /// Marks every combinational reader of net `ni` pending, returning
    /// the lowest pending-bitset word index it touched (or `usize::MAX`
    /// for no readers).
    #[inline]
    fn push_fanout<W: SimWord>(&self, sc: &mut Scratch<W>, ni: usize) -> usize {
        let lo = self.fanout_start[ni] as usize;
        let hi = self.fanout_start[ni + 1] as usize;
        let mut min_word = usize::MAX;
        for &lvl in &self.fanout_pos[lo..hi] {
            let lvl = lvl as usize;
            sc.pending[lvl >> 6] |= 1u64 << (lvl & 63);
            min_word = min_word.min(lvl >> 6);
        }
        min_word
    }

    /// Simulates one pass of up to `W::LANES` independent faults over
    /// one packed batch. `sites[j]` pairs a fault with the lane mask
    /// whose bits carry its real patterns: in wide mode that is the
    /// full batch mask (one fault, patterns in every lane), in
    /// fault-group mode lane *j* of the word carries fault *j*'s
    /// patterns and each mask selects one lane.
    ///
    /// Sets `detected[j]` iff any masked pattern detects fault *j*, and
    /// returns the number of (fault × combinational gate) evaluations
    /// the cone restriction and batching skipped.
    ///
    /// `sc.vals` must equal `good` on entry and is restored on exit.
    fn grade_group<W: SimWord>(
        &self,
        sc: &mut Scratch<W>,
        good: &[W],
        sites: &[(Fault, W)],
        detected: &mut [bool],
    ) -> u64 {
        debug_assert_eq!(sites.len(), detected.len());
        debug_assert!(sites.len() <= 32, "excitation bitmask is a u32");
        let budget = sites.len() as u64 * self.num_comb_gates;
        sc.sites.clear();
        let mut excited = 0u32;
        let mut remaining = 0usize;
        for (j, &(fault, mask)) in sites.iter().enumerate() {
            let ni = fault.net.index();
            detected[j] = false;
            if !self.fault_applies[ni] {
                // the scalar pass never assigns (and so never faults) this net
                continue;
            }
            // force only the bits carrying this fault's real patterns, so
            // phantom differences in unused bit lanes cannot propagate
            let forced = apply_fault(fault.kind, good[ni]);
            if !((forced ^ good[ni]) & mask).any() {
                // no masked pattern excites the fault: its lanes stay good
                continue;
            }
            excited |= 1 << j;
            if sc.vals[ni] == good[ni] {
                sc.touched.push(ni as u32);
            }
            // masks of a group are disjoint lanes, so same-net sites compose
            sc.vals[ni] = (sc.vals[ni] & !mask) | (forced & mask);
            sc.sites.push((ni as u32, fault.kind, mask));
            if self.is_output[ni] {
                detected[j] = true;
            } else {
                remaining += 1;
            }
        }
        if sc.sites.is_empty() {
            return budget;
        }
        let mut evaluated = 0u64;
        if remaining > 0 {
            let nwords = sc.pending.len();
            let mut w = usize::MAX;
            for s in 0..sc.sites.len() {
                let ni = sc.sites[s].0 as usize;
                w = w.min(self.push_fanout(sc, ni));
            }
            'cone: while w < nwords {
                let bits = sc.pending[w];
                if bits == 0 {
                    w += 1;
                    continue;
                }
                sc.pending[w] = bits & (bits - 1);
                let pos = (w << 6) | bits.trailing_zeros() as usize;
                evaluated += 1;
                let g = &self.comb[pos];
                let oi = g.output.index();
                let mut new = eval_gate_w(g, &sc.vals);
                // a site sitting inside another fault's cone must stay
                // forced in its own lanes; sound because there the
                // recomputed lane value is exactly the good value
                for &(sn, kind, mask) in &sc.sites {
                    if sn as usize == oi {
                        new = (new & !mask) | (apply_fault(kind, new) & mask);
                    }
                }
                if new == sc.vals[oi] {
                    continue; // fault effects converged at this gate
                }
                if sc.vals[oi] == good[oi] {
                    sc.touched.push(oi as u32);
                }
                sc.vals[oi] = new;
                if self.is_output[oi] {
                    let diff = new ^ good[oi];
                    for (j, &(_, mask)) in sites.iter().enumerate() {
                        if excited & (1 << j) != 0 && !detected[j] && (diff & mask).any() {
                            detected[j] = true;
                            remaining -= 1;
                            if remaining == 0 {
                                // drop: every fault detected; the pushes
                                // ahead of the cursor are stale now
                                sc.pending[w..].fill(0);
                                break 'cone;
                            }
                        }
                    }
                }
                self.push_fanout(sc, oi);
            }
        }
        for &t in &sc.touched {
            sc.vals[t as usize] = good[t as usize];
        }
        sc.touched.clear();
        budget - evaluated
    }

    /// Generic grading core: chunks `patterns` by `W::BITS`. Chunks
    /// wider than 64 patterns run in *wide mode* (one fault per pass,
    /// patterns filling every lane); chunks of at most 64 patterns run
    /// in *fault-group mode* (up to `W::LANES` active faults share one
    /// pass, one per 64-bit sub-lane).
    fn grade_chunks<W: SimWord>(
        &self,
        patterns: &[Vec<bool>],
        faults: &[Fault],
        detected: &mut [bool],
    ) {
        assert_eq!(faults.len(), detected.len(), "detected/fault mismatch");
        let num_inputs = self.nl.inputs().len();
        let mut dropped = 0u64;
        let mut cone_skipped = 0u64;
        let mut graded = 0u64;
        seceda_trace::gauge("sim.lane_width", W::BITS as f64);
        for batch in patterns.chunks(W::BITS) {
            // one histogram sample per packed batch; batch cost shrinks
            // as fault dropping thins the active set
            let _batch_t = seceda_trace::hist_timer("sim.fault_batch_ns");
            graded += batch.len() as u64;
            seceda_trace::progress("sim.patterns_graded", graded);
            let active: Vec<u32> = (0..faults.len() as u32)
                .filter(|&k| !detected[k as usize])
                .collect();
            if active.is_empty() {
                break;
            }
            if batch.len() > 64 {
                // wide mode: patterns fill every lane, one fault per pass
                let words = pack_patterns_w::<W>(batch, num_inputs);
                let good = eval_nets_w(self.nl, self.sim.order(), &words);
                let mask = W::low_mask(batch.len());
                seceda_trace::gauge("sim.par_workers", par::workers_for(active.len()) as f64);
                let results = par::par_map_init(
                    &active,
                    || Scratch::new(&good, self.num_comb_gates as usize),
                    |sc, _, &k| {
                        let mut det = [false];
                        let skipped =
                            self.grade_group(sc, &good, &[(faults[k as usize], mask)], &mut det);
                        (det[0], skipped)
                    },
                );
                for (&k, &(det, skipped)) in active.iter().zip(&results) {
                    cone_skipped += skipped;
                    if det {
                        detected[k as usize] = true;
                        dropped += 1;
                    }
                }
            } else {
                // fault-group mode: each 64-bit sub-lane carries a
                // different active fault over the same patterns
                let words = pack_patterns(batch, num_inputs);
                let good64 = self.sim.eval(&words);
                let good: Vec<W> = good64.iter().map(|&g| W::broadcast(g)).collect();
                let m64 = batch_mask(batch.len());
                let groups: Vec<&[u32]> = active.chunks(W::LANES).collect();
                seceda_trace::gauge("sim.par_workers", par::workers_for(groups.len()) as f64);
                let results = par::par_map_init(
                    &groups,
                    || Scratch::new(&good, self.num_comb_gates as usize),
                    |sc, _, grp| {
                        let sites: Vec<(Fault, W)> = grp
                            .iter()
                            .enumerate()
                            .map(|(j, &k)| (faults[k as usize], W::ZERO.with_lane(j, m64)))
                            .collect();
                        let mut det = vec![false; grp.len()];
                        let skipped = self.grade_group(sc, &good, &sites, &mut det);
                        (det, skipped)
                    },
                );
                for (grp, (det, skipped)) in groups.iter().zip(&results) {
                    cone_skipped += skipped;
                    for (&k, &d) in grp.iter().zip(det) {
                        if d {
                            detected[k as usize] = true;
                            dropped += 1;
                        }
                    }
                }
            }
        }
        seceda_trace::counter("sim.faults_dropped", dropped);
        seceda_trace::counter("sim.cone_gates_skipped", cone_skipped);
    }

    /// Grades `patterns` against `faults`, updating `detected` in
    /// place: faults already marked detected are skipped (dropped), and
    /// each still-active fault is marked as soon as any pattern detects
    /// it. This is the incremental entry point ATPG uses as SAT
    /// patterns arrive.
    ///
    /// The final `detected` vector is bit-identical to the scalar
    /// reference grading all `patterns` against all `faults`.
    ///
    /// # Panics
    ///
    /// Panics if `detected` and `faults` differ in length or on pattern
    /// width mismatch.
    pub fn grade(&self, patterns: &[Vec<bool>], faults: &[Fault], detected: &mut [bool]) {
        self.grade_chunks::<Lane256>(patterns, faults, detected);
    }

    /// 64-lane reference grading path: identical semantics to
    /// [`PackedFaultSim::grade`] over plain `u64` words, kept for
    /// differential testing of the 256-bit engine.
    pub fn grade_u64(&self, patterns: &[Vec<bool>], faults: &[Fault], detected: &mut [bool]) {
        self.grade_chunks::<u64>(patterns, faults, detected);
    }

    /// Grades a pattern set against a fault list; returns, per fault,
    /// whether any pattern detects it, plus the overall coverage
    /// fraction. Drop-in packed replacement for the scalar
    /// [`crate::FaultSim::coverage_scalar`].
    ///
    /// # Panics
    ///
    /// Panics on pattern width mismatch.
    pub fn coverage(&self, patterns: &[Vec<bool>], faults: &[Fault]) -> (Vec<bool>, f64) {
        self.coverage_with::<Lane256>(patterns, faults)
    }

    /// 64-lane reference of [`PackedFaultSim::coverage`], kept for
    /// differential testing of the 256-bit engine.
    pub fn coverage_u64(&self, patterns: &[Vec<bool>], faults: &[Fault]) -> (Vec<bool>, f64) {
        self.coverage_with::<u64>(patterns, faults)
    }

    fn coverage_with<W: SimWord>(
        &self,
        patterns: &[Vec<bool>],
        faults: &[Fault],
    ) -> (Vec<bool>, f64) {
        let mut sp = seceda_trace::span("sim.fault_coverage");
        sp.attr("patterns", patterns.len());
        sp.attr("faults", faults.len());
        sp.attr("engine", "packed");
        sp.attr("lane_bits", W::BITS);
        let mut detected = vec![false; faults.len()];
        self.grade_chunks::<W>(patterns, faults, &mut detected);
        let num_detected = detected.iter().filter(|&&d| d).count();
        let frac = if faults.is_empty() {
            1.0
        } else {
            num_detected as f64 / faults.len() as f64
        };
        seceda_trace::counter("sim.patterns_simulated", patterns.len() as u64);
        seceda_trace::counter("sim.faults_detected", num_detected as u64);
        sp.attr("coverage", frac);
        (detected, frac)
    }

    /// Returns `true` if `pattern` detects `fault`, reusing
    /// already-computed good packed values for that pattern (see
    /// [`PackedFaultSim::good_values`]).
    pub fn detects_given_good(&self, good: &[u64], fault: Fault) -> bool {
        let mut sc = Scratch::new(good, self.num_comb_gates as usize);
        let mut det = [false];
        self.grade_group(&mut sc, good, &[(fault, batch_mask(1))], &mut det);
        det[0]
    }

    /// Packed per-net good values of a single scalar pattern (bit 0
    /// carries the pattern; the other 63 lanes replicate pattern 0's
    /// zero-extension).
    ///
    /// # Panics
    ///
    /// Panics on input width mismatch.
    pub fn good_values(&self, pattern: &[bool]) -> Vec<u64> {
        let words = pack_patterns(
            std::slice::from_ref(&pattern.to_vec()),
            self.nl.inputs().len(),
        );
        self.sim.eval(&words)
    }

    /// Evaluates 64 patterns of the *faulty* circuit and returns the
    /// packed primary-output words, mirroring the scalar
    /// [`crate::FaultSim::eval_with_faults`] semantics bit for bit:
    /// faults take effect at the moment a net is assigned (primary
    /// inputs and combinational gate outputs; the last fault listed for
    /// a net wins), so BIST signatures over packed batches equal the
    /// scalar per-pattern signatures.
    ///
    /// # Panics
    ///
    /// Panics on input width mismatch.
    pub fn eval_outputs_with_faults(&self, inputs: &[u64], faults: &[Fault]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.nl.inputs().len(), "input width mismatch");
        let mut forced: Vec<Option<FaultKind>> = vec![None; self.nl.num_nets()];
        for f in faults {
            forced[f.net.index()] = Some(f.kind);
        }
        let mut values = vec![0u64; self.nl.num_nets()];
        for (k, &pi) in self.nl.inputs().iter().enumerate() {
            values[pi.index()] = match forced[pi.index()] {
                Some(kind) => apply_fault(kind, inputs[k]),
                None => inputs[k],
            };
        }
        for &gid in self.sim.order() {
            let g = self.nl.gate(gid);
            let good = eval_gate(g, &values);
            values[g.output.index()] = match forced[g.output.index()] {
                Some(kind) => apply_fault(kind, good),
                None => good,
            };
        }
        self.nl
            .outputs()
            .iter()
            .map(|&(n, _)| values[n.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{stuck_at_universe, FaultSim};
    use seceda_netlist::{c17, CellKind, Netlist};

    #[test]
    fn packed_coverage_matches_scalar_on_c17() {
        let nl = c17();
        let scalar = FaultSim::new(&nl).expect("sim");
        let packed = PackedFaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|b| (p >> b) & 1 == 1).collect())
            .collect();
        assert_eq!(
            packed.coverage(&patterns, &faults),
            scalar.coverage_scalar(&patterns, &faults)
        );
        assert_eq!(
            packed.coverage_u64(&patterns, &faults),
            scalar.coverage_scalar(&patterns, &faults)
        );
    }

    #[test]
    fn incremental_grading_equals_batch_grading() {
        let nl = c17();
        let packed = PackedFaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|b| (p >> b) & 1 == 1).collect())
            .collect();
        let (batch, _) = packed.coverage(&patterns, &faults);
        let mut incremental = vec![false; faults.len()];
        for p in &patterns {
            packed.grade(std::slice::from_ref(p), &faults, &mut incremental);
        }
        assert_eq!(batch, incremental);
    }

    #[test]
    fn dff_output_faults_have_no_effect_like_scalar() {
        // q feeds an XOR with input a; scalar fault passes never assign q,
        // so a stuck-at-1 there is (quirkily) invisible — packed must agree
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let d = nl.add_net();
        let q = nl.add_gate(CellKind::Dff, &[d]);
        let y = nl.add_gate(CellKind::Xor, &[a, q]);
        nl.mark_output(y, "y");
        let scalar = FaultSim::new(&nl).expect("sim");
        let packed = PackedFaultSim::new(&nl).expect("sim");
        let fault = Fault::stuck_at(q, true);
        let patterns = vec![vec![false], vec![true]];
        assert_eq!(
            packed.coverage(&patterns, &[fault]),
            scalar.coverage_scalar(&patterns, &[fault])
        );
        assert_eq!(packed.coverage(&patterns, &[fault]).0, vec![false]);
    }

    #[test]
    fn partial_batch_mask_hides_unused_lanes() {
        // a single pattern that does NOT detect the fault must stay
        // undetected even though unused lanes would have detected it
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::And, &[a, b]);
        nl.mark_output(y, "y");
        let packed = PackedFaultSim::new(&nl).expect("sim");
        let f = Fault::stuck_at(a, false);
        let (det, _) = packed.coverage(&[vec![true, false]], &[f]);
        assert_eq!(det, vec![false]);
        let (det, _) = packed.coverage(&[vec![true, true]], &[f]);
        assert_eq!(det, vec![true]);
    }

    #[test]
    fn fault_groups_attribute_detections_per_lane() {
        // a chain where faults have overlapping cones: fault A's site
        // feeds fault B's site, so the group pass must keep B forced in
        // its own lane while A's effect washes through the union cone
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(CellKind::And, &[a, b]);
        let g2 = nl.add_gate(CellKind::Or, &[g1, a]);
        let g3 = nl.add_gate(CellKind::Xor, &[g2, b]);
        nl.mark_output(g3, "y");
        let packed = PackedFaultSim::new(&nl).expect("sim");
        let scalar = FaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        let patterns: Vec<Vec<bool>> = (0..4u32)
            .map(|p| (0..2).map(|k| (p >> k) & 1 == 1).collect())
            .collect();
        // <=64 patterns forces fault-group mode under Lane256
        assert_eq!(
            packed.coverage(&patterns, &faults),
            scalar.coverage_scalar(&patterns, &faults)
        );
    }

    #[test]
    fn wide_mode_matches_u64_above_64_patterns() {
        let nl = c17();
        let packed = PackedFaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        // 5-input circuit: replicate the 32 exhaustive patterns to cross
        // the 64-pattern wide-mode threshold (65..=255 exercises the
        // partial Lane256 mask)
        let base: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|b| (p >> b) & 1 == 1).collect())
            .collect();
        for n in [65usize, 120, 255, 256] {
            let patterns: Vec<Vec<bool>> = (0..n).map(|i| base[i % base.len()].clone()).collect();
            assert_eq!(
                packed.coverage(&patterns, &faults),
                packed.coverage_u64(&patterns, &faults),
                "pattern count {n}"
            );
        }
    }

    #[test]
    fn packed_faulty_outputs_match_scalar_eval() {
        let nl = c17();
        let scalar = FaultSim::new(&nl).expect("sim");
        let packed = PackedFaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|b| (p >> b) & 1 == 1).collect())
            .collect();
        let words = pack_patterns(&patterns, 5);
        for &f in faults.iter().take(8) {
            let outs = packed.eval_outputs_with_faults(&words, &[f]);
            for (p, pattern) in patterns.iter().enumerate() {
                let scalar_outs = scalar.outputs(&scalar.eval_with_faults(pattern, &[f]));
                for (o, &w) in outs.iter().enumerate() {
                    assert_eq!((w >> p) & 1 == 1, scalar_outs[o], "fault {f:?} p={p} o={o}");
                }
            }
        }
    }
}
