//! Bit-parallel simulation: 64 input patterns per pass.
//!
//! Each net carries a `u64` whose bit *k* is the net's value under pattern
//! *k*. This is the standard trick that makes statistical analyses (signal
//! probabilities, MERO N-detect test generation, fault grading) tractable.

use crate::simword::SimWord;
use seceda_netlist::{CellKind, Gate, GateId, Netlist, NetlistError};

/// Evaluates one combinational gate on packed words of any lane width:
/// bit *k* of the result is the gate's output under lane *k*.
///
/// # Panics
///
/// Debug-panics on sequential gates; callers iterate combinational
/// topological orders only.
pub(crate) fn eval_gate_w<W: SimWord>(g: &Gate, values: &[W]) -> W {
    match g.kind {
        CellKind::Const0 => W::ZERO,
        CellKind::Const1 => W::ONES,
        CellKind::Buf => values[g.inputs[0].index()],
        CellKind::Not => !values[g.inputs[0].index()],
        CellKind::And => g
            .inputs
            .iter()
            .fold(W::ONES, |acc, &i| acc & values[i.index()]),
        CellKind::Nand => !g
            .inputs
            .iter()
            .fold(W::ONES, |acc, &i| acc & values[i.index()]),
        CellKind::Or => g
            .inputs
            .iter()
            .fold(W::ZERO, |acc, &i| acc | values[i.index()]),
        CellKind::Nor => !g
            .inputs
            .iter()
            .fold(W::ZERO, |acc, &i| acc | values[i.index()]),
        CellKind::Xor => g
            .inputs
            .iter()
            .fold(W::ZERO, |acc, &i| acc ^ values[i.index()]),
        CellKind::Xnor => !g
            .inputs
            .iter()
            .fold(W::ZERO, |acc, &i| acc ^ values[i.index()]),
        CellKind::Mux => {
            let s = values[g.inputs[0].index()];
            let a = values[g.inputs[1].index()];
            let b = values[g.inputs[2].index()];
            W::mux(s, a, b)
        }
        CellKind::Dff => {
            debug_assert!(false, "eval_gate called on a sequential gate");
            W::ZERO
        }
    }
}

/// Evaluates one combinational gate on 64-lane packed words.
pub(crate) fn eval_gate(g: &Gate, values: &[u64]) -> u64 {
    eval_gate_w::<u64>(g, values)
}

/// Evaluates every net of `nl` at any lane width: one pass over a
/// precomputed combinational topological `order`, DFF outputs held at
/// all-zero (the pseudo-input convention used everywhere else).
pub(crate) fn eval_nets_w<W: SimWord>(nl: &Netlist, order: &[GateId], inputs: &[W]) -> Vec<W> {
    assert_eq!(inputs.len(), nl.inputs().len(), "input width mismatch");
    let mut values = vec![W::ZERO; nl.num_nets()];
    for (k, &pi) in nl.inputs().iter().enumerate() {
        values[pi.index()] = inputs[k];
    }
    for &gid in order {
        let g = nl.gate(gid);
        values[g.output.index()] = eval_gate_w(g, &values);
    }
    values
}

/// Packs scalar pattern bits into input words of any lane width:
/// `patterns[p][k]` is the value of input *k* under pattern *p* (at most
/// `W::BITS` patterns).
///
/// # Panics
///
/// Panics if more than `W::BITS` patterns are supplied.
pub(crate) fn pack_patterns_w<W: SimWord>(patterns: &[Vec<bool>], num_inputs: usize) -> Vec<W> {
    assert!(
        patterns.len() <= W::BITS,
        "at most {} patterns per packed word",
        W::BITS
    );
    let mut words = vec![W::ZERO; num_inputs];
    for (p, pat) in patterns.iter().enumerate() {
        assert_eq!(pat.len(), num_inputs, "pattern width mismatch");
        let (lane, bit) = (p / 64, p % 64);
        for (k, &b) in pat.iter().enumerate() {
            if b {
                let w = words[k];
                words[k] = w.with_lane(lane, w.lane(lane) | (1u64 << bit));
            }
        }
    }
    words
}

/// Bit-parallel combinational simulator.
///
/// # Example
///
/// ```
/// use seceda_netlist::{Netlist, CellKind};
/// use seceda_sim::PackedSim;
///
/// let mut nl = Netlist::new("xor");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate(CellKind::Xor, &[a, b]);
/// nl.mark_output(y, "y");
/// let sim = PackedSim::new(&nl)?;
/// // pattern 0: a=0,b=0; pattern 1: a=1,b=0; pattern 2: a=0,b=1; pattern 3: a=1,b=1
/// let nets = sim.eval(&[0b1010, 0b1100]);
/// assert_eq!(sim.outputs(&nets)[0] & 0b1111, 0b0110);
/// # Ok::<(), seceda_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PackedSim<'a> {
    nl: &'a Netlist,
    order: Vec<GateId>,
}

impl<'a> PackedSim<'a> {
    /// Builds a packed simulator.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] on cyclic logic.
    pub fn new(nl: &'a Netlist) -> Result<Self, NetlistError> {
        let order = nl.topo_order()?;
        Ok(PackedSim { nl, order })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        self.nl
    }

    /// The combinational topological order this simulator evaluates in.
    pub(crate) fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Evaluates 64 patterns at once.
    ///
    /// `inputs[k]` is the packed word of primary input *k* (bit *p* =
    /// value of that input under pattern *p*). DFF outputs are treated as
    /// constant-zero pseudo-inputs; use [`PackedSim::eval_with_state`] to
    /// drive them.
    ///
    /// Returns a packed word per net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the number of primary inputs.
    pub fn eval(&self, inputs: &[u64]) -> Vec<u64> {
        self.eval_with_state(inputs, &vec![0u64; self.nl.dffs().len()])
    }

    /// Evaluates 64 patterns with explicit packed DFF state.
    ///
    /// # Panics
    ///
    /// Panics on input/state width mismatch.
    pub fn eval_with_state(&self, inputs: &[u64], state: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.nl.inputs().len(), "input width mismatch");
        let dffs = self.nl.dffs();
        assert_eq!(state.len(), dffs.len(), "state width mismatch");
        let mut values = vec![0u64; self.nl.num_nets()];
        for (k, &pi) in self.nl.inputs().iter().enumerate() {
            values[pi.index()] = inputs[k];
        }
        for (k, &d) in dffs.iter().enumerate() {
            values[self.nl.gate(d).output.index()] = state[k];
        }
        // the topological order holds combinational gates only, so every
        // gate evaluates exactly once
        for &gid in &self.order {
            let g = self.nl.gate(gid);
            values[g.output.index()] = eval_gate(g, &values);
        }
        values
    }

    /// Extracts the packed primary-output words from a per-net vector
    /// returned by [`PackedSim::eval`].
    pub fn outputs(&self, net_values: &[u64]) -> Vec<u64> {
        self.nl
            .outputs()
            .iter()
            .map(|&(n, _)| net_values[n.index()])
            .collect()
    }
}

/// Packs scalar pattern bits into input words: `patterns[p][k]` is the
/// value of input *k* under pattern *p* (at most 64 patterns).
///
/// # Panics
///
/// Panics if more than 64 patterns are supplied.
pub fn pack_patterns(patterns: &[Vec<bool>], num_inputs: usize) -> Vec<u64> {
    assert!(patterns.len() <= 64, "at most 64 patterns per packed word");
    let mut words = vec![0u64; num_inputs];
    for (p, pat) in patterns.iter().enumerate() {
        assert_eq!(pat.len(), num_inputs, "pattern width mismatch");
        for (k, &bit) in pat.iter().enumerate() {
            if bit {
                words[k] |= 1 << p;
            }
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::c17;

    #[test]
    fn packed_matches_scalar_on_c17() {
        let nl = c17();
        let sim = PackedSim::new(&nl).expect("sim");
        // all 32 input patterns of c17 in one packed pass
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|b| (p >> b) & 1 == 1).collect())
            .collect();
        let words = pack_patterns(&patterns, 5);
        let nets = sim.eval(&words);
        let outs = sim.outputs(&nets);
        for (p, pat) in patterns.iter().enumerate() {
            let scalar = nl.evaluate(pat);
            for (o, &word) in outs.iter().enumerate() {
                assert_eq!((word >> p) & 1 == 1, scalar[o], "pattern {p} output {o}");
            }
        }
    }

    #[test]
    fn constants_and_mux() {
        use seceda_netlist::CellKind;
        let mut nl = Netlist::new("m");
        let s = nl.add_input("s");
        let zero = nl.add_gate(CellKind::Const0, &[]);
        let one = nl.add_gate(CellKind::Const1, &[]);
        let y = nl.add_gate(CellKind::Mux, &[s, zero, one]);
        nl.mark_output(y, "y");
        let sim = PackedSim::new(&nl).expect("sim");
        let nets = sim.eval(&[0b10]);
        let outs = sim.outputs(&nets);
        assert_eq!(outs[0] & 0b11, 0b10);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_patterns_rejected() {
        let patterns = vec![vec![false]; 65];
        pack_patterns(&patterns, 1);
    }
}
