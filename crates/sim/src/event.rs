//! Event-driven timing simulation with glitch reporting.
//!
//! The paper (Sec. III-E) stresses that *glitches* — transient signal
//! toggles within a clock cycle caused by unequal path delays — influence
//! information leakage and must be visible to pre-silicon power
//! verification. This module simulates a single input transition with
//! per-gate nominal delays and records every toggle event.

use seceda_netlist::{CellKind, Netlist, NetlistError};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A single signal toggle at a point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToggleEvent {
    /// Simulation time of the toggle (gate-delay units).
    pub time: f64,
    /// Index of the net that toggled.
    pub net: usize,
    /// The new value after the toggle.
    pub value: bool,
}

/// Summary of one input-transition simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct GlitchReport {
    /// All toggle events in time order.
    pub events: Vec<ToggleEvent>,
    /// Per-net toggle counts.
    pub toggles: Vec<usize>,
    /// Number of nets that toggled more than once (glitching nets).
    pub glitching_nets: usize,
    /// Total number of transient (superfluous) toggles.
    pub glitch_toggles: usize,
    /// Time of the last event (settling time).
    pub settle_time: f64,
}

impl GlitchReport {
    /// Integrates toggle activity into a sampled power waveform with
    /// `num_samples` buckets covering `[0, settle_time]`. Each toggle adds
    /// one unit of power to its time bucket — the glitch-aware trace used
    /// by leakage analysis.
    pub fn power_waveform(&self, num_samples: usize) -> Vec<f64> {
        let mut wave = vec![0.0; num_samples.max(1)];
        if self.events.is_empty() {
            return wave;
        }
        let span = self.settle_time.max(1e-9);
        for ev in &self.events {
            let idx = ((ev.time / span) * (num_samples as f64 - 1.0)).round() as usize;
            wave[idx.min(num_samples - 1)] += 1.0;
        }
        wave
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    net: usize,
    value: bool,
    seq: u64,
}

impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap by time (then sequence for determinism)
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Event-driven delay simulator for combinational netlists.
#[derive(Debug, Clone)]
pub struct EventSim<'a> {
    nl: &'a Netlist,
    fanout: Vec<Vec<usize>>,
    /// Per-gate delay override; `None` uses [`CellKind::delay`].
    delay_override: Vec<Option<f64>>,
}

impl<'a> EventSim<'a> {
    /// Builds an event simulator.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] on cyclic logic.
    pub fn new(nl: &'a Netlist) -> Result<Self, NetlistError> {
        nl.topo_order()?;
        let fanout = nl
            .fanout_map()
            .into_iter()
            .map(|v| v.into_iter().map(|g| g.index()).collect())
            .collect();
        Ok(EventSim {
            nl,
            fanout,
            delay_override: vec![None; nl.num_gates()],
        })
    }

    /// Overrides the delay of one gate (used by path-delay fingerprinting
    /// to model Trojan-induced slowdowns and process variation).
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range.
    pub fn set_gate_delay(&mut self, gate: usize, delay: f64) {
        self.delay_override[gate] = Some(delay);
    }

    fn gate_delay(&self, gate: usize) -> f64 {
        let g = &self.nl.gates()[gate];
        self.delay_override[gate].unwrap_or_else(|| {
            let fan = g.inputs.len().max(2);
            let tree_levels = (usize::BITS - (fan - 1).leading_zeros()) as f64;
            g.kind.delay() * tree_levels.max(1.0)
        })
    }

    /// Computes the settled net values for `inputs` (zero-delay).
    fn settle(&self, inputs: &[bool]) -> Vec<bool> {
        self.nl
            .eval_nets(inputs, &[])
            .expect("combinational evaluation")
    }

    /// Simulates the transition `from -> to` on the primary inputs and
    /// reports all toggle activity including glitches.
    ///
    /// The circuit starts settled at `from`; at time 0 the inputs switch
    /// to `to` simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is sequential or input widths mismatch.
    pub fn transition(&self, from: &[bool], to: &[bool]) -> GlitchReport {
        assert!(
            self.nl.is_combinational(),
            "EventSim::transition requires combinational logic"
        );
        let mut sp = seceda_trace::span("sim.transition");
        sp.attr("gates", self.nl.num_gates());
        let mut values = self.settle(from);
        let final_values = self.settle(to);

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        // `projected` tracks the value each net will hold after all
        // currently scheduled events execute (transport-delay model).
        let mut projected = values.clone();
        for (k, &pi) in self.nl.inputs().iter().enumerate() {
            if values[pi.index()] != to[k] {
                projected[pi.index()] = to[k];
                heap.push(Event {
                    time: 0.0,
                    net: pi.index(),
                    value: to[k],
                    seq,
                });
                seq += 1;
            }
        }

        let mut events: Vec<ToggleEvent> = Vec::new();
        let mut toggles = vec![0usize; self.nl.num_nets()];
        let mut settle_time = 0.0f64;
        let mut guard = 0usize;
        let guard_limit = 64 * self.nl.num_gates().max(64);

        while let Some(ev) = heap.pop() {
            guard += 1;
            assert!(guard <= guard_limit, "event explosion (oscillation?)");
            if values[ev.net] == ev.value {
                continue; // superseded event
            }
            values[ev.net] = ev.value;
            events.push(ToggleEvent {
                time: ev.time,
                net: ev.net,
                value: ev.value,
            });
            toggles[ev.net] += 1;
            settle_time = settle_time.max(ev.time);
            for &gi in &self.fanout[ev.net] {
                let g = &self.nl.gates()[gi];
                if g.kind == CellKind::Dff {
                    continue;
                }
                let ins: Vec<bool> = g.inputs.iter().map(|&i| values[i.index()]).collect();
                let new_out = g.kind.eval(&ins);
                let out = g.output.index();
                // schedule if this differs from the value the net is
                // already projected to settle at — this is what lets a
                // short pulse (glitch) schedule both its edges
                if new_out != projected[out] {
                    projected[out] = new_out;
                    heap.push(Event {
                        time: ev.time + self.gate_delay(gi),
                        net: out,
                        value: new_out,
                        seq,
                    });
                    seq += 1;
                }
            }
        }

        debug_assert_eq!(values, final_values, "event sim must settle to DC value");
        seceda_trace::counter("sim.events_processed", events.len() as u64);
        sp.attr("events", events.len());
        sp.attr("settle_time", settle_time);
        let glitching_nets = toggles.iter().filter(|&&t| t > 1).count();
        // A functional transition needs at most 1 toggle per net; anything
        // beyond that is a glitch.
        let glitch_toggles: usize = toggles.iter().map(|&t| t.saturating_sub(1)).sum();
        GlitchReport {
            events,
            toggles,
            glitching_nets,
            glitch_toggles,
            settle_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{CellKind, Netlist};

    /// The classic glitch circuit: y = a & !a settles at 0 but pulses when
    /// `a` rises, because the inverter path is slower.
    fn glitcher() -> Netlist {
        let mut nl = Netlist::new("glitch");
        let a = nl.add_input("a");
        let na = nl.add_gate(CellKind::Not, &[a]);
        let y = nl.add_gate(CellKind::And, &[a, na]);
        nl.mark_output(y, "y");
        nl
    }

    #[test]
    fn static_hazard_detected() {
        let nl = glitcher();
        let sim = EventSim::new(&nl).expect("sim");
        let report = sim.transition(&[false], &[true]);
        // y pulses 0 -> 1 -> 0: two toggles on one net
        let y_net = nl.outputs()[0].0.index();
        assert_eq!(report.toggles[y_net], 2, "events: {:?}", report.events);
        assert_eq!(report.glitching_nets, 1);
        assert!(report.glitch_toggles >= 1);
    }

    #[test]
    fn no_glitch_on_balanced_path() {
        let mut nl = Netlist::new("buf");
        let a = nl.add_input("a");
        let y = nl.add_gate(CellKind::Buf, &[a]);
        nl.mark_output(y, "y");
        let sim = EventSim::new(&nl).expect("sim");
        let report = sim.transition(&[false], &[true]);
        assert_eq!(report.glitching_nets, 0);
        assert_eq!(report.toggles[y.index()], 1);
    }

    #[test]
    fn no_transition_no_events() {
        let nl = glitcher();
        let sim = EventSim::new(&nl).expect("sim");
        let report = sim.transition(&[true], &[true]);
        assert!(report.events.is_empty());
    }

    #[test]
    fn delay_override_lengthens_settling() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let x = nl.add_gate(CellKind::Buf, &[a]);
        let y = nl.add_gate(CellKind::Buf, &[x]);
        nl.mark_output(y, "y");
        let mut sim = EventSim::new(&nl).expect("sim");
        let base = sim.transition(&[false], &[true]).settle_time;
        sim.set_gate_delay(0, 10.0);
        let slowed = sim.transition(&[false], &[true]).settle_time;
        assert!(slowed > base + 5.0);
    }

    #[test]
    fn power_waveform_buckets_events() {
        let nl = glitcher();
        let sim = EventSim::new(&nl).expect("sim");
        let report = sim.transition(&[false], &[true]);
        let wave = report.power_waveform(8);
        let total: f64 = wave.iter().sum();
        assert_eq!(total as usize, report.events.len());
    }
}
