//! Pre-silicon power modeling: Hamming-weight / Hamming-distance leakage
//! with Gaussian measurement noise.
//!
//! Real side-channel measurements observe dynamic power, which at the
//! gate level is dominated by net toggles. The two standard first-order
//! models are *Hamming weight* (HW: power proportional to the number of
//! 1-valued nets) and *Hamming distance* (HD: proportional to the number
//! of nets that toggled between consecutive states). Both are supported;
//! HD is the default because it models CMOS switching.

use rand_distr_normal::Normal;
use seceda_netlist::Netlist;
use seceda_testkit::rng::{SeedableRng, StdRng};

/// Minimal internal normal sampler (Box–Muller) so we do not need the
/// `rand_distr` crate.
mod rand_distr_normal {
    use seceda_testkit::rng::Rng;

    /// Normal distribution via the Box–Muller transform.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Normal {
        mean: f64,
        std_dev: f64,
    }

    impl Normal {
        /// Creates a normal distribution.
        ///
        /// # Panics
        ///
        /// Panics if `std_dev` is negative.
        pub fn new(mean: f64, std_dev: f64) -> Self {
            assert!(std_dev >= 0.0, "negative standard deviation");
            Normal { mean, std_dev }
        }

        /// Draws one sample.
        pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            self.mean + self.std_dev * z
        }
    }
}

/// Which leakage model maps net values to a power sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PowerModel {
    /// Power ∝ number of nets holding logic 1.
    HammingWeight,
    /// Power ∝ number of nets that toggled since the previous cycle.
    #[default]
    HammingDistance,
}

/// Additive Gaussian measurement noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of the additive noise (power units; one net
    /// toggle = 1.0).
    pub sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            sigma: 1.0,
            seed: 0x5CA1_AB1E,
        }
    }
}

/// Records one power sample per simulated cycle.
///
/// # Example
///
/// ```
/// use seceda_netlist::{Netlist, CellKind};
/// use seceda_sim::{CycleSim, TraceRecorder, PowerModel, NoiseModel};
///
/// let mut nl = Netlist::new("and");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate(CellKind::And, &[a, b]);
/// nl.mark_output(y, "y");
///
/// let mut rec = TraceRecorder::new(&nl, PowerModel::HammingDistance,
///                                  NoiseModel { sigma: 0.0, seed: 1 });
/// let mut sim = CycleSim::new(&nl)?;
/// let v1 = sim.step_nets(&[false, false])?;
/// let v2 = sim.step_nets(&[true, true])?;
/// let p1 = rec.sample(&v1);
/// let p2 = rec.sample(&v2);
/// assert_eq!(p1, 0.0);       // nothing toggled from the all-zero reset
/// assert_eq!(p2, 3.0);       // a, b and y all toggled
/// # Ok::<(), seceda_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    model: PowerModel,
    noise: Normal,
    rng: StdRng,
    prev: Option<Vec<bool>>,
    /// Per-net capacitance weight (default 1.0 per net).
    weights: Vec<f64>,
}

impl TraceRecorder {
    /// Creates a recorder for `nl` with unit net weights.
    pub fn new(nl: &Netlist, model: PowerModel, noise: NoiseModel) -> Self {
        TraceRecorder {
            model,
            noise: Normal::new(0.0, noise.sigma),
            rng: StdRng::seed_from_u64(noise.seed),
            prev: None,
            weights: vec![1.0; nl.num_nets()],
        }
    }

    /// Sets per-net capacitance weights (e.g. from fanout or wire length).
    ///
    /// # Panics
    ///
    /// Panics if `weights` has the wrong length.
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.weights.len(), "weight count mismatch");
        self.weights = weights;
    }

    /// Resets the toggle reference state (e.g. between traces).
    pub fn reset(&mut self) {
        self.prev = None;
    }

    /// Converts one cycle's net values into a noisy power sample and
    /// updates the toggle reference.
    pub fn sample(&mut self, net_values: &[bool]) -> f64 {
        let raw = match self.model {
            PowerModel::HammingWeight => net_values
                .iter()
                .zip(&self.weights)
                .filter(|(&v, _)| v)
                .map(|(_, &w)| w)
                .sum(),
            PowerModel::HammingDistance => match &self.prev {
                None => 0.0,
                Some(prev) => net_values
                    .iter()
                    .zip(prev)
                    .zip(&self.weights)
                    .filter(|((&cur, &prv), _)| cur != prv)
                    .map(|(_, &w)| w)
                    .sum(),
            },
        };
        self.prev = Some(net_values.to_vec());
        raw + self.noise.sample(&mut self.rng)
    }

    /// Records a full trace: one sample per cycle of `net_values_seq`.
    pub fn record(&mut self, net_values_seq: &[Vec<bool>]) -> Vec<f64> {
        net_values_seq.iter().map(|v| self.sample(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{CellKind, Netlist};

    fn tiny() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::Xor, &[a, b]);
        nl.mark_output(y, "y");
        nl
    }

    #[test]
    fn hw_counts_ones() {
        let nl = tiny();
        let mut rec = TraceRecorder::new(
            &nl,
            PowerModel::HammingWeight,
            NoiseModel {
                sigma: 0.0,
                seed: 0,
            },
        );
        assert_eq!(rec.sample(&[true, true, false]), 2.0);
        assert_eq!(rec.sample(&[false, false, false]), 0.0);
    }

    #[test]
    fn hd_counts_toggles() {
        let nl = tiny();
        let mut rec = TraceRecorder::new(
            &nl,
            PowerModel::HammingDistance,
            NoiseModel {
                sigma: 0.0,
                seed: 0,
            },
        );
        assert_eq!(rec.sample(&[true, false, true]), 0.0); // no reference yet
        assert_eq!(rec.sample(&[false, false, true]), 1.0);
        assert_eq!(rec.sample(&[true, true, false]), 3.0);
    }

    #[test]
    fn weights_scale_contributions() {
        let nl = tiny();
        let mut rec = TraceRecorder::new(
            &nl,
            PowerModel::HammingWeight,
            NoiseModel {
                sigma: 0.0,
                seed: 0,
            },
        );
        rec.set_weights(vec![2.0, 3.0, 5.0]);
        assert_eq!(rec.sample(&[true, false, true]), 7.0);
    }

    #[test]
    fn noise_is_reproducible() {
        let nl = tiny();
        let mk = || {
            TraceRecorder::new(
                &nl,
                PowerModel::HammingWeight,
                NoiseModel {
                    sigma: 2.0,
                    seed: 42,
                },
            )
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..10 {
            assert_eq!(a.sample(&[true, true, true]), b.sample(&[true, true, true]));
        }
    }

    #[test]
    fn noise_has_roughly_right_spread() {
        let nl = tiny();
        let mut rec = TraceRecorder::new(
            &nl,
            PowerModel::HammingWeight,
            NoiseModel {
                sigma: 1.0,
                seed: 7,
            },
        );
        let n = 4000;
        let samples: Vec<f64> = (0..n).map(|_| rec.sample(&[false, false, false])).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "var {var}");
    }
}
