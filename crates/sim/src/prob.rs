//! Signal probability estimation by packed random simulation.
//!
//! Rare internal signals are where Trojan triggers hide (MERO \[40\]); the
//! probability of each net being 1 under uniform random inputs is the
//! basic statistic behind trigger analysis and test generation.

use crate::packed::PackedSim;
use seceda_netlist::{Netlist, NetlistError};
use seceda_testkit::par;
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// Estimates, for every net, `P[net = 1]` under uniform random primary
/// inputs, using `num_rounds` packed simulations (64 patterns each).
///
/// Rounds fan out across cores: the input words are drawn serially
/// from one RNG stream (so the stimulus is identical to the historical
/// single-threaded loop), then the independent packed evaluations run
/// in parallel and their per-net one-counts are summed — exact integer
/// addition, so the result is bit-identical for any worker count.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] on cyclic logic.
///
/// # Panics
///
/// Panics if `num_rounds` is zero.
pub fn signal_probabilities(
    nl: &Netlist,
    num_rounds: usize,
    seed: u64,
) -> Result<Vec<f64>, NetlistError> {
    assert!(num_rounds > 0, "need at least one round");
    let mut sp = seceda_trace::span("sim.signal_probabilities");
    sp.attr("gates", nl.num_gates());
    sp.attr("rounds", num_rounds);
    seceda_trace::counter("sim.patterns_simulated", (num_rounds * 64) as u64);
    let sim = PackedSim::new(nl)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let rounds: Vec<Vec<u64>> = (0..num_rounds)
        .map(|_| (0..nl.inputs().len()).map(|_| rng.gen()).collect())
        .collect();
    let workers = par::workers_for(num_rounds);
    seceda_trace::gauge("sim.par_workers", workers as f64);
    let chunks: Vec<&[Vec<u64>]> = rounds.chunks(num_rounds.div_ceil(workers)).collect();
    let partials = par::par_map(&chunks, |_, chunk| {
        let mut ones = vec![0u64; nl.num_nets()];
        for inputs in *chunk {
            let values = sim.eval(inputs);
            for (net, word) in values.iter().enumerate() {
                ones[net] += word.count_ones() as u64;
            }
        }
        ones
    });
    let mut ones = vec![0u64; nl.num_nets()];
    for partial in partials {
        for (total, p) in ones.iter_mut().zip(partial) {
            *total += p;
        }
    }
    let total = (num_rounds * 64) as f64;
    Ok(ones.into_iter().map(|c| c as f64 / total).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{CellKind, Netlist};

    #[test]
    fn and_tree_probability_drops() {
        // 4-input AND: P[out=1] = 1/16
        let mut nl = Netlist::new("and4");
        let ins: Vec<_> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
        let y = nl.add_gate(CellKind::And, &ins);
        nl.mark_output(y, "y");
        let probs = signal_probabilities(&nl, 256, 1).expect("probs");
        let p = probs[y.index()];
        assert!((p - 1.0 / 16.0).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn input_probability_near_half() {
        let mut nl = Netlist::new("w");
        let a = nl.add_input("a");
        let y = nl.add_gate(CellKind::Buf, &[a]);
        nl.mark_output(y, "y");
        let probs = signal_probabilities(&nl, 128, 2).expect("probs");
        assert!((probs[a.index()] - 0.5).abs() < 0.03);
        assert!((probs[y.index()] - 0.5).abs() < 0.03);
    }

    #[test]
    fn probabilities_identical_for_any_worker_count() {
        let mut nl = Netlist::new("p");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::Nand, &[a, b]);
        nl.mark_output(y, "y");
        let serial = par::with_workers(1, || signal_probabilities(&nl, 37, 9).expect("probs"));
        let parallel = par::with_workers(5, || signal_probabilities(&nl, 37, 9).expect("probs"));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn xor_stays_balanced() {
        let mut nl = Netlist::new("x");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::Xor, &[a, b]);
        nl.mark_output(y, "y");
        let probs = signal_probabilities(&nl, 128, 3).expect("probs");
        assert!((probs[y.index()] - 0.5).abs() < 0.03);
    }
}
