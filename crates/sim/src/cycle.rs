//! Zero-delay cycle-accurate simulation with full per-net visibility.

use seceda_netlist::{GateId, Netlist, NetlistError};

/// The recorded per-net values of a multi-cycle simulation.
///
/// `values[c][n]` is the value of net `n` during cycle `c` (after the
/// combinational logic settled, before the clock edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTrace {
    /// One vector of net values per simulated cycle.
    pub values: Vec<Vec<bool>>,
    /// Primary-output values per cycle.
    pub outputs: Vec<Vec<bool>>,
}

impl SimTrace {
    /// Number of simulated cycles.
    pub fn num_cycles(&self) -> usize {
        self.values.len()
    }
}

/// A reusable cycle simulator.
///
/// Precomputes the topological order once, then evaluates cycles without
/// re-deriving it — the hot path for trace acquisition in side-channel
/// experiments.
///
/// # Example
///
/// ```
/// use seceda_netlist::{Netlist, CellKind};
/// use seceda_sim::CycleSim;
///
/// let mut nl = Netlist::new("and");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate(CellKind::And, &[a, b]);
/// nl.mark_output(y, "y");
/// let mut sim = CycleSim::new(&nl)?;
/// let trace = sim.run(&[vec![true, true], vec![true, false]])?;
/// assert_eq!(trace.outputs, vec![vec![true], vec![false]]);
/// # Ok::<(), seceda_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CycleSim<'a> {
    nl: &'a Netlist,
    order: Vec<GateId>,
    dffs: Vec<GateId>,
    state: Vec<bool>,
}

impl<'a> CycleSim<'a> {
    /// Builds a simulator for `nl` with the all-zero initial state.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic logic.
    pub fn new(nl: &'a Netlist) -> Result<Self, NetlistError> {
        let order = nl.topo_order()?;
        let dffs = nl.dffs();
        let state = vec![false; dffs.len()];
        Ok(CycleSim {
            nl,
            order,
            dffs,
            state,
        })
    }

    /// Replaces the current DFF state.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not match the number of DFFs.
    pub fn set_state(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.state.len(), "state width mismatch");
        self.state.copy_from_slice(state);
    }

    /// Current DFF state (one bit per DFF, in creation order).
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Evaluates one cycle: returns the value of every net and advances
    /// the DFF state.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] on a wrong input width.
    pub fn step_nets(&mut self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.nl.inputs().len() {
            return Err(NetlistError::WidthMismatch {
                expected: self.nl.inputs().len(),
                got: inputs.len(),
            });
        }
        let mut values = vec![false; self.nl.num_nets()];
        for (k, &pi) in self.nl.inputs().iter().enumerate() {
            values[pi.index()] = inputs[k];
        }
        for (k, &d) in self.dffs.iter().enumerate() {
            values[self.nl.gate(d).output.index()] = self.state[k];
        }
        let mut scratch: Vec<bool> = Vec::new();
        for &gid in &self.order {
            let g = self.nl.gate(gid);
            scratch.clear();
            scratch.extend(g.inputs.iter().map(|&i| values[i.index()]));
            values[g.output.index()] = g.kind.eval(&scratch);
        }
        for (k, &d) in self.dffs.iter().enumerate() {
            self.state[k] = values[self.nl.gate(d).inputs[0].index()];
        }
        Ok(values)
    }

    /// Runs a sequence of input vectors, recording all net values.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] on a wrong input width.
    pub fn run(&mut self, input_seq: &[Vec<bool>]) -> Result<SimTrace, NetlistError> {
        let mut values = Vec::with_capacity(input_seq.len());
        let mut outputs = Vec::with_capacity(input_seq.len());
        for inputs in input_seq {
            let v = self.step_nets(inputs)?;
            outputs.push(
                self.nl
                    .outputs()
                    .iter()
                    .map(|&(n, _)| v[n.index()])
                    .collect(),
            );
            values.push(v);
        }
        Ok(SimTrace { values, outputs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::CellKind;

    /// 2-bit counter built from two DFFs.
    fn counter2() -> Netlist {
        let mut nl = Netlist::new("cnt2");
        let one = nl.add_gate(CellKind::Const1, &[]);
        // q0' = q0 ^ 1 ; q1' = q1 ^ q0
        let q0_fb = nl.add_net();
        let q1_fb = nl.add_net();
        let n0 = nl.add_gate(CellKind::Xor, &[q0_fb, one]);
        let n1 = nl.add_gate(CellKind::Xor, &[q1_fb, q0_fb]);
        let q0 = nl.add_gate(CellKind::Dff, &[n0]);
        let q1 = nl.add_gate(CellKind::Dff, &[n1]);
        let g0 = nl.net(n0).driver.expect("drv");
        let g1 = nl.net(n1).driver.expect("drv");
        nl.gate_mut(g0).inputs[0] = q0;
        nl.gate_mut(g1).inputs[0] = q1;
        nl.gate_mut(g1).inputs[1] = q0;
        nl.mark_output(q0, "q0");
        nl.mark_output(q1, "q1");
        nl
    }

    #[test]
    fn counter_counts() {
        let nl = counter2();
        let mut sim = CycleSim::new(&nl).expect("sim");
        let trace = sim.run(&vec![vec![]; 5]).expect("run");
        let seen: Vec<u8> = trace
            .outputs
            .iter()
            .map(|o| o[0] as u8 + 2 * (o[1] as u8))
            .collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn state_is_settable() {
        let nl = counter2();
        let mut sim = CycleSim::new(&nl).expect("sim");
        sim.set_state(&[true, true]);
        let trace = sim.run(&vec![vec![]; 1]).expect("run");
        assert_eq!(trace.outputs[0], vec![true, true]);
        assert_eq!(sim.state(), &[false, false]);
    }

    #[test]
    fn trace_has_all_nets() {
        let nl = counter2();
        let mut sim = CycleSim::new(&nl).expect("sim");
        let trace = sim.run(&vec![vec![]; 3]).expect("run");
        assert_eq!(trace.num_cycles(), 3);
        assert!(trace.values.iter().all(|v| v.len() == nl.num_nets()));
    }

    #[test]
    fn width_mismatch() {
        let nl = counter2();
        let mut sim = CycleSim::new(&nl).expect("sim");
        assert!(sim.run(&[vec![true]]).is_err());
    }
}
