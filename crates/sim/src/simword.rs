//! Simulation word types: the bit-parallel lane abstraction.
//!
//! Every packed simulator in this crate evaluates gates over *words*
//! whose bit *k* carries an independent simulation lane. [`SimWord`]
//! abstracts the word type so the same evaluation code runs 64 lanes
//! per pass (`u64`, the differential-testing reference) or 256 lanes
//! per pass ([`Lane256`], four `u64`s evaluated together — the
//! element-wise loops autovectorize to SIMD on any target with 128-bit
//! or wider vector units).
//!
//! The trait is deliberately tiny: the bitwise ops a gate evaluator
//! needs, plus lane plumbing (`broadcast`/`lane`/`with_lane`) used by
//! the fault-batching mode of
//! [`PackedFaultSim`](crate::PackedFaultSim), where each 64-bit lane of
//! a [`Lane256`] carries a *different fault* over the same 64 patterns.

use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A fixed-width simulation word: `BITS` independent boolean lanes.
pub trait SimWord:
    Copy
    + Eq
    + Send
    + Sync
    + std::fmt::Debug
    + Not<Output = Self>
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
{
    /// Total lane count (bits per word).
    const BITS: usize;
    /// Number of 64-bit sub-lanes (`BITS / 64`).
    const LANES: usize;
    /// All lanes zero.
    const ZERO: Self;
    /// All lanes one.
    const ONES: Self;

    /// The word with `w` replicated into every 64-bit sub-lane.
    fn broadcast(w: u64) -> Self;

    /// The 64-bit sub-lane at index `i`.
    fn lane(self, i: usize) -> u64;

    /// This word with sub-lane `i` replaced by `w`.
    fn with_lane(self, i: usize, w: u64) -> Self;

    /// The mask with the lowest `n` bits set (`1 <= n <= BITS`).
    fn low_mask(n: usize) -> Self;

    /// `true` if any bit is set.
    fn any(self) -> bool;

    /// Per-bit multiplexer: bit *k* of the result is `b` where `s` is
    /// set, `a` where it is clear.
    fn mux(s: Self, a: Self, b: Self) -> Self {
        (!s & a) | (s & b)
    }
}

/// The mask with the lowest `n` of 64 bits set.
fn low_mask64(n: usize) -> u64 {
    debug_assert!((1..=64).contains(&n));
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

impl SimWord for u64 {
    const BITS: usize = 64;
    const LANES: usize = 1;
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;

    fn broadcast(w: u64) -> Self {
        w
    }

    fn lane(self, i: usize) -> u64 {
        debug_assert_eq!(i, 0);
        self
    }

    fn with_lane(self, i: usize, w: u64) -> Self {
        debug_assert_eq!(i, 0);
        w
    }

    fn low_mask(n: usize) -> Self {
        low_mask64(n)
    }

    fn any(self) -> bool {
        self != 0
    }
}

/// A 256-bit simulation word: four `u64` sub-lanes.
///
/// All bitwise ops are element-wise loops over the array; with the
/// 32-byte alignment they compile to two 128-bit (SSE2) or one 256-bit
/// (AVX2) vector op per operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C, align(32))]
pub struct Lane256(pub [u64; 4]);

impl Not for Lane256 {
    type Output = Self;

    fn not(self) -> Self {
        Lane256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

macro_rules! lane256_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Lane256 {
            type Output = Self;

            fn $method(self, o: Self) -> Self {
                Lane256([
                    self.0[0] $op o.0[0],
                    self.0[1] $op o.0[1],
                    self.0[2] $op o.0[2],
                    self.0[3] $op o.0[3],
                ])
            }
        }
    };
}

lane256_binop!(BitAnd, bitand, &);
lane256_binop!(BitOr, bitor, |);
lane256_binop!(BitXor, bitxor, ^);

impl SimWord for Lane256 {
    const BITS: usize = 256;
    const LANES: usize = 4;
    const ZERO: Self = Lane256([0; 4]);
    const ONES: Self = Lane256([u64::MAX; 4]);

    fn broadcast(w: u64) -> Self {
        Lane256([w; 4])
    }

    fn lane(self, i: usize) -> u64 {
        self.0[i]
    }

    fn with_lane(mut self, i: usize, w: u64) -> Self {
        self.0[i] = w;
        self
    }

    fn low_mask(n: usize) -> Self {
        debug_assert!((1..=256).contains(&n));
        let mut out = [0u64; 4];
        let full = n / 64;
        for lane in out.iter_mut().take(full) {
            *lane = u64::MAX;
        }
        if full < 4 && !n.is_multiple_of(64) {
            out[full] = low_mask64(n % 64);
        }
        Lane256(out)
    }

    fn any(self) -> bool {
        (self.0[0] | self.0[1] | self.0[2] | self.0[3]) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_masks() {
        assert_eq!(u64::low_mask(1), 1);
        assert_eq!(u64::low_mask(64), u64::MAX);
        assert_eq!(Lane256::low_mask(1), Lane256([1, 0, 0, 0]));
        assert_eq!(Lane256::low_mask(64), Lane256([u64::MAX, 0, 0, 0]));
        assert_eq!(Lane256::low_mask(65), Lane256([u64::MAX, 1, 0, 0]));
        assert_eq!(
            Lane256::low_mask(200),
            Lane256([u64::MAX, u64::MAX, u64::MAX, 0xFF])
        );
        assert_eq!(Lane256::low_mask(256), Lane256::ONES);
    }

    #[test]
    fn lane_plumbing() {
        let w = Lane256::broadcast(7);
        assert_eq!(w.lane(2), 7);
        let w = w.with_lane(2, 9);
        assert_eq!(w.lane(2), 9);
        assert_eq!(w.lane(1), 7);
        assert!(w.any());
        assert!(!Lane256::ZERO.any());
    }

    #[test]
    fn bitops_match_u64_per_lane() {
        let a = Lane256([1, 2, 3, 4]);
        let b = Lane256([5, 6, 7, 8]);
        for i in 0..4 {
            assert_eq!((a & b).lane(i), a.lane(i) & b.lane(i));
            assert_eq!((a | b).lane(i), a.lane(i) | b.lane(i));
            assert_eq!((a ^ b).lane(i), a.lane(i) ^ b.lane(i));
            assert_eq!((!a).lane(i), !a.lane(i));
            assert_eq!(
                Lane256::mux(a, b, Lane256::ONES).lane(i),
                u64::mux(a.lane(i), b.lane(i), u64::MAX)
            );
        }
    }
}
