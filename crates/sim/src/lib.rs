//! # seceda-sim
//!
//! Simulation engines and pre-silicon physical models for the `seceda`
//! toolkit:
//!
//! * [`CycleSim`] — zero-delay cycle-accurate simulation of sequential
//!   netlists with full per-net visibility (the workhorse for leakage
//!   analysis and fault campaigns);
//! * [`PackedSim`] — bit-parallel simulation of one machine word of
//!   patterns at a time (signal probability estimation, MERO-style test
//!   generation, fault grading);
//! * [`EventSim`] — event-driven timing simulation with per-gate delays,
//!   reporting glitches (transient toggles within one cycle), which the
//!   paper highlights as a leakage source the power models must capture;
//! * [`power`] — Hamming-weight / Hamming-distance power models with
//!   Gaussian measurement noise, producing the side-channel traces the
//!   `seceda-sca` crate analyzes;
//! * [`fault`] — stuck-at and transient fault injection plus batch fault
//!   grading for ATPG and FIA campaigns;
//! * [`PackedFaultSim`] — the bit-parallel fault-grading engine behind
//!   [`FaultSim::coverage`](fault::FaultSim::coverage): 256 patterns
//!   per pass over [`Lane256`] words (generic in [`SimWord`], `u64`
//!   kept as the differential baseline), fault dropping,
//!   fan-out-cone-restricted faulty re-evaluation, and multi-threaded
//!   fault-list fan-out.
//!
//! See [`CycleSim`] for a runnable end-to-end example.

pub mod fault;
pub mod power;

mod cycle;
mod event;
mod packed;
mod packed_fault;
mod prob;
mod simword;

pub use cycle::{CycleSim, SimTrace};
pub use event::{EventSim, GlitchReport, ToggleEvent};
pub use fault::{Fault, FaultKind, FaultSim};
pub use packed::{pack_patterns, PackedSim};
pub use packed_fault::PackedFaultSim;
pub use power::{NoiseModel, PowerModel, TraceRecorder};
pub use prob::signal_probabilities;
pub use simword::{Lane256, SimWord};
