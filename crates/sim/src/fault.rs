//! Fault models and fault simulation.
//!
//! Two consumers share this module: *testing* (stuck-at faults graded by
//! ATPG patterns, Sec. III-F of the paper) and *fault-injection attacks*
//! (transient bit flips from laser/EM/glitch campaigns, Sec. II-A.2).

use crate::packed_fault::PackedFaultSim;
use seceda_netlist::{NetId, Netlist, NetlistError};
use std::sync::{Arc, Mutex};

/// Cached good-circuit packed values of one pattern (see
/// [`FaultSim::detects`]).
type GoodCache = Mutex<Option<(Vec<bool>, Arc<Vec<u64>>)>>;

/// The kind of a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The net is permanently stuck at 0 (manufacturing defect model).
    StuckAt0,
    /// The net is permanently stuck at 1.
    StuckAt1,
    /// The net's value is inverted for the affected cycle(s) (transient
    /// fault, e.g. from a laser pulse).
    BitFlip,
}

/// A fault at a specific net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The faulty net.
    pub net: NetId,
    /// The fault behaviour.
    pub kind: FaultKind,
}

impl Fault {
    /// Convenience constructor for a stuck-at fault.
    pub fn stuck_at(net: NetId, value: bool) -> Self {
        Fault {
            net,
            kind: if value {
                FaultKind::StuckAt1
            } else {
                FaultKind::StuckAt0
            },
        }
    }

    /// Convenience constructor for a transient bit flip.
    pub fn flip(net: NetId) -> Self {
        Fault {
            net,
            kind: FaultKind::BitFlip,
        }
    }

    fn apply(&self, good: bool) -> bool {
        match self.kind {
            FaultKind::StuckAt0 => false,
            FaultKind::StuckAt1 => true,
            FaultKind::BitFlip => !good,
        }
    }
}

/// Enumerates the collapsed single-stuck-at fault universe of a netlist:
/// both polarities at every net (primary inputs and gate outputs).
pub fn stuck_at_universe(nl: &Netlist) -> Vec<Fault> {
    // precomputed PI membership: the per-net `inputs().contains(..)` scan
    // was O(PIs) per net, quadratic on input-heavy designs
    let mut is_pi = vec![false; nl.num_nets()];
    for &pi in nl.inputs() {
        is_pi[pi.index()] = true;
    }
    let mut faults = Vec::with_capacity(nl.num_nets() * 2);
    for (idx, &pi) in is_pi.iter().enumerate() {
        let net = NetId::from_index(idx);
        // only consider observable nets: driven nets and primary inputs
        if nl.net(net).driver.is_some() || pi {
            faults.push(Fault::stuck_at(net, false));
            faults.push(Fault::stuck_at(net, true));
        }
    }
    faults
}

/// Combinational fault simulator.
///
/// Scalar fault injection ([`FaultSim::eval_with_faults`]) stays
/// available for transient multi-fault campaigns; the grading entry
/// points ([`FaultSim::detects`], [`FaultSim::coverage`]) delegate to
/// the bit-parallel, fault-dropping [`PackedFaultSim`] engine and are
/// bit-identical to the retained scalar reference
/// ([`FaultSim::coverage_scalar`]).
#[derive(Debug)]
pub struct FaultSim<'a> {
    nl: &'a Netlist,
    order: Vec<seceda_netlist::GateId>,
    engine: PackedFaultSim<'a>,
    /// Packed good values of the most recent [`FaultSim::detects`]
    /// pattern: a detect-loop over a fault list simulates the good
    /// circuit once instead of once per fault.
    good_cache: GoodCache,
}

impl Clone for FaultSim<'_> {
    fn clone(&self) -> Self {
        FaultSim {
            nl: self.nl,
            order: self.order.clone(),
            engine: self.engine.clone(),
            good_cache: Mutex::new(None),
        }
    }
}

impl<'a> FaultSim<'a> {
    /// Builds a fault simulator for a combinational netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] on cyclic logic.
    pub fn new(nl: &'a Netlist) -> Result<Self, NetlistError> {
        Ok(FaultSim {
            order: nl.topo_order()?,
            engine: PackedFaultSim::new(nl)?,
            good_cache: Mutex::new(None),
            nl,
        })
    }

    /// The packed grading engine backing this simulator.
    pub fn engine(&self) -> &PackedFaultSim<'a> {
        &self.engine
    }

    /// Evaluates all nets under `inputs` with `faults` active.
    ///
    /// Faults take effect at the moment the net is assigned: input faults
    /// corrupt the applied stimulus, gate-output faults corrupt the
    /// computed value.
    ///
    /// # Panics
    ///
    /// Panics on input width mismatch.
    pub fn eval_with_faults(&self, inputs: &[bool], faults: &[Fault]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.nl.inputs().len(), "input width mismatch");
        let mut forced: Vec<Option<&Fault>> = vec![None; self.nl.num_nets()];
        for f in faults {
            forced[f.net.index()] = Some(f);
        }
        let mut values = vec![false; self.nl.num_nets()];
        for (k, &pi) in self.nl.inputs().iter().enumerate() {
            let good = inputs[k];
            values[pi.index()] = match forced[pi.index()] {
                Some(f) => f.apply(good),
                None => good,
            };
        }
        let mut scratch: Vec<bool> = Vec::new();
        for &gid in &self.order {
            let g = self.nl.gate(gid);
            scratch.clear();
            scratch.extend(g.inputs.iter().map(|&i| values[i.index()]));
            let good = g.kind.eval(&scratch);
            values[g.output.index()] = match forced[g.output.index()] {
                Some(f) => f.apply(good),
                None => good,
            };
        }
        values
    }

    /// Extracts primary outputs from a per-net value vector.
    pub fn outputs(&self, values: &[bool]) -> Vec<bool> {
        self.nl
            .outputs()
            .iter()
            .map(|&(n, _)| values[n.index()])
            .collect()
    }

    /// Returns `true` if `pattern` *detects* `fault`: the faulty outputs
    /// differ from the good outputs.
    ///
    /// The good circuit's packed values are cached per pattern, so a
    /// loop over a fault list with a fixed pattern simulates the good
    /// circuit once; the faulty side re-evaluates only the fault's
    /// fan-out cone.
    pub fn detects(&self, pattern: &[bool], fault: Fault) -> bool {
        let good = {
            let mut cache = self.good_cache.lock().expect("good cache poisoned");
            match cache.as_ref() {
                Some((p, good)) if p == pattern => Arc::clone(good),
                _ => {
                    let good = Arc::new(self.engine.good_values(pattern));
                    *cache = Some((pattern.to_vec(), Arc::clone(&good)));
                    good
                }
            }
        };
        self.engine.detects_given_good(&good, fault)
    }

    /// Scalar reference for [`FaultSim::detects`]: two full circuit
    /// evaluations, no caching. Kept for differential testing.
    pub fn detects_scalar(&self, pattern: &[bool], fault: Fault) -> bool {
        let good = self.outputs(&self.eval_with_faults(pattern, &[]));
        let bad = self.outputs(&self.eval_with_faults(pattern, &[fault]));
        good != bad
    }

    /// Grades a pattern set against a fault list; returns, per fault,
    /// whether any pattern detects it, plus the overall coverage fraction.
    ///
    /// Delegates to the bit-parallel, fault-dropping, cone-restricted
    /// [`PackedFaultSim`]; the result is bit-identical to
    /// [`FaultSim::coverage_scalar`].
    pub fn coverage(&self, patterns: &[Vec<bool>], faults: &[Fault]) -> (Vec<bool>, f64) {
        self.engine.coverage(patterns, faults)
    }

    /// The scalar reference grader: re-simulates the whole netlist for
    /// every (pattern, fault) pair. O(patterns × faults × gates) — kept
    /// as the differential-testing and benchmarking baseline for
    /// [`FaultSim::coverage`].
    pub fn coverage_scalar(&self, patterns: &[Vec<bool>], faults: &[Fault]) -> (Vec<bool>, f64) {
        let mut sp = seceda_trace::span("sim.fault_coverage");
        sp.attr("patterns", patterns.len());
        sp.attr("faults", faults.len());
        sp.attr("engine", "scalar");
        let good_outputs: Vec<Vec<bool>> = patterns
            .iter()
            .map(|p| self.outputs(&self.eval_with_faults(p, &[])))
            .collect();
        let detected: Vec<bool> = faults
            .iter()
            .map(|&f| {
                patterns.iter().zip(&good_outputs).any(|(p, good)| {
                    let bad = self.outputs(&self.eval_with_faults(p, &[f]));
                    &bad != good
                })
            })
            .collect();
        let num_detected = detected.iter().filter(|&&d| d).count();
        let frac = if faults.is_empty() {
            1.0
        } else {
            num_detected as f64 / faults.len() as f64
        };
        seceda_trace::counter("sim.patterns_simulated", patterns.len() as u64);
        seceda_trace::counter("sim.faults_detected", num_detected as u64);
        sp.attr("coverage", frac);
        (detected, frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seceda_netlist::{c17, CellKind};

    #[test]
    fn stuck_at_changes_output() {
        let nl = c17();
        let sim = FaultSim::new(&nl).expect("sim");
        // G22 output stuck at 1; apply the all-zero pattern whose good
        // G22 value is 0
        let g22_net = nl.outputs()[0].0;
        let fault = Fault::stuck_at(g22_net, true);
        assert!(sim.detects(&[false; 5], fault));
    }

    #[test]
    fn bitflip_inverts() {
        let mut nl = Netlist::new("b");
        let a = nl.add_input("a");
        let y = nl.add_gate(CellKind::Buf, &[a]);
        nl.mark_output(y, "y");
        let sim = FaultSim::new(&nl).expect("sim");
        let v = sim.eval_with_faults(&[true], &[Fault::flip(y)]);
        assert!(!v[y.index()]);
        let v = sim.eval_with_faults(&[false], &[Fault::flip(a)]);
        assert!(v[y.index()]);
    }

    #[test]
    fn undetectable_without_sensitization() {
        // y = a & b; stuck-at-0 on a is undetectable with b=0
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate(CellKind::And, &[a, b]);
        nl.mark_output(y, "y");
        let sim = FaultSim::new(&nl).expect("sim");
        let f = Fault::stuck_at(a, false);
        assert!(!sim.detects(&[true, false], f));
        assert!(sim.detects(&[true, true], f));
    }

    #[test]
    fn exhaustive_patterns_reach_full_coverage_on_c17() {
        let nl = c17();
        let sim = FaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|b| (p >> b) & 1 == 1).collect())
            .collect();
        let (_, cov) = sim.coverage(&patterns, &faults);
        assert!(
            cov > 0.99,
            "c17 is fully testable with exhaustive patterns, got {cov}"
        );
    }

    #[test]
    fn empty_fault_list_is_full_coverage() {
        let nl = c17();
        let sim = FaultSim::new(&nl).expect("sim");
        let (det, cov) = sim.coverage(&[vec![false; 5]], &[]);
        assert!(det.is_empty());
        assert_eq!(cov, 1.0);
    }

    #[test]
    fn universe_covers_all_driven_nets() {
        let nl = c17();
        let faults = stuck_at_universe(&nl);
        // 5 PIs + 6 gate outputs = 11 nets, two polarities each
        assert_eq!(faults.len(), 22);
    }
}
