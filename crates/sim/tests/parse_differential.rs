//! Differential test at scale: a generated 100k-gate design exported
//! to `.bench` and parsed back must behave *bit-identically* to the
//! in-process circuit under the packed fault simulator and the signal
//! probability engine.
//!
//! A 10^6-gate parse/analyze smoke test is `#[ignore]`d by default;
//! `scripts/verify.sh` runs it when `SECEDA_VERIFY_SCALE=1`.

use seceda_netlist::{parse_bench, random_circuit, write_bench, RandomCircuitConfig};
use seceda_sim::fault::stuck_at_universe;
use seceda_sim::{signal_probabilities, FaultSim};
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

fn patterns(num: usize, width: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num)
        .map(|_| (0..width).map(|_| rng.gen_bool(0.5)).collect())
        .collect()
}

#[test]
fn parsed_100k_design_is_bit_identical() {
    let config = RandomCircuitConfig {
        num_inputs: 64,
        num_gates: 100_000,
        num_outputs: 32,
        with_xor: true,
        seed: 0xD1FF,
    };
    let original = random_circuit(&config);
    let text = write_bench(&original);
    let parsed = parse_bench(&text).expect("reparse 100k design");
    // the writer's canonical line order makes the reparse id-identical
    assert_eq!(parsed, original);

    // packed fault simulation: sampled fault universe, identical
    // detection vectors and coverage
    let universe = stuck_at_universe(&original);
    let faults: Vec<_> = universe
        .iter()
        .step_by((universe.len() / 200).max(1))
        .copied()
        .collect();
    let pats = patterns(64, config.num_inputs, 99);
    let sim_a = FaultSim::new(&original).expect("sim original");
    let sim_b = FaultSim::new(&parsed).expect("sim parsed");
    let (det_a, cov_a) = sim_a.coverage(&pats, &faults);
    let (det_b, cov_b) = sim_b.coverage(&pats, &faults);
    assert_eq!(det_a, det_b);
    assert!((cov_a - cov_b).abs() < 1e-12);

    // signal probabilities: bit-identical RNG streams, bit-identical
    // estimates per net
    let p_a = signal_probabilities(&original, 2, 5).expect("probs original");
    let p_b = signal_probabilities(&parsed, 2, 5).expect("probs parsed");
    assert_eq!(p_a, p_b);
}

/// 10^6-gate smoke: parse + topo sort + stats complete without stack
/// overflow. Ignored by default (multi-second); run via
/// `SECEDA_VERIFY_SCALE=1 scripts/verify.sh` or
/// `cargo test -p seceda-sim --test parse_differential -- --ignored`.
#[test]
#[ignore = "10^6-gate scale smoke; run with --ignored"]
fn million_gate_parse_and_topo_smoke() {
    let config = RandomCircuitConfig {
        num_inputs: 128,
        num_gates: 1_000_000,
        num_outputs: 64,
        with_xor: true,
        seed: 0x1_000_000,
    };
    let original = random_circuit(&config);
    let text = write_bench(&original);
    let parsed = parse_bench(&text).expect("reparse 1M design");
    assert_eq!(parsed.num_gates(), 1_000_000);
    let order = parsed.topo_order().expect("topo");
    assert_eq!(order.len(), 1_000_000);
    let stats = seceda_netlist::NetlistStats::of(&parsed);
    assert_eq!(stats.num_gates, 1_000_000);
    assert_eq!(parsed, original);
}
