//! Property-based tests for the simulation engines.

use seceda_netlist::{random_circuit, RandomCircuitConfig};
use seceda_sim::{pack_patterns, EventSim, Fault, FaultSim, PackedSim};
use seceda_testkit::prelude::*;

fn circuit(seed: u64, gates: usize) -> seceda_netlist::Netlist {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 5,
        num_gates: gates,
        num_outputs: 3,
        with_xor: true,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn packed_simulation_matches_scalar(seed in 0u64..5000, gates in 2usize..60) {
        let nl = circuit(seed, gates);
        let sim = PackedSim::new(&nl).expect("sim");
        let patterns: Vec<Vec<bool>> = (0..32u32)
            .map(|p| (0..5).map(|b| (p >> b) & 1 == 1).collect())
            .collect();
        let words = pack_patterns(&patterns, 5);
        let nets = sim.eval(&words);
        let outs = sim.outputs(&nets);
        for (p, pattern) in patterns.iter().enumerate() {
            let scalar = nl.evaluate(pattern);
            for (o, &word) in outs.iter().enumerate() {
                prop_assert_eq!((word >> p) & 1 == 1, scalar[o]);
            }
        }
    }

    #[test]
    fn event_simulation_settles_to_dc_values(
        seed in 0u64..5000,
        gates in 2usize..40,
        from_bits in 0u32..32,
        to_bits in 0u32..32,
    ) {
        let nl = circuit(seed, gates);
        let sim = EventSim::new(&nl).expect("sim");
        let from: Vec<bool> = (0..5).map(|b| (from_bits >> b) & 1 == 1).collect();
        let to: Vec<bool> = (0..5).map(|b| (to_bits >> b) & 1 == 1).collect();
        // the internal debug assertion compares against the DC solution;
        // additionally check the report is self-consistent
        let report = sim.transition(&from, &to);
        let total: usize = report.toggles.iter().sum();
        prop_assert_eq!(total, report.events.len());
        prop_assert!(report.glitch_toggles <= report.events.len());
        if from == to {
            prop_assert!(report.events.is_empty());
        }
    }

    #[test]
    fn double_fault_on_same_net_is_single_fault(seed in 0u64..2000, gates in 2usize..30) {
        // applying the same bit-flip fault twice in the list must behave
        // like applying it once (the map keeps one override per net)
        let nl = circuit(seed, gates);
        let sim = FaultSim::new(&nl).expect("sim");
        let victim = nl.gates()[0].output;
        let inputs = vec![true, false, true, false, true];
        let once = sim.eval_with_faults(&inputs, &[Fault::flip(victim)]);
        let twice = sim.eval_with_faults(&inputs, &[Fault::flip(victim), Fault::flip(victim)]);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn stuck_at_dominates_value(seed in 0u64..2000, gates in 2usize..30, v in any::<bool>()) {
        let nl = circuit(seed, gates);
        let sim = FaultSim::new(&nl).expect("sim");
        let victim = nl.gates()[gates / 2].output;
        let inputs = vec![false, true, true, false, true];
        let values = sim.eval_with_faults(&inputs, &[Fault::stuck_at(victim, v)]);
        prop_assert_eq!(values[victim.index()], v);
    }
}
