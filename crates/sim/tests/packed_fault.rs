//! Differential tests for the packed fault-grading engine.
//!
//! [`FaultSim::coverage`] delegates to the bit-parallel, fault-dropping,
//! cone-restricted [`PackedFaultSim`]; these tests pin it to the scalar
//! reference ([`FaultSim::coverage_scalar`] / [`FaultSim::detects_scalar`])
//! with *exact* equality — same detected vector, same coverage fraction —
//! on random netlists, on every built-in bench circuit, and across
//! worker counts.

use seceda_netlist::{
    alu_slice, c17, comparator, majority, parity_tree, random_circuit, ripple_adder, Netlist,
    RandomCircuitConfig,
};
use seceda_sim::{fault::stuck_at_universe, Fault, FaultSim, PackedFaultSim};
use seceda_testkit::par;
use seceda_testkit::prelude::*;
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

fn circuit(seed: u64, gates: usize) -> Netlist {
    random_circuit(&RandomCircuitConfig {
        num_inputs: 5,
        num_gates: gates,
        num_outputs: 3,
        with_xor: true,
        seed,
    })
}

fn random_patterns(nl: &Netlist, n: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..nl.inputs().len()).map(|_| rng.gen()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    #[test]
    fn packed_coverage_matches_scalar_exactly(seed in 0u64..5000, gates in 2usize..50) {
        let nl = circuit(seed, gates);
        let sim = FaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        // 70 patterns forces a partial second packed batch (64 + 6)
        let patterns = random_patterns(&nl, 70, seed ^ 0xABCD);
        prop_assert_eq!(
            sim.coverage(&patterns, &faults),
            sim.coverage_scalar(&patterns, &faults)
        );
    }

    #[test]
    fn packed_detects_matches_scalar_incl_bitflips(seed in 0u64..5000, gates in 2usize..40) {
        let nl = circuit(seed, gates);
        let sim = FaultSim::new(&nl).expect("sim");
        let pattern = random_patterns(&nl, 1, seed.wrapping_mul(31)).remove(0);
        let mut faults = stuck_at_universe(&nl);
        faults.extend(nl.gates().iter().map(|g| Fault::flip(g.output)));
        for &f in &faults {
            prop_assert_eq!(sim.detects(&pattern, f), sim.detects_scalar(&pattern, f));
        }
    }

    #[test]
    fn lane256_matches_u64_reference(seed in 0u64..5000, gates in 2usize..50) {
        let nl = circuit(seed, gates);
        let engine = PackedFaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        // pattern counts straddling every chunking mode: fault-group
        // (<=64), partial wide (65..=255), and full wide (256+)
        for n in [1usize, 63, 64, 65, 200, 256, 300] {
            let patterns = random_patterns(&nl, n, seed ^ (n as u64) << 8);
            prop_assert_eq!(
                engine.coverage(&patterns, &faults),
                engine.coverage_u64(&patterns, &faults),
                "pattern count {}", n
            );
        }
    }

    #[test]
    fn worker_count_does_not_change_results(seed in 0u64..2000, gates in 2usize..40) {
        let nl = circuit(seed, gates);
        let sim = FaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        let patterns = random_patterns(&nl, 24, seed);
        let serial = par::with_workers(1, || sim.coverage(&patterns, &faults));
        let parallel = par::with_workers(4, || sim.coverage(&patterns, &faults));
        prop_assert_eq!(serial, parallel);
    }
}

#[test]
fn packed_matches_scalar_on_every_bench_circuit() {
    let circuits: Vec<(&str, Netlist)> = vec![
        ("c17", c17()),
        ("ripple_adder", ripple_adder(8)),
        ("comparator", comparator(6)),
        ("parity_tree", parity_tree(8)),
        ("majority", majority()),
        ("alu_slice", alu_slice(4)),
    ];
    for (name, nl) in circuits {
        let sim = FaultSim::new(&nl).expect("sim");
        let engine = PackedFaultSim::new(&nl).expect("sim");
        let faults = stuck_at_universe(&nl);
        let patterns = random_patterns(&nl, 80, 7);
        let packed = sim.coverage(&patterns, &faults);
        let scalar = sim.coverage_scalar(&patterns, &faults);
        assert_eq!(packed, scalar, "packed != scalar on {name}");
        let u64_ref = engine.coverage_u64(&patterns, &faults);
        assert_eq!(packed, u64_ref, "lane256 != u64 reference on {name}");
    }
}
