//! Cell library: the gate kinds understood by the whole toolkit.

use crate::id::NetId;
use std::fmt;

/// The kind of a gate instance.
///
/// All combinational kinds except [`CellKind::Mux`] accept an arbitrary
/// number of inputs (≥1 for `Buf`/`Not`, ≥2 for the others); technology
/// mapping in `seceda-synth` decomposes wide gates into 2-input cells.
/// [`CellKind::Dff`] is the single sequential element: one data input,
/// sampled on the (implicit) global clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellKind {
    /// Constant logic 0 (no inputs).
    Const0,
    /// Constant logic 1 (no inputs).
    Const1,
    /// Buffer: output equals its single input.
    Buf,
    /// Inverter.
    Not,
    /// N-ary AND.
    And,
    /// N-ary NAND.
    Nand,
    /// N-ary OR.
    Or,
    /// N-ary NOR.
    Nor,
    /// N-ary XOR (odd parity).
    Xor,
    /// N-ary XNOR (even parity).
    Xnor,
    /// 2:1 multiplexer; inputs are `[sel, a, b]`, output is `sel ? b : a`.
    Mux,
    /// D flip-flop; input `[d]`, output is the registered value.
    Dff,
}

impl CellKind {
    /// All cell kinds, in a stable order (useful for histograms).
    pub const ALL: [CellKind; 12] = [
        CellKind::Const0,
        CellKind::Const1,
        CellKind::Buf,
        CellKind::Not,
        CellKind::And,
        CellKind::Nand,
        CellKind::Or,
        CellKind::Nor,
        CellKind::Xor,
        CellKind::Xnor,
        CellKind::Mux,
        CellKind::Dff,
    ];

    /// Returns `true` for the D flip-flop.
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// Returns the valid input arity range `(min, max)` for this kind,
    /// where `max == usize::MAX` means unbounded.
    pub fn arity(self) -> (usize, usize) {
        match self {
            CellKind::Const0 | CellKind::Const1 => (0, 0),
            CellKind::Buf | CellKind::Not | CellKind::Dff => (1, 1),
            CellKind::Mux => (3, 3),
            _ => (2, usize::MAX),
        }
    }

    /// Evaluates the cell function over `inputs`.
    ///
    /// For [`CellKind::Dff`] this returns the data input (the "next state"
    /// function); sequential timing is the simulator's responsibility.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` violates [`CellKind::arity`].
    pub fn eval(self, inputs: &[bool]) -> bool {
        let (lo, hi) = self.arity();
        assert!(
            inputs.len() >= lo && inputs.len() <= hi,
            "{self} expects between {lo} and {hi} inputs, got {}",
            inputs.len()
        );
        match self {
            CellKind::Const0 => false,
            CellKind::Const1 => true,
            CellKind::Buf | CellKind::Dff => inputs[0],
            CellKind::Not => !inputs[0],
            CellKind::And => inputs.iter().all(|&x| x),
            CellKind::Nand => !inputs.iter().all(|&x| x),
            CellKind::Or => inputs.iter().any(|&x| x),
            CellKind::Nor => !inputs.iter().any(|&x| x),
            CellKind::Xor => inputs.iter().fold(false, |acc, &x| acc ^ x),
            CellKind::Xnor => !inputs.iter().fold(false, |acc, &x| acc ^ x),
            CellKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// Area of a 2-input instance in gate equivalents (1 GE = one NAND2).
    ///
    /// N-ary instances are costed as a tree of 2-input cells by
    /// [`crate::NetlistStats`].
    pub fn area_ge(self) -> f64 {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0.0,
            CellKind::Buf => 0.5,
            CellKind::Not => 0.5,
            CellKind::And | CellKind::Or => 1.5,
            CellKind::Nand | CellKind::Nor => 1.0,
            CellKind::Xor | CellKind::Xnor => 2.5,
            CellKind::Mux => 2.5,
            CellKind::Dff => 6.0,
        }
    }

    /// Nominal propagation delay of a 2-input instance, in arbitrary
    /// delay units (1.0 = one NAND2 delay).
    pub fn delay(self) -> f64 {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0.0,
            CellKind::Buf => 0.5,
            CellKind::Not => 0.5,
            CellKind::Nand | CellKind::Nor => 1.0,
            CellKind::And | CellKind::Or => 1.5,
            CellKind::Xor | CellKind::Xnor => 2.0,
            CellKind::Mux => 2.0,
            CellKind::Dff => 1.0,
        }
    }

    /// Parses the text-format mnemonic produced by [`fmt::Display`].
    pub fn from_mnemonic(s: &str) -> Option<CellKind> {
        Some(match s {
            "const0" => CellKind::Const0,
            "const1" => CellKind::Const1,
            "buf" => CellKind::Buf,
            "not" => CellKind::Not,
            "and" => CellKind::And,
            "nand" => CellKind::Nand,
            "or" => CellKind::Or,
            "nor" => CellKind::Nor,
            "xor" => CellKind::Xor,
            "xnor" => CellKind::Xnor,
            "mux" => CellKind::Mux,
            "dff" => CellKind::Dff,
            _ => return None,
        })
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Const0 => "const0",
            CellKind::Const1 => "const1",
            CellKind::Buf => "buf",
            CellKind::Not => "not",
            CellKind::And => "and",
            CellKind::Nand => "nand",
            CellKind::Or => "or",
            CellKind::Nor => "nor",
            CellKind::Xor => "xor",
            CellKind::Xnor => "xnor",
            CellKind::Mux => "mux",
            CellKind::Dff => "dff",
        };
        f.write_str(s)
    }
}

/// Security-relevant markers attached to a gate by analysis and
/// countermeasure passes.
///
/// Classical EDA has no such notion; `seceda` passes use these tags to
/// communicate constraints (e.g. [`GateTags::no_reassoc`] is the ordering
/// barrier that keeps private-circuit XOR trees intact — see Fig. 2 of the
/// paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct GateTags {
    /// Synthesis must not re-associate or merge this gate with its
    /// neighbours (ordering barrier for masking schemes).
    pub no_reassoc: bool,
    /// This gate was inserted by a logic-locking pass (key gate).
    pub key_gate: bool,
    /// This gate is part of a security monitor / sensor and must survive
    /// optimization.
    pub monitor: bool,
    /// This gate carries a secret-dependent signal (taint from IFT).
    pub tainted: bool,
    /// This gate belongs to redundancy inserted by an FIA countermeasure.
    pub redundancy: bool,
}

impl GateTags {
    /// Tags with every marker cleared (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if the gate must not be touched by optimization.
    pub fn is_protected(&self) -> bool {
        self.no_reassoc || self.key_gate || self.monitor || self.redundancy
    }
}

/// A gate instance: a cell kind, its input nets, and its output net.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Gate {
    /// The cell function.
    pub kind: CellKind,
    /// Input nets, in positional order (see [`CellKind`] for semantics).
    pub inputs: Vec<NetId>,
    /// The single output net driven by this gate.
    pub output: NetId,
    /// Security markers.
    pub tags: GateTags,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        assert!(!CellKind::And.eval(&[true, false]));
        assert!(CellKind::And.eval(&[true, true, true]));
        assert!(CellKind::Nand.eval(&[true, false]));
        assert!(CellKind::Or.eval(&[false, true]));
        assert!(!CellKind::Nor.eval(&[false, true]));
        assert!(CellKind::Xor.eval(&[true, true, true]));
        assert!(!CellKind::Xor.eval(&[true, true]));
        assert!(CellKind::Xnor.eval(&[true, true]));
        assert!(!CellKind::Not.eval(&[true]));
        assert!(CellKind::Buf.eval(&[true]));
        assert!(!CellKind::Const0.eval(&[]));
        assert!(CellKind::Const1.eval(&[]));
    }

    #[test]
    fn mux_selects() {
        // inputs = [sel, a, b]; sel ? b : a
        assert!(!CellKind::Mux.eval(&[false, false, true]));
        assert!(CellKind::Mux.eval(&[true, false, true]));
        assert!(CellKind::Mux.eval(&[false, true, false]));
    }

    #[test]
    #[should_panic(expected = "expects between")]
    fn arity_checked() {
        CellKind::And.eval(&[true]);
    }

    #[test]
    fn mnemonic_roundtrip() {
        for kind in CellKind::ALL {
            assert_eq!(CellKind::from_mnemonic(&kind.to_string()), Some(kind));
        }
        assert_eq!(CellKind::from_mnemonic("bogus"), None);
    }

    #[test]
    fn protected_tags() {
        let mut tags = GateTags::new();
        assert!(!tags.is_protected());
        tags.no_reassoc = true;
        assert!(tags.is_protected());
        let tags = GateTags {
            monitor: true,
            ..GateTags::default()
        };
        assert!(tags.is_protected());
    }
}
