//! Cell library: the gate kinds understood by the whole toolkit.

use crate::id::NetId;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// The kind of a gate instance.
///
/// All combinational kinds except [`CellKind::Mux`] accept an arbitrary
/// number of inputs (≥1 for `Buf`/`Not`, ≥2 for the others); technology
/// mapping in `seceda-synth` decomposes wide gates into 2-input cells.
/// [`CellKind::Dff`] is the single sequential element: one data input,
/// sampled on the (implicit) global clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellKind {
    /// Constant logic 0 (no inputs).
    Const0,
    /// Constant logic 1 (no inputs).
    Const1,
    /// Buffer: output equals its single input.
    Buf,
    /// Inverter.
    Not,
    /// N-ary AND.
    And,
    /// N-ary NAND.
    Nand,
    /// N-ary OR.
    Or,
    /// N-ary NOR.
    Nor,
    /// N-ary XOR (odd parity).
    Xor,
    /// N-ary XNOR (even parity).
    Xnor,
    /// 2:1 multiplexer; inputs are `[sel, a, b]`, output is `sel ? b : a`.
    Mux,
    /// D flip-flop; input `[d]`, output is the registered value.
    Dff,
}

impl CellKind {
    /// All cell kinds, in a stable order (useful for histograms).
    pub const ALL: [CellKind; 12] = [
        CellKind::Const0,
        CellKind::Const1,
        CellKind::Buf,
        CellKind::Not,
        CellKind::And,
        CellKind::Nand,
        CellKind::Or,
        CellKind::Nor,
        CellKind::Xor,
        CellKind::Xnor,
        CellKind::Mux,
        CellKind::Dff,
    ];

    /// Returns `true` for the D flip-flop.
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// Returns the valid input arity range `(min, max)` for this kind,
    /// where `max == usize::MAX` means unbounded.
    pub fn arity(self) -> (usize, usize) {
        match self {
            CellKind::Const0 | CellKind::Const1 => (0, 0),
            CellKind::Buf | CellKind::Not | CellKind::Dff => (1, 1),
            CellKind::Mux => (3, 3),
            _ => (2, usize::MAX),
        }
    }

    /// Evaluates the cell function over `inputs`.
    ///
    /// For [`CellKind::Dff`] this returns the data input (the "next state"
    /// function); sequential timing is the simulator's responsibility.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` violates [`CellKind::arity`].
    pub fn eval(self, inputs: &[bool]) -> bool {
        let (lo, hi) = self.arity();
        assert!(
            inputs.len() >= lo && inputs.len() <= hi,
            "{self} expects between {lo} and {hi} inputs, got {}",
            inputs.len()
        );
        match self {
            CellKind::Const0 => false,
            CellKind::Const1 => true,
            CellKind::Buf | CellKind::Dff => inputs[0],
            CellKind::Not => !inputs[0],
            CellKind::And => inputs.iter().all(|&x| x),
            CellKind::Nand => !inputs.iter().all(|&x| x),
            CellKind::Or => inputs.iter().any(|&x| x),
            CellKind::Nor => !inputs.iter().any(|&x| x),
            CellKind::Xor => inputs.iter().fold(false, |acc, &x| acc ^ x),
            CellKind::Xnor => !inputs.iter().fold(false, |acc, &x| acc ^ x),
            CellKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// Area of a 2-input instance in gate equivalents (1 GE = one NAND2).
    ///
    /// N-ary instances are costed as a tree of 2-input cells by
    /// [`crate::NetlistStats`].
    pub fn area_ge(self) -> f64 {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0.0,
            CellKind::Buf => 0.5,
            CellKind::Not => 0.5,
            CellKind::And | CellKind::Or => 1.5,
            CellKind::Nand | CellKind::Nor => 1.0,
            CellKind::Xor | CellKind::Xnor => 2.5,
            CellKind::Mux => 2.5,
            CellKind::Dff => 6.0,
        }
    }

    /// Nominal propagation delay of a 2-input instance, in arbitrary
    /// delay units (1.0 = one NAND2 delay).
    pub fn delay(self) -> f64 {
        match self {
            CellKind::Const0 | CellKind::Const1 => 0.0,
            CellKind::Buf => 0.5,
            CellKind::Not => 0.5,
            CellKind::Nand | CellKind::Nor => 1.0,
            CellKind::And | CellKind::Or => 1.5,
            CellKind::Xor | CellKind::Xnor => 2.0,
            CellKind::Mux => 2.0,
            CellKind::Dff => 1.0,
        }
    }

    /// Parses the text-format mnemonic produced by [`fmt::Display`].
    pub fn from_mnemonic(s: &str) -> Option<CellKind> {
        Some(match s {
            "const0" => CellKind::Const0,
            "const1" => CellKind::Const1,
            "buf" => CellKind::Buf,
            "not" => CellKind::Not,
            "and" => CellKind::And,
            "nand" => CellKind::Nand,
            "or" => CellKind::Or,
            "nor" => CellKind::Nor,
            "xor" => CellKind::Xor,
            "xnor" => CellKind::Xnor,
            "mux" => CellKind::Mux,
            "dff" => CellKind::Dff,
            _ => return None,
        })
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Const0 => "const0",
            CellKind::Const1 => "const1",
            CellKind::Buf => "buf",
            CellKind::Not => "not",
            CellKind::And => "and",
            CellKind::Nand => "nand",
            CellKind::Or => "or",
            CellKind::Nor => "nor",
            CellKind::Xor => "xor",
            CellKind::Xnor => "xnor",
            CellKind::Mux => "mux",
            CellKind::Dff => "dff",
        };
        f.write_str(s)
    }
}

/// Security-relevant markers attached to a gate by analysis and
/// countermeasure passes.
///
/// Classical EDA has no such notion; `seceda` passes use these tags to
/// communicate constraints (e.g. [`GateTags::no_reassoc`] is the ordering
/// barrier that keeps private-circuit XOR trees intact — see Fig. 2 of the
/// paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct GateTags {
    /// Synthesis must not re-associate or merge this gate with its
    /// neighbours (ordering barrier for masking schemes).
    pub no_reassoc: bool,
    /// This gate was inserted by a logic-locking pass (key gate).
    pub key_gate: bool,
    /// This gate is part of a security monitor / sensor and must survive
    /// optimization.
    pub monitor: bool,
    /// This gate carries a secret-dependent signal (taint from IFT).
    pub tainted: bool,
    /// This gate belongs to redundancy inserted by an FIA countermeasure.
    pub redundancy: bool,
}

impl GateTags {
    /// Tags with every marker cleared (same as `Default`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if the gate must not be touched by optimization.
    pub fn is_protected(&self) -> bool {
        self.no_reassoc || self.key_gate || self.monitor || self.redundancy
    }
}

/// Number of gate inputs stored inline (without a heap allocation) by
/// [`InputList`]. Covers every fixed-arity cell (`Not`/`Buf`/`Dff` = 1,
/// `Mux` = 3) and the overwhelmingly common 2-input instances of the
/// n-ary kinds, plus the 3-input XOR/majority idioms of the adders.
pub const INLINE_INPUTS: usize = 4;

#[derive(Debug, Clone)]
enum InputRepr {
    Inline {
        len: u8,
        buf: [NetId; INLINE_INPUTS],
    },
    Heap(Vec<NetId>),
}

/// The input nets of one gate, stored inline for up to
/// [`INLINE_INPUTS`] entries and spilled to the heap only for wider
/// gates.
///
/// At 10^5–10^6 gates, per-gate `Vec<NetId>` allocations dominated
/// netlist construction; this container removes them for the common
/// case while dereferencing to `[NetId]`, so existing slice-style
/// access (`g.inputs.iter()`, `g.inputs[0]`, `g.inputs.len()`) keeps
/// working unchanged.
#[derive(Clone)]
pub struct InputList(InputRepr);

impl InputList {
    /// Builds a list from a slice, choosing inline storage when it fits.
    pub fn from_slice(inputs: &[NetId]) -> Self {
        if inputs.len() <= INLINE_INPUTS {
            let mut buf = [NetId(0); INLINE_INPUTS];
            buf[..inputs.len()].copy_from_slice(inputs);
            InputList(InputRepr::Inline {
                len: inputs.len() as u8,
                buf,
            })
        } else {
            InputList(InputRepr::Heap(inputs.to_vec()))
        }
    }

    /// The inputs as a slice, in positional order.
    pub fn as_slice(&self) -> &[NetId] {
        match &self.0 {
            InputRepr::Inline { len, buf } => &buf[..*len as usize],
            InputRepr::Heap(v) => v,
        }
    }

    /// The inputs as a mutable slice (rewiring passes redirect entries
    /// in place; the arity of a gate never changes after creation).
    pub fn as_mut_slice(&mut self) -> &mut [NetId] {
        match &mut self.0 {
            InputRepr::Inline { len, buf } => &mut buf[..*len as usize],
            InputRepr::Heap(v) => v,
        }
    }
}

impl Deref for InputList {
    type Target = [NetId];
    fn deref(&self) -> &[NetId] {
        self.as_slice()
    }
}

impl DerefMut for InputList {
    fn deref_mut(&mut self) -> &mut [NetId] {
        self.as_mut_slice()
    }
}

impl From<&[NetId]> for InputList {
    fn from(inputs: &[NetId]) -> Self {
        InputList::from_slice(inputs)
    }
}

impl From<Vec<NetId>> for InputList {
    fn from(inputs: Vec<NetId>) -> Self {
        // canonicalize: short lists always live inline so equality and
        // hashing never depend on how the list was built
        InputList::from_slice(&inputs)
    }
}

impl<const N: usize> From<[NetId; N]> for InputList {
    fn from(inputs: [NetId; N]) -> Self {
        InputList::from_slice(&inputs)
    }
}

impl PartialEq for InputList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for InputList {}

impl Hash for InputList {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for InputList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<'a> IntoIterator for &'a InputList {
    type Item = &'a NetId;
    type IntoIter = std::slice::Iter<'a, NetId>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a mut InputList {
    type Item = &'a mut NetId;
    type IntoIter = std::slice::IterMut<'a, NetId>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

/// A gate instance: a cell kind, its input nets, and its output net.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Gate {
    /// The cell function.
    pub kind: CellKind,
    /// Input nets, in positional order (see [`CellKind`] for semantics).
    pub inputs: InputList,
    /// The single output net driven by this gate.
    pub output: NetId,
    /// Security markers.
    pub tags: GateTags,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        assert!(!CellKind::And.eval(&[true, false]));
        assert!(CellKind::And.eval(&[true, true, true]));
        assert!(CellKind::Nand.eval(&[true, false]));
        assert!(CellKind::Or.eval(&[false, true]));
        assert!(!CellKind::Nor.eval(&[false, true]));
        assert!(CellKind::Xor.eval(&[true, true, true]));
        assert!(!CellKind::Xor.eval(&[true, true]));
        assert!(CellKind::Xnor.eval(&[true, true]));
        assert!(!CellKind::Not.eval(&[true]));
        assert!(CellKind::Buf.eval(&[true]));
        assert!(!CellKind::Const0.eval(&[]));
        assert!(CellKind::Const1.eval(&[]));
    }

    #[test]
    fn mux_selects() {
        // inputs = [sel, a, b]; sel ? b : a
        assert!(!CellKind::Mux.eval(&[false, false, true]));
        assert!(CellKind::Mux.eval(&[true, false, true]));
        assert!(CellKind::Mux.eval(&[false, true, false]));
    }

    #[test]
    #[should_panic(expected = "expects between")]
    fn arity_checked() {
        CellKind::And.eval(&[true]);
    }

    #[test]
    fn mnemonic_roundtrip() {
        for kind in CellKind::ALL {
            assert_eq!(CellKind::from_mnemonic(&kind.to_string()), Some(kind));
        }
        assert_eq!(CellKind::from_mnemonic("bogus"), None);
    }

    #[test]
    fn input_list_inline_and_heap_agree() {
        let ids: Vec<NetId> = (0..7).map(NetId::from_index).collect();
        let short = InputList::from_slice(&ids[..3]);
        let wide = InputList::from_slice(&ids);
        assert_eq!(short.len(), 3);
        assert_eq!(wide.len(), 7);
        assert_eq!(&short[..], &ids[..3]);
        assert_eq!(&wide[..], &ids[..]);
        // canonical representation: a short Vec converts to the same
        // (inline) value as a slice build
        let via_vec: InputList = ids[..3].to_vec().into();
        assert_eq!(short, via_vec);
        let mut hs = std::collections::HashSet::new();
        hs.insert(short.clone());
        assert!(hs.contains(&via_vec));
    }

    #[test]
    fn input_list_mutation_in_place() {
        let ids: Vec<NetId> = (0..4).map(NetId::from_index).collect();
        let mut l = InputList::from_slice(&ids);
        l[2] = NetId::from_index(9);
        for x in &mut l {
            if x.index() == 9 {
                *x = NetId::from_index(11);
            }
        }
        assert_eq!(l[2], NetId::from_index(11));
    }

    #[test]
    fn protected_tags() {
        let mut tags = GateTags::new();
        assert!(!tags.is_protected());
        tags.no_reassoc = true;
        assert!(tags.is_protected());
        let tags = GateTags {
            monitor: true,
            ..GateTags::default()
        };
        assert!(tags.is_protected());
    }
}
