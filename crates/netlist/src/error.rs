//! Error type shared by fallible netlist operations.

use std::error::Error;
use std::fmt;

/// Errors produced by netlist construction, validation, and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A referenced net id does not exist in the netlist.
    UnknownNet(String),
    /// A gate was declared with an input count outside its kind's arity.
    BadArity {
        /// The offending cell kind mnemonic.
        kind: String,
        /// Number of inputs supplied.
        got: usize,
    },
    /// Two drivers were attached to the same net.
    MultipleDrivers(String),
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle,
    /// The text format could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// An input vector of the wrong width was supplied for evaluation.
    WidthMismatch {
        /// Expected number of bits.
        expected: usize,
        /// Provided number of bits.
        got: usize,
    },
    /// A design file could not be read (or its format recognized).
    Io(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNet(n) => write!(f, "unknown net {n}"),
            NetlistError::BadArity { kind, got } => {
                write!(f, "cell {kind} cannot take {got} inputs")
            }
            NetlistError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
            NetlistError::CombinationalCycle => write!(f, "combinational cycle detected"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::WidthMismatch { expected, got } => {
                write!(f, "expected {expected} input bits, got {got}")
            }
            NetlistError::Io(message) => write!(f, "io error: {message}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = NetlistError::BadArity {
            kind: "and".into(),
            got: 1,
        };
        assert_eq!(e.to_string(), "cell and cannot take 1 inputs");
        let e = NetlistError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<NetlistError>();
    }
}
