//! `seceda-netlist` — ingest a design file and print its vitals.
//!
//! ```text
//! seceda_netlist <design.{bench,v,txt}> [--write-bench <out.bench>]
//! ```
//!
//! Parses the design (format picked from the extension), reports parse
//! throughput, composition, and depth, and can re-export the design as
//! `.bench`.

use seceda_netlist::{parse_design_path, write_bench, DepthReport, NetlistStats, StructuralHash};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<&str> = None;
    let mut out_bench: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--write-bench" => {
                if i + 1 >= args.len() {
                    eprintln!("--write-bench needs a path");
                    std::process::exit(2);
                }
                out_bench = Some(&args[i + 1]);
                i += 2;
            }
            "-h" | "--help" => {
                println!(
                    "usage: seceda_netlist <design.{{bench,v,txt}}> [--write-bench <out.bench>]"
                );
                return;
            }
            other => {
                if path.is_some() {
                    eprintln!("unexpected argument `{other}`");
                    std::process::exit(2);
                }
                path = Some(other);
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: seceda_netlist <design.{{bench,v,txt}}> [--write-bench <out.bench>]");
        std::process::exit(2);
    };

    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let t0 = Instant::now();
    let nl = match parse_design_path(path) {
        Ok(nl) => nl,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };
    let parse_time = t0.elapsed();
    let t1 = Instant::now();
    let order = match nl.topo_order() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };
    let topo_time = t1.elapsed();
    let stats = NetlistStats::of(&nl);
    let depth = DepthReport::of(&nl);

    println!("design    {}", nl.name());
    println!(
        "parsed    {} bytes in {:.2} ms ({:.0} gates/s)",
        bytes,
        parse_time.as_secs_f64() * 1e3,
        stats.num_gates as f64 / parse_time.as_secs_f64().max(1e-9)
    );
    println!(
        "topo      {} comb gates in {:.2} ms",
        order.len(),
        topo_time.as_secs_f64() * 1e3
    );
    println!(
        "ports     {} inputs, {} outputs",
        stats.num_inputs, stats.num_outputs
    );
    println!(
        "gates     {} total, {} dffs, {:.1} GE",
        stats.num_gates, stats.num_dffs, stats.area_ge
    );
    for (kind, count) in &stats.by_kind {
        println!("          {kind:<7} {count}");
    }
    println!(
        "depth     {} levels, critical path {:.1} delay units",
        depth.levels, depth.critical_path
    );
    let t2 = Instant::now();
    match StructuralHash::of(&nl) {
        Ok(h) => println!(
            "digest    {} ({:.2} ms)",
            h.digest(),
            t2.elapsed().as_secs_f64() * 1e3
        ),
        Err(e) => eprintln!("digest    unavailable: {e}"),
    }

    if let Some(out) = out_bench {
        let text = write_bench(&nl);
        if let Err(e) = std::fs::write(out, text) {
            eprintln!("{out}: {e}");
            std::process::exit(1);
        }
        println!("wrote     {out}");
    }
}
