//! The [`Netlist`] container and its construction / query / evaluation API.

use crate::cell::{CellKind, Gate, GateTags, InputList};
use crate::error::NetlistError;
use crate::id::{GateId, NetId};
use crate::symbol::{Symbol, SymbolTable};

/// A single-bit signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Optional user-facing name, interned in the owning netlist's
    /// [`SymbolTable`] (primary ports always have one). Resolve it with
    /// [`Netlist::net_name`] or [`SymbolTable::resolve`].
    pub name: Option<Symbol>,
    /// The gate driving this net, if any. Primary inputs and dangling nets
    /// have no driver.
    pub driver: Option<GateId>,
}

/// Per-net fanout in compressed sparse row form: one flat load array
/// plus offsets, instead of one `Vec` per net.
///
/// Built in two O(n) passes by [`Netlist::fanout`]; at 10^6 gates this
/// replaces a million small allocations with two.
#[derive(Debug, Clone)]
pub struct Fanout {
    offsets: Vec<u32>,
    loads: Vec<GateId>,
}

impl Fanout {
    /// The gates reading `net`, in gate-creation order (a gate reading
    /// the same net through several pins appears once per pin).
    pub fn loads(&self, net: NetId) -> &[GateId] {
        let i = net.index();
        &self.loads[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total number of (net, reader) edges.
    pub fn num_edges(&self) -> usize {
        self.loads.len()
    }
}

/// A flat gate-level netlist.
///
/// The netlist owns a dense array of [`Net`]s and [`Gate`]s. Primary inputs
/// are nets without drivers registered via [`Netlist::add_input`]; primary
/// outputs are (net, name) pairs registered via [`Netlist::mark_output`].
/// The same net may be marked as several outputs and an input may directly
/// be an output.
///
/// # Example
///
/// ```
/// use seceda_netlist::{Netlist, CellKind};
///
/// let mut nl = Netlist::new("half_adder");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let sum = nl.add_gate(CellKind::Xor, &[a, b]);
/// let carry = nl.add_gate(CellKind::And, &[a, b]);
/// nl.mark_output(sum, "sum");
/// nl.mark_output(carry, "carry");
/// assert_eq!(nl.evaluate(&[true, true]), vec![false, true]);
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    symbols: SymbolTable,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<(NetId, String)>,
}

/// Structural equality: two netlists are equal when they have the same
/// design name, the same nets in the same order with the same drivers,
/// the same gates (kind, input/output ids, tags), the same primary
/// inputs (ids *and* port names), and the same primary outputs (ids and
/// port names).
///
/// Names of *internal* nets are intentionally not compared: they are
/// debugging metadata, and frontends (e.g. the `.bench` writer/parser
/// pair) may synthesize labels for unnamed nets without changing the
/// circuit.
impl PartialEq for Netlist {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.nets.len() == other.nets.len()
            && self.gates == other.gates
            && self.outputs == other.outputs
            && self.inputs == other.inputs
            && self
                .nets
                .iter()
                .zip(&other.nets)
                .all(|(a, b)| a.driver == b.driver)
            && self
                .inputs
                .iter()
                .zip(&other.inputs)
                .all(|(&a, &b)| self.net_name(a) == other.net_name(b))
    }
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            symbols: SymbolTable::new(),
            nets: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Creates an empty netlist with pre-sized net and gate arrays
    /// (parsers know the design size up front).
    pub fn with_capacity(name: impl Into<String>, nets: usize, gates: usize) -> Self {
        let mut nl = Netlist::new(name);
        nl.nets.reserve(nets);
        nl.gates.reserve(gates);
        nl
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The interned name table shared by all nets of this design.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Interns `name` in this netlist's symbol table.
    pub fn intern(&mut self, name: &str) -> Symbol {
        self.symbols.intern(name)
    }

    /// The name of `net`, if it has one.
    pub fn net_name(&self, id: NetId) -> Option<&str> {
        self.nets[id.index()].name.map(|s| self.symbols.resolve(s))
    }

    /// A printable label for `net`: its name, or `n<index>` for unnamed
    /// nets.
    pub fn net_label(&self, id: NetId) -> String {
        match self.net_name(id) {
            Some(name) => name.to_string(),
            None => id.to_string(),
        }
    }

    /// Adds a fresh, undriven, unnamed net and returns its id.
    pub fn add_net(&mut self) -> NetId {
        let id = NetId::from_index(self.nets.len());
        self.nets.push(Net {
            name: None,
            driver: None,
        });
        id
    }

    /// Adds a fresh named net (undriven) and returns its id.
    pub fn add_named_net(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net();
        let sym = self.symbols.intern(&name.into());
        self.nets[id.index()].name = Some(sym);
        id
    }

    /// Names (or renames) an existing net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn set_net_name(&mut self, net: NetId, name: &str) {
        let sym = self.symbols.intern(name);
        self.nets[net.index()].name = Some(sym);
    }

    /// Declares a new primary input with the given port name.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_named_net(name);
        self.inputs.push(id);
        id
    }

    /// Promotes an existing undriven net to a primary input (parsers
    /// see forward references to a signal before its `INPUT`
    /// declaration).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MultipleDrivers`] if the net is driven
    /// by a gate or already declared as an input.
    pub fn promote_input(&mut self, net: NetId) -> Result<(), NetlistError> {
        if self.nets[net.index()].driver.is_some() || self.inputs.contains(&net) {
            return Err(NetlistError::MultipleDrivers(self.net_label(net)));
        }
        self.inputs.push(net);
        Ok(())
    }

    /// Adds a gate of `kind` reading `inputs`, creating and returning its
    /// output net.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs violates the cell's arity or if an
    /// input id is out of range.
    pub fn add_gate(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        self.add_gate_tagged(kind, inputs, GateTags::default())
    }

    /// Like [`Netlist::add_gate`] but attaches security tags to the gate.
    pub fn add_gate_tagged(&mut self, kind: CellKind, inputs: &[NetId], tags: GateTags) -> NetId {
        let (lo, hi) = kind.arity();
        assert!(
            inputs.len() >= lo && inputs.len() <= hi,
            "cell {kind} cannot take {} inputs",
            inputs.len()
        );
        for &i in inputs {
            assert!(i.index() < self.nets.len(), "input {i} out of range");
        }
        let output = self.add_net();
        let gid = GateId::from_index(self.gates.len());
        self.gates.push(Gate {
            kind,
            inputs: InputList::from_slice(inputs),
            output,
            tags,
        });
        self.nets[output.index()].driver = Some(gid);
        output
    }

    /// Adds a gate that drives an *existing* net instead of creating a
    /// fresh one. This is the primitive behind name-based frontends,
    /// where a signal may be referenced (creating its net) before the
    /// line defining its driver is seen.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] on an input-count violation,
    /// [`NetlistError::UnknownNet`] if any id is out of range, and
    /// [`NetlistError::MultipleDrivers`] if `output` is already driven
    /// or is a primary input.
    pub fn try_add_gate_driving(
        &mut self,
        kind: CellKind,
        inputs: &[NetId],
        output: NetId,
        tags: GateTags,
    ) -> Result<GateId, NetlistError> {
        let (lo, hi) = kind.arity();
        if inputs.len() < lo || inputs.len() > hi {
            return Err(NetlistError::BadArity {
                kind: kind.to_string(),
                got: inputs.len(),
            });
        }
        for &i in inputs {
            if i.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet(i.to_string()));
            }
        }
        if output.index() >= self.nets.len() {
            return Err(NetlistError::UnknownNet(output.to_string()));
        }
        if self.nets[output.index()].driver.is_some() || self.inputs.contains(&output) {
            return Err(NetlistError::MultipleDrivers(self.net_label(output)));
        }
        let gid = GateId::from_index(self.gates.len());
        self.gates.push(Gate {
            kind,
            inputs: InputList::from_slice(inputs),
            output,
            tags,
        });
        self.nets[output.index()].driver = Some(gid);
        Ok(gid)
    }

    /// Registers `net` as a primary output under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn mark_output(&mut self, net: NetId, name: impl Into<String>) {
        assert!(net.index() < self.nets.len(), "output {net} out of range");
        self.outputs.push((net, name.into()));
    }

    /// Removes all primary-output markings (used by passes that rebuild the
    /// output interface).
    pub fn clear_outputs(&mut self) {
        self.outputs.clear();
    }

    /// Primary input nets in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as (net, port name) pairs in declaration order.
    pub fn outputs(&self) -> &[(NetId, String)] {
        &self.outputs
    }

    /// Primary output nets in declaration order.
    pub fn output_nets(&self) -> Vec<NetId> {
        self.outputs.iter().map(|&(n, _)| n).collect()
    }

    /// All gates, indexable by [`GateId::index`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All nets, indexable by [`NetId::index`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Mutable access to a gate (used by rewiring passes).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate_mut(&mut self, id: GateId) -> &mut Gate {
        &mut self.gates[id.index()]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of gate instances.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Ids of all D flip-flop gates, in creation order. The k-th entry
    /// corresponds to state bit k in [`Netlist::eval_nets`].
    pub fn dffs(&self) -> Vec<GateId> {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind.is_sequential())
            .map(|(i, _)| GateId::from_index(i))
            .collect()
    }

    /// Returns `true` if the netlist contains no sequential elements.
    pub fn is_combinational(&self) -> bool {
        self.gates.iter().all(|g| !g.kind.is_sequential())
    }

    /// Per-net fanout: for each net, the gates reading it.
    ///
    /// Allocates one `Vec` per net; prefer the CSR [`Netlist::fanout`]
    /// in code that must scale to 10^5+ gates.
    pub fn fanout_map(&self) -> Vec<Vec<GateId>> {
        let mut map = vec![Vec::new(); self.nets.len()];
        for (i, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                map[inp.index()].push(GateId::from_index(i));
            }
        }
        map
    }

    /// Per-net fanout in compressed sparse row form (two allocations
    /// total): counting pass, prefix sum, fill pass.
    pub fn fanout(&self) -> Fanout {
        let mut offsets = vec![0u32; self.nets.len() + 1];
        for g in &self.gates {
            for &inp in &g.inputs {
                offsets[inp.index() + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..self.nets.len()].to_vec();
        let mut loads = vec![GateId::from_index(0); offsets[self.nets.len()] as usize];
        for (i, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                let c = &mut cursor[inp.index()];
                loads[*c as usize] = GateId::from_index(i);
                *c += 1;
            }
        }
        Fanout { offsets, loads }
    }

    /// Topological order of the *combinational* gates (DFFs excluded; DFF
    /// outputs are treated as sources, like primary inputs).
    ///
    /// Fully iterative (Kahn's algorithm over the CSR fanout), so depth
    /// is bounded by memory, not the call stack — 10^6-gate chains sort
    /// without recursion.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// gates form a cycle.
    pub fn topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        let _t = seceda_trace::hist_timer("ir.topo_ns");
        let n = self.gates.len();
        // indegree over combinational gates: count inputs driven by comb gates
        let mut indeg = vec![0usize; n];
        let mut ready: Vec<usize> = Vec::new();
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                continue;
            }
            let d = g
                .inputs
                .iter()
                .filter(|&&inp| {
                    self.nets[inp.index()]
                        .driver
                        .map(|drv| !self.gates[drv.index()].kind.is_sequential())
                        .unwrap_or(false)
                })
                .count();
            indeg[i] = d;
            if d == 0 {
                ready.push(i);
            }
        }
        let fanout = self.fanout();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(GateId::from_index(i));
            let out = self.gates[i].output;
            for &succ in fanout.loads(out) {
                let s = succ.index();
                if self.gates[s].kind.is_sequential() {
                    continue;
                }
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        let comb_count = self
            .gates
            .iter()
            .filter(|g| !g.kind.is_sequential())
            .count();
        if order.len() != comb_count {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(order)
    }

    /// The transitive fan-in cone of `roots`: every gate on some path
    /// from a source (primary input, constant, or DFF output) to a root
    /// net, returned in ascending gate-id order.
    ///
    /// Iterative worklist traversal — no recursion, so arbitrarily deep
    /// cones of 10^5+ gates extract without stack overflow. Traversal
    /// stops at DFFs (their outputs are sources), but a DFF whose
    /// output is itself a root is included.
    pub fn fanin_cone(&self, roots: &[NetId]) -> Vec<GateId> {
        let mut in_cone = vec![false; self.gates.len()];
        let mut work: Vec<GateId> = Vec::new();
        for &root in roots {
            if let Some(gid) = self.nets[root.index()].driver {
                if !in_cone[gid.index()] {
                    in_cone[gid.index()] = true;
                    work.push(gid);
                }
            }
        }
        while let Some(gid) = work.pop() {
            let g = &self.gates[gid.index()];
            if g.kind.is_sequential() {
                continue; // state boundary: the cone stops here
            }
            for &inp in &g.inputs {
                if let Some(drv) = self.nets[inp.index()].driver {
                    if !in_cone[drv.index()] {
                        in_cone[drv.index()] = true;
                        work.push(drv);
                    }
                }
            }
        }
        let cone: Vec<GateId> = in_cone
            .iter()
            .enumerate()
            .filter(|&(_, &x)| x)
            .map(|(i, _)| GateId::from_index(i))
            .collect();
        seceda_trace::counter("ir.cone_extractions", 1);
        seceda_trace::histogram("ir.cone_gates", cone.len() as u64);
        cone
    }

    /// Evaluates every net for one cycle.
    ///
    /// `inputs` must match [`Netlist::inputs`] in length; `state` must match
    /// the number of DFFs (use `&[]` for combinational designs). Returns the
    /// value of every net; undriven internal nets read as `false`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] on wrong vector widths and
    /// [`NetlistError::CombinationalCycle`] on cyclic logic.
    pub fn eval_nets(&self, inputs: &[bool], state: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.inputs.len() {
            return Err(NetlistError::WidthMismatch {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        let dffs = self.dffs();
        if state.len() != dffs.len() {
            return Err(NetlistError::WidthMismatch {
                expected: dffs.len(),
                got: state.len(),
            });
        }
        let order = self.topo_order()?;
        let mut values = vec![false; self.nets.len()];
        for (k, &pi) in self.inputs.iter().enumerate() {
            values[pi.index()] = inputs[k];
        }
        for (k, &d) in dffs.iter().enumerate() {
            values[self.gates[d.index()].output.index()] = state[k];
        }
        let mut scratch: Vec<bool> = Vec::new();
        for gid in order {
            let g = &self.gates[gid.index()];
            scratch.clear();
            scratch.extend(g.inputs.iter().map(|&i| values[i.index()]));
            values[g.output.index()] = g.kind.eval(&scratch);
        }
        Ok(values)
    }

    /// Evaluates the primary outputs and the next DFF state for one cycle.
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_nets`].
    pub fn step(
        &self,
        inputs: &[bool],
        state: &[bool],
    ) -> Result<(Vec<bool>, Vec<bool>), NetlistError> {
        let values = self.eval_nets(inputs, state)?;
        let outputs = self
            .outputs
            .iter()
            .map(|&(n, _)| values[n.index()])
            .collect();
        let next_state = self
            .dffs()
            .iter()
            .map(|&d| values[self.gates[d.index()].inputs[0].index()])
            .collect();
        Ok((outputs, next_state))
    }

    /// Convenience: evaluates a combinational netlist's outputs.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch, cycles, or if the design is sequential.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        assert!(
            self.is_combinational(),
            "evaluate() requires a combinational netlist; use step()"
        );
        let (outs, _) = self.step(inputs, &[]).expect("evaluation failed");
        outs
    }

    /// Inserts a gate *between* `target` and all of its current loads:
    /// creates a new net `y`, redirects every gate input and primary output
    /// currently reading `target` to `y`, and adds a gate
    /// `kind(target, extra_inputs...) -> y`.
    ///
    /// This is the primitive used by logic locking (key-gate insertion),
    /// Trojan payload splicing, and sensor insertion.
    ///
    /// Returns the id of the new net `y`.
    ///
    /// # Panics
    ///
    /// Panics if arity is violated or ids are out of range.
    pub fn insert_after(
        &mut self,
        target: NetId,
        kind: CellKind,
        extra_inputs: &[NetId],
        tags: GateTags,
    ) -> NetId {
        // Redirect existing loads first, then add the new gate (which must
        // keep reading the original target).
        let mut loads: Vec<(usize, usize)> = Vec::new();
        for (gi, g) in self.gates.iter().enumerate() {
            for (pi, &inp) in g.inputs.iter().enumerate() {
                if inp == target {
                    loads.push((gi, pi));
                }
            }
        }
        let mut gate_inputs = vec![target];
        gate_inputs.extend_from_slice(extra_inputs);
        let y = self.add_gate_tagged(kind, &gate_inputs, tags);
        for (gi, pi) in loads {
            self.gates[gi].inputs[pi] = y;
        }
        for out in &mut self.outputs {
            if out.0 == target {
                out.0 = y;
            }
        }
        y
    }

    /// Replaces every *use* of `old` (gate inputs and primary-output
    /// markings) with `new`. The driver of `old` is untouched; callers
    /// typically follow up with a dead-logic sweep.
    ///
    /// # Panics
    ///
    /// Panics if either net is out of range.
    pub fn replace_net_uses(&mut self, old: NetId, new: NetId) {
        assert!(old.index() < self.nets.len(), "net {old} out of range");
        assert!(new.index() < self.nets.len(), "net {new} out of range");
        if old == new {
            return;
        }
        for g in &mut self.gates {
            for inp in &mut g.inputs {
                if *inp == old {
                    *inp = new;
                }
            }
        }
        for out in &mut self.outputs {
            if out.0 == old {
                out.0 = new;
            }
        }
    }

    /// Checks structural invariants: arity bounds, id ranges, single driver
    /// per net, and acyclicity of the combinational logic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut seen_driver = vec![false; self.nets.len()];
        for g in &self.gates {
            let (lo, hi) = g.kind.arity();
            if g.inputs.len() < lo || g.inputs.len() > hi {
                return Err(NetlistError::BadArity {
                    kind: g.kind.to_string(),
                    got: g.inputs.len(),
                });
            }
            for &i in &g.inputs {
                if i.index() >= self.nets.len() {
                    return Err(NetlistError::UnknownNet(i.to_string()));
                }
            }
            if g.output.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet(g.output.to_string()));
            }
            if seen_driver[g.output.index()] {
                return Err(NetlistError::MultipleDrivers(g.output.to_string()));
            }
            seen_driver[g.output.index()] = true;
        }
        for &pi in &self.inputs {
            if seen_driver[pi.index()] {
                return Err(NetlistError::MultipleDrivers(pi.to_string()));
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Exhaustive truth table of a small combinational netlist, one entry
    /// per input assignment in counting order (LSB = first input).
    ///
    /// # Panics
    ///
    /// Panics if the design has more than 20 inputs or is sequential.
    pub fn truth_table(&self) -> Vec<Vec<bool>> {
        let n = self.inputs.len();
        assert!(n <= 20, "truth_table limited to 20 inputs");
        let mut rows = Vec::with_capacity(1 << n);
        for pattern in 0u32..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|b| (pattern >> b) & 1 == 1).collect();
            rows.push(self.evaluate(&inputs));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let s = nl.add_gate(CellKind::Xor, &[a, b, cin]);
        let ab = nl.add_gate(CellKind::And, &[a, b]);
        let ac = nl.add_gate(CellKind::And, &[a, cin]);
        let bc = nl.add_gate(CellKind::And, &[b, cin]);
        let cout = nl.add_gate(CellKind::Or, &[ab, ac, bc]);
        nl.mark_output(s, "s");
        nl.mark_output(cout, "cout");
        nl
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        for pattern in 0..8u8 {
            let a = pattern & 1 == 1;
            let b = pattern & 2 == 2;
            let c = pattern & 4 == 4;
            let expect_sum = a ^ b ^ c;
            let expect_cout = (a & b) | (a & c) | (b & c);
            assert_eq!(
                nl.evaluate(&[a, b, c]),
                vec![expect_sum, expect_cout],
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(full_adder().validate(), Ok(()));
    }

    #[test]
    fn sequential_step_counts() {
        // 1-bit toggle counter: q' = q ^ 1
        let mut nl = Netlist::new("toggle");
        let one = nl.add_gate(CellKind::Const1, &[]);
        let q_net = nl.add_net(); // placeholder for feedback
        let next = nl.add_gate(CellKind::Xor, &[q_net, one]);
        let q = nl.add_gate(CellKind::Dff, &[next]);
        // rewire: feedback net is the dff output; replace placeholder usage
        let gid = nl.net(next).driver.expect("driver");
        nl.gate_mut(gid).inputs[0] = q;
        nl.mark_output(q, "q");
        let (out0, s1) = nl.step(&[], &[false]).expect("step");
        assert_eq!(out0, vec![false]);
        assert_eq!(s1, vec![true]);
        let (out1, s2) = nl.step(&[], &s1).expect("step");
        assert_eq!(out1, vec![true]);
        assert_eq!(s2, vec![false]);
    }

    #[test]
    fn insert_after_rewires_loads_and_outputs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(CellKind::And, &[a, b]);
        let y = nl.add_gate(CellKind::Not, &[x]);
        nl.mark_output(x, "x");
        nl.mark_output(y, "y");
        // Insert an inverter after x: x now feeds only the new gate.
        let nx = nl.insert_after(x, CellKind::Not, &[], GateTags::default());
        assert_eq!(nl.outputs()[0].0, nx);
        // The old NOT gate must now read nx instead of x.
        let not_gate = nl.net(y).driver.expect("driver");
        assert_eq!(nl.gate(not_gate).inputs[0], nx);
        // Function: out x is now !(a&b), out y is !!(a&b)
        assert_eq!(nl.evaluate(&[true, true]), vec![false, true]);
        assert_eq!(nl.evaluate(&[true, false]), vec![true, false]);
        assert_eq!(nl.validate(), Ok(()));
    }

    #[test]
    fn cycle_is_detected() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let tmp = nl.add_net();
        let x = nl.add_gate(CellKind::And, &[a, tmp]);
        let gid = nl.net(x).driver.expect("driver");
        // close the loop: x depends on itself
        nl.gate_mut(gid).inputs[1] = x;
        assert_eq!(nl.topo_order(), Err(NetlistError::CombinationalCycle));
    }

    #[test]
    fn width_mismatch_reported() {
        let nl = full_adder();
        assert!(matches!(
            nl.step(&[true], &[]),
            Err(NetlistError::WidthMismatch {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn csr_fanout_matches_map() {
        let nl = full_adder();
        let map = nl.fanout_map();
        let csr = nl.fanout();
        for i in 0..nl.num_nets() {
            assert_eq!(map[i], csr.loads(NetId::from_index(i)), "net {i}");
        }
        assert_eq!(csr.num_edges(), map.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn fanin_cone_stops_at_sources() {
        let nl = full_adder();
        // cone of the sum output: just the XOR gate
        let sum_net = nl.outputs()[0].0;
        assert_eq!(nl.fanin_cone(&[sum_net]), vec![GateId::from_index(0)]);
        // cone of cout: the three ANDs and the OR
        let cout_net = nl.outputs()[1].0;
        assert_eq!(nl.fanin_cone(&[cout_net]).len(), 4);
        // both roots: everything
        assert_eq!(nl.fanin_cone(&[sum_net, cout_net]).len(), 5);
        // a primary input has an empty cone
        assert_eq!(nl.fanin_cone(&[nl.inputs()[0]]), vec![]);
    }

    #[test]
    fn gate_driving_existing_net() {
        let mut nl = Netlist::new("fwd");
        let a = nl.add_input("a");
        let fwd = nl.add_named_net("y"); // referenced before defined
        let top = nl.add_gate(CellKind::Not, &[fwd]);
        nl.mark_output(top, "z");
        let gid = nl
            .try_add_gate_driving(CellKind::Buf, &[a], fwd, GateTags::default())
            .expect("drive forward net");
        assert_eq!(nl.net(fwd).driver, Some(gid));
        assert_eq!(nl.validate(), Ok(()));
        assert_eq!(nl.evaluate(&[true]), vec![false]);
        // a second driver on the same net is rejected
        assert_eq!(
            nl.try_add_gate_driving(CellKind::Buf, &[a], fwd, GateTags::default()),
            Err(NetlistError::MultipleDrivers("y".into()))
        );
        // driving a primary input is rejected
        assert_eq!(
            nl.try_add_gate_driving(CellKind::Not, &[fwd], a, GateTags::default()),
            Err(NetlistError::MultipleDrivers("a".into()))
        );
    }

    #[test]
    fn promote_input_checks_driver() {
        let mut nl = Netlist::new("p");
        let fwd = nl.add_named_net("x");
        assert_eq!(nl.promote_input(fwd), Ok(()));
        assert_eq!(nl.inputs(), &[fwd]);
        assert_eq!(
            nl.promote_input(fwd),
            Err(NetlistError::MultipleDrivers("x".into()))
        );
        let g = nl.add_gate(CellKind::Not, &[fwd]);
        assert!(matches!(
            nl.promote_input(g),
            Err(NetlistError::MultipleDrivers(_))
        ));
    }

    #[test]
    fn interned_names_resolve() {
        let mut nl = Netlist::new("n");
        let a = nl.add_input("a");
        let x = nl.add_gate(CellKind::Not, &[a]);
        assert_eq!(nl.net_name(a), Some("a"));
        assert_eq!(nl.net_name(x), None);
        assert_eq!(nl.net_label(a), "a");
        assert_eq!(nl.net_label(x), "n1");
        nl.set_net_name(x, "inv_a");
        assert_eq!(nl.net_name(x), Some("inv_a"));
        // interning the same string twice yields one symbol
        let mut nl2 = Netlist::new("m");
        let s1 = nl2.intern("shared");
        let s2 = nl2.intern("shared");
        assert_eq!(s1, s2);
        assert_eq!(nl2.symbols().len(), 1);
    }

    #[test]
    fn equality_ignores_internal_net_names() {
        let mut a = full_adder();
        let mut b = full_adder();
        assert_eq!(a, b);
        // naming an internal net does not break equality
        let int = a.gates()[0].output;
        a.set_net_name(int, "sum_wire");
        assert_eq!(a, b);
        // but renaming a primary input does
        let pi = b.inputs()[0];
        b.set_net_name(pi, "other");
        assert_ne!(a, b);
    }

    #[test]
    fn truth_table_size() {
        let nl = full_adder();
        let tt = nl.truth_table();
        assert_eq!(tt.len(), 8);
        assert_eq!(tt[7], vec![true, true]); // 1+1+1 = 11b
    }
}
