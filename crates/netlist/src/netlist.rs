//! The [`Netlist`] container and its construction / query / evaluation API.

use crate::cell::{CellKind, Gate, GateTags};
use crate::error::NetlistError;
use crate::id::{GateId, NetId};

/// A single-bit signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Optional user-facing name (primary ports always have one).
    pub name: Option<String>,
    /// The gate driving this net, if any. Primary inputs and dangling nets
    /// have no driver.
    pub driver: Option<GateId>,
}

/// A flat gate-level netlist.
///
/// The netlist owns a dense array of [`Net`]s and [`Gate`]s. Primary inputs
/// are nets without drivers registered via [`Netlist::add_input`]; primary
/// outputs are (net, name) pairs registered via [`Netlist::mark_output`].
/// The same net may be marked as several outputs and an input may directly
/// be an output.
///
/// # Example
///
/// ```
/// use seceda_netlist::{Netlist, CellKind};
///
/// let mut nl = Netlist::new("half_adder");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let sum = nl.add_gate(CellKind::Xor, &[a, b]);
/// let carry = nl.add_gate(CellKind::And, &[a, b]);
/// nl.mark_output(sum, "sum");
/// nl.mark_output(carry, "carry");
/// assert_eq!(nl.evaluate(&[true, true]), vec![false, true]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<(NetId, String)>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nets: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a fresh, undriven, unnamed net and returns its id.
    pub fn add_net(&mut self) -> NetId {
        let id = NetId::from_index(self.nets.len());
        self.nets.push(Net {
            name: None,
            driver: None,
        });
        id
    }

    /// Adds a fresh named net (undriven) and returns its id.
    pub fn add_named_net(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net();
        self.nets[id.index()].name = Some(name.into());
        id
    }

    /// Declares a new primary input with the given port name.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_named_net(name);
        self.inputs.push(id);
        id
    }

    /// Adds a gate of `kind` reading `inputs`, creating and returning its
    /// output net.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs violates the cell's arity or if an
    /// input id is out of range.
    pub fn add_gate(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        self.add_gate_tagged(kind, inputs, GateTags::default())
    }

    /// Like [`Netlist::add_gate`] but attaches security tags to the gate.
    pub fn add_gate_tagged(&mut self, kind: CellKind, inputs: &[NetId], tags: GateTags) -> NetId {
        let (lo, hi) = kind.arity();
        assert!(
            inputs.len() >= lo && inputs.len() <= hi,
            "cell {kind} cannot take {} inputs",
            inputs.len()
        );
        for &i in inputs {
            assert!(i.index() < self.nets.len(), "input {i} out of range");
        }
        let output = self.add_net();
        let gid = GateId::from_index(self.gates.len());
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            tags,
        });
        self.nets[output.index()].driver = Some(gid);
        output
    }

    /// Registers `net` as a primary output under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn mark_output(&mut self, net: NetId, name: impl Into<String>) {
        assert!(net.index() < self.nets.len(), "output {net} out of range");
        self.outputs.push((net, name.into()));
    }

    /// Removes all primary-output markings (used by passes that rebuild the
    /// output interface).
    pub fn clear_outputs(&mut self) {
        self.outputs.clear();
    }

    /// Primary input nets in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as (net, port name) pairs in declaration order.
    pub fn outputs(&self) -> &[(NetId, String)] {
        &self.outputs
    }

    /// Primary output nets in declaration order.
    pub fn output_nets(&self) -> Vec<NetId> {
        self.outputs.iter().map(|&(n, _)| n).collect()
    }

    /// All gates, indexable by [`GateId::index`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// All nets, indexable by [`NetId::index`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Mutable access to a gate (used by rewiring passes).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate_mut(&mut self, id: GateId) -> &mut Gate {
        &mut self.gates[id.index()]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of gate instances.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Ids of all D flip-flop gates, in creation order. The k-th entry
    /// corresponds to state bit k in [`Netlist::eval_nets`].
    pub fn dffs(&self) -> Vec<GateId> {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind.is_sequential())
            .map(|(i, _)| GateId::from_index(i))
            .collect()
    }

    /// Returns `true` if the netlist contains no sequential elements.
    pub fn is_combinational(&self) -> bool {
        self.gates.iter().all(|g| !g.kind.is_sequential())
    }

    /// Per-net fanout: for each net, the gates reading it.
    pub fn fanout_map(&self) -> Vec<Vec<GateId>> {
        let mut map = vec![Vec::new(); self.nets.len()];
        for (i, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                map[inp.index()].push(GateId::from_index(i));
            }
        }
        map
    }

    /// Topological order of the *combinational* gates (DFFs excluded; DFF
    /// outputs are treated as sources, like primary inputs).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// gates form a cycle.
    pub fn topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        let n = self.gates.len();
        // indegree over combinational gates: count inputs driven by comb gates
        let mut indeg = vec![0usize; n];
        let mut ready: Vec<usize> = Vec::new();
        for (i, g) in self.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                continue;
            }
            let d = g
                .inputs
                .iter()
                .filter(|&&inp| {
                    self.nets[inp.index()]
                        .driver
                        .map(|drv| !self.gates[drv.index()].kind.is_sequential())
                        .unwrap_or(false)
                })
                .count();
            indeg[i] = d;
            if d == 0 {
                ready.push(i);
            }
        }
        let fanout = self.fanout_map();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(GateId::from_index(i));
            let out = self.gates[i].output;
            for &succ in &fanout[out.index()] {
                let s = succ.index();
                if self.gates[s].kind.is_sequential() {
                    continue;
                }
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        let comb_count = self
            .gates
            .iter()
            .filter(|g| !g.kind.is_sequential())
            .count();
        if order.len() != comb_count {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(order)
    }

    /// Evaluates every net for one cycle.
    ///
    /// `inputs` must match [`Netlist::inputs`] in length; `state` must match
    /// the number of DFFs (use `&[]` for combinational designs). Returns the
    /// value of every net; undriven internal nets read as `false`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WidthMismatch`] on wrong vector widths and
    /// [`NetlistError::CombinationalCycle`] on cyclic logic.
    pub fn eval_nets(&self, inputs: &[bool], state: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.inputs.len() {
            return Err(NetlistError::WidthMismatch {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        let dffs = self.dffs();
        if state.len() != dffs.len() {
            return Err(NetlistError::WidthMismatch {
                expected: dffs.len(),
                got: state.len(),
            });
        }
        let order = self.topo_order()?;
        let mut values = vec![false; self.nets.len()];
        for (k, &pi) in self.inputs.iter().enumerate() {
            values[pi.index()] = inputs[k];
        }
        for (k, &d) in dffs.iter().enumerate() {
            values[self.gates[d.index()].output.index()] = state[k];
        }
        let mut scratch: Vec<bool> = Vec::new();
        for gid in order {
            let g = &self.gates[gid.index()];
            scratch.clear();
            scratch.extend(g.inputs.iter().map(|&i| values[i.index()]));
            values[g.output.index()] = g.kind.eval(&scratch);
        }
        Ok(values)
    }

    /// Evaluates the primary outputs and the next DFF state for one cycle.
    ///
    /// # Errors
    ///
    /// See [`Netlist::eval_nets`].
    pub fn step(
        &self,
        inputs: &[bool],
        state: &[bool],
    ) -> Result<(Vec<bool>, Vec<bool>), NetlistError> {
        let values = self.eval_nets(inputs, state)?;
        let outputs = self
            .outputs
            .iter()
            .map(|&(n, _)| values[n.index()])
            .collect();
        let next_state = self
            .dffs()
            .iter()
            .map(|&d| values[self.gates[d.index()].inputs[0].index()])
            .collect();
        Ok((outputs, next_state))
    }

    /// Convenience: evaluates a combinational netlist's outputs.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch, cycles, or if the design is sequential.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        assert!(
            self.is_combinational(),
            "evaluate() requires a combinational netlist; use step()"
        );
        let (outs, _) = self.step(inputs, &[]).expect("evaluation failed");
        outs
    }

    /// Inserts a gate *between* `target` and all of its current loads:
    /// creates a new net `y`, redirects every gate input and primary output
    /// currently reading `target` to `y`, and adds a gate
    /// `kind(target, extra_inputs...) -> y`.
    ///
    /// This is the primitive used by logic locking (key-gate insertion),
    /// Trojan payload splicing, and sensor insertion.
    ///
    /// Returns the id of the new net `y`.
    ///
    /// # Panics
    ///
    /// Panics if arity is violated or ids are out of range.
    pub fn insert_after(
        &mut self,
        target: NetId,
        kind: CellKind,
        extra_inputs: &[NetId],
        tags: GateTags,
    ) -> NetId {
        // Redirect existing loads first, then add the new gate (which must
        // keep reading the original target).
        let mut loads: Vec<(usize, usize)> = Vec::new();
        for (gi, g) in self.gates.iter().enumerate() {
            for (pi, &inp) in g.inputs.iter().enumerate() {
                if inp == target {
                    loads.push((gi, pi));
                }
            }
        }
        let mut gate_inputs = vec![target];
        gate_inputs.extend_from_slice(extra_inputs);
        let y = self.add_gate_tagged(kind, &gate_inputs, tags);
        for (gi, pi) in loads {
            self.gates[gi].inputs[pi] = y;
        }
        for out in &mut self.outputs {
            if out.0 == target {
                out.0 = y;
            }
        }
        y
    }

    /// Replaces every *use* of `old` (gate inputs and primary-output
    /// markings) with `new`. The driver of `old` is untouched; callers
    /// typically follow up with a dead-logic sweep.
    ///
    /// # Panics
    ///
    /// Panics if either net is out of range.
    pub fn replace_net_uses(&mut self, old: NetId, new: NetId) {
        assert!(old.index() < self.nets.len(), "net {old} out of range");
        assert!(new.index() < self.nets.len(), "net {new} out of range");
        if old == new {
            return;
        }
        for g in &mut self.gates {
            for inp in &mut g.inputs {
                if *inp == old {
                    *inp = new;
                }
            }
        }
        for out in &mut self.outputs {
            if out.0 == old {
                out.0 = new;
            }
        }
    }

    /// Checks structural invariants: arity bounds, id ranges, single driver
    /// per net, and acyclicity of the combinational logic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let mut seen_driver = vec![false; self.nets.len()];
        for g in &self.gates {
            let (lo, hi) = g.kind.arity();
            if g.inputs.len() < lo || g.inputs.len() > hi {
                return Err(NetlistError::BadArity {
                    kind: g.kind.to_string(),
                    got: g.inputs.len(),
                });
            }
            for &i in &g.inputs {
                if i.index() >= self.nets.len() {
                    return Err(NetlistError::UnknownNet(i.to_string()));
                }
            }
            if g.output.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet(g.output.to_string()));
            }
            if seen_driver[g.output.index()] {
                return Err(NetlistError::MultipleDrivers(g.output.to_string()));
            }
            seen_driver[g.output.index()] = true;
        }
        for &pi in &self.inputs {
            if seen_driver[pi.index()] {
                return Err(NetlistError::MultipleDrivers(pi.to_string()));
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Exhaustive truth table of a small combinational netlist, one entry
    /// per input assignment in counting order (LSB = first input).
    ///
    /// # Panics
    ///
    /// Panics if the design has more than 20 inputs or is sequential.
    pub fn truth_table(&self) -> Vec<Vec<bool>> {
        let n = self.inputs.len();
        assert!(n <= 20, "truth_table limited to 20 inputs");
        let mut rows = Vec::with_capacity(1 << n);
        for pattern in 0u32..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|b| (pattern >> b) & 1 == 1).collect();
            rows.push(self.evaluate(&inputs));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let s = nl.add_gate(CellKind::Xor, &[a, b, cin]);
        let ab = nl.add_gate(CellKind::And, &[a, b]);
        let ac = nl.add_gate(CellKind::And, &[a, cin]);
        let bc = nl.add_gate(CellKind::And, &[b, cin]);
        let cout = nl.add_gate(CellKind::Or, &[ab, ac, bc]);
        nl.mark_output(s, "s");
        nl.mark_output(cout, "cout");
        nl
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        for pattern in 0..8u8 {
            let a = pattern & 1 == 1;
            let b = pattern & 2 == 2;
            let c = pattern & 4 == 4;
            let expect_sum = a ^ b ^ c;
            let expect_cout = (a & b) | (a & c) | (b & c);
            assert_eq!(
                nl.evaluate(&[a, b, c]),
                vec![expect_sum, expect_cout],
                "pattern {pattern}"
            );
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(full_adder().validate(), Ok(()));
    }

    #[test]
    fn sequential_step_counts() {
        // 1-bit toggle counter: q' = q ^ 1
        let mut nl = Netlist::new("toggle");
        let one = nl.add_gate(CellKind::Const1, &[]);
        let q_net = nl.add_net(); // placeholder for feedback
        let next = nl.add_gate(CellKind::Xor, &[q_net, one]);
        let q = nl.add_gate(CellKind::Dff, &[next]);
        // rewire: feedback net is the dff output; replace placeholder usage
        let gid = nl.net(next).driver.expect("driver");
        nl.gate_mut(gid).inputs[0] = q;
        nl.mark_output(q, "q");
        let (out0, s1) = nl.step(&[], &[false]).expect("step");
        assert_eq!(out0, vec![false]);
        assert_eq!(s1, vec![true]);
        let (out1, s2) = nl.step(&[], &s1).expect("step");
        assert_eq!(out1, vec![true]);
        assert_eq!(s2, vec![false]);
    }

    #[test]
    fn insert_after_rewires_loads_and_outputs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_gate(CellKind::And, &[a, b]);
        let y = nl.add_gate(CellKind::Not, &[x]);
        nl.mark_output(x, "x");
        nl.mark_output(y, "y");
        // Insert an inverter after x: x now feeds only the new gate.
        let nx = nl.insert_after(x, CellKind::Not, &[], GateTags::default());
        assert_eq!(nl.outputs()[0].0, nx);
        // The old NOT gate must now read nx instead of x.
        let not_gate = nl.net(y).driver.expect("driver");
        assert_eq!(nl.gate(not_gate).inputs[0], nx);
        // Function: out x is now !(a&b), out y is !!(a&b)
        assert_eq!(nl.evaluate(&[true, true]), vec![false, true]);
        assert_eq!(nl.evaluate(&[true, false]), vec![true, false]);
        assert_eq!(nl.validate(), Ok(()));
    }

    #[test]
    fn cycle_is_detected() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let tmp = nl.add_net();
        let x = nl.add_gate(CellKind::And, &[a, tmp]);
        let gid = nl.net(x).driver.expect("driver");
        // close the loop: x depends on itself
        nl.gate_mut(gid).inputs[1] = x;
        assert_eq!(nl.topo_order(), Err(NetlistError::CombinationalCycle));
    }

    #[test]
    fn width_mismatch_reported() {
        let nl = full_adder();
        assert!(matches!(
            nl.step(&[true], &[]),
            Err(NetlistError::WidthMismatch {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn truth_table_size() {
        let nl = full_adder();
        let tt = nl.truth_table();
        assert_eq!(tt.len(), 8);
        assert_eq!(tt[7], vec![true, true]); // 1+1+1 = 11b
    }
}
