//! Structural design hashing: per-net hash-consed fingerprints, a
//! whole-design digest, and per-output cone digests.
//!
//! The discipline mirrors the AIG strash in `seceda-sat`: a net's
//! fingerprint mixes its driver's cell kind with the fingerprints of the
//! driver's operands, canonically ordered for the symmetric n-ary kinds
//! (`And`/`Nand`/`Or`/`Nor`/`Xor`/`Xnor`) so that `And(a, b)` and
//! `And(b, a)` hash identically, while positional kinds (`Mux`, `Buf`,
//! `Not`, `Dff`) keep pin order. Everything is computed in one
//! iterative topological pass — no recursion, no per-gate allocation —
//! so 10^5–10^6-gate designs hash in O(edges).
//!
//! Three derived artifacts serve the incremental security-closure loop
//! in `seceda-core`:
//!
//! * **per-net fingerprints** — a net's hash transitively covers its
//!   entire fan-in cone, so equal fingerprints mean structurally equal
//!   cones (up to hash collisions over a 64-bit space);
//! * **the design digest** ([`DesignDigest`], 128 bits) — additionally
//!   *position-sensitive*: it absorbs the dense net/gate layout and the
//!   primary-input/-output interface, because the stochastic evaluators
//!   downstream (fault-shot selection, random stimuli) draw from
//!   index-driven RNG streams, so two designs must share a digest only
//!   when those evaluators would behave bit-identically;
//! * **dirty tracking** — [`StructuralHash::dirty_gates`] diffs two
//!   hash states into the set of gates whose fan-in cone changed, and
//!   [`StructuralHash::update_after_edit`] re-fingerprints only the
//!   fan-out cone of an edit (over the CSR [`crate::Fanout`]) instead
//!   of re-hashing the whole design.

use crate::cell::{CellKind, Gate, GateTags};
use crate::error::NetlistError;
use crate::id::{GateId, NetId};
use crate::netlist::Netlist;
use std::collections::HashSet;
use std::fmt;

/// SplitMix64 — the workspace's standard bit mixer.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A 128-bit whole-design digest (see [`StructuralHash::digest`]).
///
/// Equal digests are the cache-key contract of the incremental
/// composition engine: two design states with equal digests are
/// structurally identical — same per-net functions, same dense layout,
/// same interface — so every deterministic evaluator produces
/// bit-identical results on both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DesignDigest(pub [u64; 2]);

impl fmt::Display for DesignDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// Streaming 128-bit digest accumulator.
///
/// Absorption is order-sensitive, so the position of every absorbed
/// word is bound into the result without explicit index mixing. The two
/// lanes mix independently (SplitMix64 chaining and an FNV-style
/// multiply-accumulate), so a collision must defeat both at once.
#[derive(Debug, Clone)]
pub struct DigestBuilder {
    lo: u64,
    hi: u64,
}

impl DigestBuilder {
    /// A fresh accumulator.
    pub fn new() -> Self {
        DigestBuilder {
            lo: 0x5ECE_DA00_0000_0001,
            hi: 0xCBF2_9CE4_8422_2325,
        }
    }

    /// Absorbs one word.
    pub fn absorb(&mut self, x: u64) {
        self.lo = mix64(self.lo ^ x);
        self.hi = self
            .hi
            .wrapping_mul(0x0000_0100_0000_01B3)
            .wrapping_add(mix64(x ^ 0x9E37_79B9_7F4A_7C15));
    }

    /// Absorbs both lanes of a finished digest.
    pub fn absorb_digest(&mut self, d: DesignDigest) {
        self.absorb(d.0[0]);
        self.absorb(d.0[1]);
    }

    /// Finalizes with cross-lane avalanche.
    pub fn finish(&self) -> DesignDigest {
        DesignDigest([mix64(self.lo ^ self.hi), mix64(self.hi ^ mix64(self.lo))])
    }
}

impl Default for DigestBuilder {
    fn default() -> Self {
        DigestBuilder::new()
    }
}

// Domain-separation tags for the fingerprint sources.
const TAG_PRIMARY_INPUT: u64 = 0x5ECE_DA01;
const TAG_DFF_STATE: u64 = 0x5ECE_DA02;
const TAG_UNDRIVEN: u64 = 0x5ECE_DA03;
const TAG_GATE: u64 = 0x5ECE_DA04;

/// The structural hash state of one netlist: per-net fingerprints plus
/// the derived design digest and per-output cone digests.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuralHash {
    net_hashes: Vec<u64>,
    digest: DesignDigest,
    output_cones: Vec<u64>,
}

/// `true` for the n-ary kinds whose operands are order-insensitive and
/// therefore canonically sorted before hashing.
fn symmetric(kind: CellKind) -> bool {
    matches!(
        kind,
        CellKind::And
            | CellKind::Nand
            | CellKind::Or
            | CellKind::Nor
            | CellKind::Xor
            | CellKind::Xnor
    )
}

fn tag_bits(tags: GateTags) -> u64 {
    u64::from(tags.no_reassoc)
        | u64::from(tags.key_gate) << 1
        | u64::from(tags.monitor) << 2
        | u64::from(tags.tainted) << 3
        | u64::from(tags.redundancy) << 4
}

/// Fingerprint of a primary input by interface position.
fn pi_hash(position: usize) -> u64 {
    mix64(TAG_PRIMARY_INPUT ^ mix64(position as u64))
}

/// Fingerprint of a DFF output by state-bit ordinal (DFF outputs are
/// sources, exactly as [`Netlist::topo_order`] and the simulators treat
/// them; the data-input cone is bound by the design digest instead).
fn dff_hash(state_ordinal: usize) -> u64 {
    mix64(TAG_DFF_STATE ^ mix64(state_ordinal as u64))
}

/// Fingerprint of a combinational gate's output net from its operand
/// fingerprints. `scratch` avoids a per-gate allocation.
fn gate_hash(g: &Gate, net_hashes: &[u64], scratch: &mut Vec<u64>) -> u64 {
    scratch.clear();
    scratch.extend(g.inputs.iter().map(|&i| net_hashes[i.index()]));
    if symmetric(g.kind) {
        scratch.sort_unstable();
    }
    let mut h = mix64(TAG_GATE ^ g.kind as u64);
    h = mix64(h ^ tag_bits(g.tags));
    h = mix64(h ^ scratch.len() as u64);
    for &op in scratch.iter() {
        h = mix64(h ^ op);
    }
    h
}

impl StructuralHash {
    /// Hashes a whole design in one topological pass.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// gates form a cycle.
    pub fn of(nl: &Netlist) -> Result<Self, NetlistError> {
        let _t = seceda_trace::hist_timer("ir.hash_ns");
        let mut net_hashes = vec![0u64; nl.num_nets()];
        let mut driven_or_pi = vec![false; nl.num_nets()];
        for (k, &pi) in nl.inputs().iter().enumerate() {
            net_hashes[pi.index()] = pi_hash(k);
            driven_or_pi[pi.index()] = true;
        }
        let mut state_ordinal = 0usize;
        for g in nl.gates() {
            driven_or_pi[g.output.index()] = true;
            if g.kind.is_sequential() {
                net_hashes[g.output.index()] = dff_hash(state_ordinal);
                state_ordinal += 1;
            }
        }
        for (i, covered) in driven_or_pi.iter().enumerate() {
            if !covered {
                // undriven internal nets read constant false
                net_hashes[i] = mix64(TAG_UNDRIVEN);
            }
        }
        let mut scratch = Vec::new();
        for gid in nl.topo_order()? {
            let g = nl.gate(gid);
            net_hashes[g.output.index()] = gate_hash(g, &net_hashes, &mut scratch);
        }
        let (digest, output_cones) = finalize(nl, &net_hashes);
        Ok(StructuralHash {
            net_hashes,
            digest,
            output_cones,
        })
    }

    /// The whole-design digest.
    pub fn digest(&self) -> DesignDigest {
        self.digest
    }

    /// The fingerprint of one net (transitively covers its fan-in cone).
    pub fn net_hash(&self, net: NetId) -> u64 {
        self.net_hashes[net.index()]
    }

    /// All per-net fingerprints, indexable by [`NetId::index`].
    pub fn net_hashes(&self) -> &[u64] {
        &self.net_hashes
    }

    /// Per-output cone digests, parallel to [`Netlist::outputs`]. A
    /// cone digest is the root net's fingerprint: per-net hashing is
    /// transitive, so it already summarizes the whole fan-in cone.
    pub fn output_cones(&self) -> &[u64] {
        &self.output_cones
    }

    /// The gates of `nl` whose fan-in cone is not present anywhere in
    /// `prev` — the *dirty set* after an edit, in ascending id order.
    ///
    /// Because fingerprints propagate forward, a changed net dirties
    /// every gate downstream of it automatically: the set is closed
    /// under fan-out without an explicit traversal.
    pub fn dirty_gates(&self, nl: &Netlist, prev: &StructuralHash) -> Vec<GateId> {
        let clean: HashSet<u64> = prev.net_hashes.iter().copied().collect();
        nl.gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| !clean.contains(&self.net_hashes[g.output.index()]))
            .map(|(i, _)| GateId::from_index(i))
            .collect()
    }

    /// Incrementally brings this hash state up to date after an edit of
    /// `nl`, re-fingerprinting only the fan-out cone of the edit.
    ///
    /// `edited` lists the nets whose driver or readers changed in
    /// place; nets appended since this hash was computed (the common
    /// splice pattern of [`Netlist::insert_after`]: new key gates,
    /// monitors, key inputs) are detected automatically and need not be
    /// listed. The result is bit-identical to a fresh
    /// [`StructuralHash::of`] — pinned by the property tests — but the
    /// per-gate hashing work is proportional to the fan-out cone of the
    /// edit, not the design. (Digest finalization stays O(n), but it is
    /// pure word-mixing over cached fingerprints, orders of magnitude
    /// cheaper than re-hashing structure.)
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the affected
    /// gates form a combinational cycle.
    ///
    /// # Panics
    ///
    /// Panics if `nl` has *fewer* nets than this hash state covers —
    /// the edit must be an extension of the hashed design, not a
    /// rebuild (rebuilds re-hash with [`StructuralHash::of`]).
    pub fn update_after_edit(
        &mut self,
        nl: &Netlist,
        edited: &[NetId],
    ) -> Result<(), NetlistError> {
        let _t = seceda_trace::hist_timer("ir.hash_ns");
        let old_len = self.net_hashes.len();
        assert!(
            nl.num_nets() >= old_len,
            "update_after_edit: netlist shrank from {} to {} nets; re-hash with StructuralHash::of",
            old_len,
            nl.num_nets()
        );
        self.net_hashes.resize(nl.num_nets(), 0);

        // seed the dirty-net set: explicit edits plus appended nets
        let mut dirty = vec![false; nl.num_nets()];
        let mut queue: Vec<NetId> = Vec::new();
        for &e in edited {
            if !dirty[e.index()] {
                dirty[e.index()] = true;
                queue.push(e);
            }
        }
        for (i, d) in dirty.iter_mut().enumerate().skip(old_len) {
            if !*d {
                *d = true;
                queue.push(NetId::from_index(i));
            }
        }

        // forward closure over the CSR fanout: a dirty net taints its
        // driver (whose output it is) and every reader's output
        let fanout = nl.fanout();
        let mut affected = vec![false; nl.num_gates()];
        while let Some(net) = queue.pop() {
            if let Some(drv) = nl.net(net).driver {
                affected[drv.index()] = true;
            }
            for &ld in fanout.loads(net) {
                if !affected[ld.index()] {
                    affected[ld.index()] = true;
                    let out = nl.gate(ld).output;
                    if !dirty[out.index()] {
                        dirty[out.index()] = true;
                        queue.push(out);
                    }
                }
            }
        }

        // re-fingerprint sources among the dirty set
        let mut pi_position = vec![usize::MAX; nl.num_nets()];
        for (k, &pi) in nl.inputs().iter().enumerate() {
            if pi_position[pi.index()] == usize::MAX {
                pi_position[pi.index()] = k;
            }
        }
        for (i, d) in dirty.iter().enumerate() {
            if *d && nl.nets()[i].driver.is_none() {
                self.net_hashes[i] = if pi_position[i] != usize::MAX {
                    pi_hash(pi_position[i])
                } else {
                    mix64(TAG_UNDRIVEN)
                };
            }
        }
        let mut state_ordinal = 0usize;
        for g in nl.gates() {
            if g.kind.is_sequential() {
                // DFF outputs are sources keyed by state ordinal
                self.net_hashes[g.output.index()] = dff_hash(state_ordinal);
                state_ordinal += 1;
            }
        }

        // cone-local Kahn over the affected combinational gates,
        // mirroring Netlist::topo_order
        let in_scope = |gid: GateId| affected[gid.index()] && !nl.gate(gid).kind.is_sequential();
        let mut indeg = vec![0usize; nl.num_gates()];
        let mut ready: Vec<GateId> = Vec::new();
        let mut total = 0usize;
        for (i, g) in nl.gates().iter().enumerate() {
            let gid = GateId::from_index(i);
            if !in_scope(gid) {
                continue;
            }
            total += 1;
            let d = g
                .inputs
                .iter()
                .filter(|&&inp| nl.net(inp).driver.map(&in_scope).unwrap_or(false))
                .count();
            indeg[i] = d;
            if d == 0 {
                ready.push(gid);
            }
        }
        let mut scratch = Vec::new();
        let mut processed = 0usize;
        while let Some(gid) = ready.pop() {
            processed += 1;
            let g = nl.gate(gid);
            self.net_hashes[g.output.index()] = gate_hash(g, &self.net_hashes, &mut scratch);
            for &succ in fanout.loads(g.output) {
                if in_scope(succ) {
                    indeg[succ.index()] -= 1;
                    if indeg[succ.index()] == 0 {
                        ready.push(succ);
                    }
                }
            }
        }
        if processed != total {
            return Err(NetlistError::CombinationalCycle);
        }

        let (digest, output_cones) = finalize(nl, &self.net_hashes);
        self.digest = digest;
        self.output_cones = output_cones;
        Ok(())
    }
}

/// Derives the design digest and per-output cone digests from the
/// per-net fingerprints. Pure word-mixing over cached values — O(n)
/// with a trivial constant, shared by the full and incremental paths.
fn finalize(nl: &Netlist, net_hashes: &[u64]) -> (DesignDigest, Vec<u64>) {
    let mut d = DigestBuilder::new();
    d.absorb(nl.num_nets() as u64);
    d.absorb(nl.num_gates() as u64);
    // functional layer: per-net fingerprints; sequential absorption
    // binds each to its dense index
    for &h in net_hashes {
        d.absorb(h);
    }
    // layout layer: the dense gate array as the index-driven evaluators
    // see it (fault-shot selection picks gates by index)
    for g in nl.gates() {
        d.absorb(g.kind as u64 | tag_bits(g.tags) << 8);
        d.absorb(g.output.index() as u64);
        d.absorb(g.inputs.len() as u64);
        for &inp in &g.inputs {
            d.absorb(inp.index() as u64);
        }
    }
    // interface layer: stimulus width and output selection
    d.absorb(nl.inputs().len() as u64);
    for &pi in nl.inputs() {
        d.absorb(pi.index() as u64);
    }
    d.absorb(nl.outputs().len() as u64);
    let cones: Vec<u64> = nl
        .outputs()
        .iter()
        .map(|&(n, _)| {
            d.absorb(n.index() as u64);
            net_hashes[n.index()]
        })
        .collect();
    (d.finish(), cones)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::GateTags;

    fn half_adder() -> Netlist {
        let mut nl = Netlist::new("ha");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_gate(CellKind::Xor, &[a, b]);
        let c = nl.add_gate(CellKind::And, &[a, b]);
        nl.mark_output(s, "s");
        nl.mark_output(c, "c");
        nl
    }

    #[test]
    fn identical_builds_share_every_fingerprint() {
        let h1 = StructuralHash::of(&half_adder()).expect("hash");
        let h2 = StructuralHash::of(&half_adder()).expect("hash");
        assert_eq!(h1, h2);
        assert_eq!(h1.digest(), h2.digest());
        assert_eq!(h1.output_cones(), h2.output_cones());
    }

    #[test]
    fn internal_net_names_do_not_affect_the_digest() {
        let mut named = half_adder();
        let int = named.gates()[0].output;
        named.set_net_name(int, "sum_wire");
        assert_eq!(
            StructuralHash::of(&named).expect("hash").digest(),
            StructuralHash::of(&half_adder()).expect("hash").digest()
        );
    }

    #[test]
    fn symmetric_operands_hash_canonically() {
        let mut ab = Netlist::new("t");
        let a = ab.add_input("a");
        let b = ab.add_input("b");
        let y = ab.add_gate(CellKind::And, &[a, b]);
        let mut ba = Netlist::new("t");
        let a2 = ba.add_input("a");
        let b2 = ba.add_input("b");
        let y2 = ba.add_gate(CellKind::And, &[b2, a2]);
        let hab = StructuralHash::of(&ab).expect("hash");
        let hba = StructuralHash::of(&ba).expect("hash");
        // per-net fingerprints are operand-order-canonical...
        assert_eq!(hab.net_hash(y), hba.net_hash(y2));
        // ...but the design digest binds the literal layout (the
        // index-driven evaluators see different input lists)
        assert_ne!(hab.digest(), hba.digest());
    }

    #[test]
    fn mux_pin_order_is_significant() {
        let mut m1 = Netlist::new("m");
        let s = m1.add_input("s");
        let a = m1.add_input("a");
        let b = m1.add_input("b");
        let y1 = m1.add_gate(CellKind::Mux, &[s, a, b]);
        let mut m2 = Netlist::new("m");
        let s2 = m2.add_input("s");
        let a2 = m2.add_input("a");
        let b2 = m2.add_input("b");
        let y2 = m2.add_gate(CellKind::Mux, &[s2, b2, a2]);
        assert_ne!(
            StructuralHash::of(&m1).expect("hash").net_hash(y1),
            StructuralHash::of(&m2).expect("hash").net_hash(y2)
        );
    }

    #[test]
    fn tags_distinguish_otherwise_equal_gates() {
        let mut plain = Netlist::new("t");
        let a = plain.add_input("a");
        let y = plain.add_gate(CellKind::Not, &[a]);
        let mut tagged = Netlist::new("t");
        let a2 = tagged.add_input("a");
        let y2 = tagged.add_gate_tagged(
            CellKind::Not,
            &[a2],
            GateTags {
                key_gate: true,
                ..GateTags::default()
            },
        );
        assert_ne!(
            StructuralHash::of(&plain).expect("hash").net_hash(y),
            StructuralHash::of(&tagged).expect("hash").net_hash(y2)
        );
    }

    #[test]
    fn incremental_update_matches_full_rehash_after_splice() {
        let mut nl = half_adder();
        let mut h = StructuralHash::of(&nl).expect("hash");
        let target = nl.gates()[0].output;
        nl.insert_after(target, CellKind::Not, &[], GateTags::default());
        h.update_after_edit(&nl, &[]).expect("update");
        assert_eq!(h, StructuralHash::of(&nl).expect("hash"));
    }

    #[test]
    fn dirty_gates_cover_exactly_the_fanout_cone() {
        // chain: a -> n1 -> n2 -> n3, plus an independent b -> m1
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let n1 = nl.add_gate(CellKind::Not, &[a]);
        let n2 = nl.add_gate(CellKind::Not, &[n1]);
        let n3 = nl.add_gate(CellKind::Not, &[n2]);
        let m1 = nl.add_gate(CellKind::Not, &[b]);
        nl.mark_output(n3, "y");
        nl.mark_output(m1, "z");
        let before = StructuralHash::of(&nl).expect("hash");
        // splice a buffer after n1: everything downstream of n1 dirties,
        // the independent b-branch stays clean
        nl.insert_after(n1, CellKind::Buf, &[], GateTags::default());
        let mut after = before.clone();
        after.update_after_edit(&nl, &[]).expect("update");
        assert_eq!(after, StructuralHash::of(&nl).expect("hash"));
        let dirty = after.dirty_gates(&nl, &before);
        let dirty_outputs: Vec<NetId> = dirty.iter().map(|&g| nl.gate(g).output).collect();
        // dirty: the new buffer and the re-driven n2/n3 gates
        assert!(dirty_outputs.len() >= 3);
        assert!(
            !dirty_outputs.contains(&nl.gate(nl.net(m1).driver.expect("driver")).output),
            "the independent branch must stay clean"
        );
        // the untouched output cone keeps its digest, the edited one moves
        assert_eq!(after.output_cones()[1], before.output_cones()[1]);
        assert_ne!(after.output_cones()[0], before.output_cones()[0]);
    }

    #[test]
    fn sequential_designs_hash_without_traversing_state_loops() {
        // 1-bit toggle counter with a combinational feedback through a DFF
        let mut nl = Netlist::new("toggle");
        let one = nl.add_gate(CellKind::Const1, &[]);
        let q_net = nl.add_net();
        let next = nl.add_gate(CellKind::Xor, &[q_net, one]);
        let q = nl.add_gate(CellKind::Dff, &[next]);
        let gid = nl.net(next).driver.expect("driver");
        nl.gate_mut(gid).inputs[0] = q;
        nl.mark_output(q, "q");
        let h = StructuralHash::of(&nl).expect("hash");
        let mut h2 = h.clone();
        // a no-op incremental update converges to the same state
        h2.update_after_edit(&nl, &[]).expect("update");
        assert_eq!(h, h2);
    }

    #[test]
    fn digest_display_is_32_hex_chars() {
        let d = StructuralHash::of(&half_adder()).expect("hash").digest();
        let s = d.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
