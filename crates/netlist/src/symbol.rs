//! Interned signal names.
//!
//! Real benchmark designs name every net; storing those names as
//! per-net `String`s costs a heap allocation and 24 bytes of inline
//! storage per signal. A [`SymbolTable`] interns each distinct name
//! once and hands out dense `u32` [`Symbol`]s, so a `Net` carries an
//! `Option<Symbol>` (8 bytes, no allocation) and name equality is an
//! integer compare.

use std::collections::HashMap;

/// An interned name: a dense index into the owning [`SymbolTable`].
///
/// Symbols are only meaningful relative to the table (and therefore the
/// [`crate::Netlist`]) that produced them; resolve them back to text
/// with [`SymbolTable::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the dense index of this symbol.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `Symbol` from a dense index (for per-symbol side tables).
    pub fn from_index(index: usize) -> Self {
        Symbol(u32::try_from(index).expect("symbol index overflow"))
    }
}

/// A deduplicating string interner.
///
/// `intern` is amortized O(1); `resolve` is an array index. The table
/// never forgets a string, so symbols stay valid for the lifetime of
/// the owning netlist.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    strings: Vec<Box<str>>,
    map: HashMap<Box<str>, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if the exact string
    /// was interned before.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol::from_index(self.strings.len());
        let boxed: Box<str> = name.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different table and is out of range.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Looks up a name without interning it.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Returns `true` if nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let mut t = SymbolTable::new();
        let a = t.intern("alpha");
        let b = t.intern("beta");
        let a2 = t.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "alpha");
        assert_eq!(t.resolve(b), "beta");
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut t = SymbolTable::new();
        assert_eq!(t.lookup("x"), None);
        let x = t.intern("x");
        assert_eq!(t.lookup("x"), Some(x));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn symbols_are_dense() {
        let mut t = SymbolTable::new();
        for i in 0..100 {
            let s = t.intern(&format!("n{i}"));
            assert_eq!(s.index(), i);
        }
    }
}
