//! # seceda-netlist
//!
//! Gate-level netlist intermediate representation for the `seceda`
//! security-centric EDA toolkit.
//!
//! This crate provides the foundational data structure every other `seceda`
//! crate operates on: a flat, gate-level [`Netlist`] with named primary
//! inputs/outputs, combinational cells, and D flip-flops. It also ships
//! word-level construction helpers ([`Word`]), a structural text format,
//! a seeded random circuit generator, and a set of built-in benchmark
//! circuits (ISCAS c17, ripple adders, comparators, ALU slices) used as
//! workloads throughout the experiment harness.
//!
//! Real designs enter through the frontend in [`mod@parse`]: an
//! ISCAS-85/89 `.bench` reader/writer ([`parse_bench`] /
//! [`write_bench`]) and a structural-Verilog subset reader
//! ([`parse_verilog`]), with extension-based dispatch via
//! [`parse_design_path`]. Net names are interned ([`Symbol`] /
//! [`SymbolTable`]), gate inputs use inline small-vector storage
//! ([`InputList`]), and fanout/topological traversals are iterative
//! over a compressed sparse row [`Fanout`] — so 10^5–10^6-gate designs
//! parse and analyze in O(n) without recursion or per-gate heap
//! traffic.
//!
//! # Example
//!
//! ```
//! use seceda_netlist::{Netlist, CellKind};
//!
//! let mut nl = Netlist::new("toy");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y = nl.add_gate(CellKind::Xor, &[a, b]);
//! nl.mark_output(y, "y");
//! assert_eq!(nl.evaluate(&[true, false]), vec![true]);
//! ```

mod bench_circuits;
mod build;
mod cell;
mod error;
pub mod hash;
mod id;
mod netlist;
pub mod parse;
mod random;
mod stats;
mod symbol;
mod text;

pub use bench_circuits::{alu_slice, c17, comparator, majority, parity_tree, ripple_adder};
pub use build::{bits_to_u64, u64_to_bits, Word};
pub use cell::{CellKind, Gate, GateTags, InputList, INLINE_INPUTS};
pub use error::NetlistError;
pub use hash::{DesignDigest, DigestBuilder, StructuralHash};
pub use id::{GateId, NetId};
pub use netlist::{Fanout, Net, Netlist};
pub use parse::{
    parse_bench, parse_design, parse_design_path, parse_verilog, write_bench, DesignFormat,
};
pub use random::{random_circuit, RandomCircuitConfig};
pub use stats::{DepthReport, NetlistStats};
pub use symbol::{Symbol, SymbolTable};
pub use text::{format_netlist, parse_netlist};
