//! # seceda-netlist
//!
//! Gate-level netlist intermediate representation for the `seceda`
//! security-centric EDA toolkit.
//!
//! This crate provides the foundational data structure every other `seceda`
//! crate operates on: a flat, gate-level [`Netlist`] with named primary
//! inputs/outputs, combinational cells, and D flip-flops. It also ships
//! word-level construction helpers ([`Word`]), a structural text format,
//! a seeded random circuit generator, and a set of built-in benchmark
//! circuits (ISCAS c17, ripple adders, comparators, ALU slices) used as
//! workloads throughout the experiment harness.
//!
//! # Example
//!
//! ```
//! use seceda_netlist::{Netlist, CellKind};
//!
//! let mut nl = Netlist::new("toy");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let y = nl.add_gate(CellKind::Xor, &[a, b]);
//! nl.mark_output(y, "y");
//! assert_eq!(nl.evaluate(&[true, false]), vec![true]);
//! ```

mod bench_circuits;
mod build;
mod cell;
mod error;
mod id;
mod netlist;
mod random;
mod stats;
mod text;

pub use bench_circuits::{alu_slice, c17, comparator, majority, parity_tree, ripple_adder};
pub use build::{bits_to_u64, u64_to_bits, Word};
pub use cell::{CellKind, Gate, GateTags};
pub use error::NetlistError;
pub use id::{GateId, NetId};
pub use netlist::{Net, Netlist};
pub use random::{random_circuit, RandomCircuitConfig};
pub use stats::{DepthReport, NetlistStats};
pub use text::{format_netlist, parse_netlist};
