//! Built-in benchmark circuits used as workloads across the toolkit.

use crate::build::Word;
use crate::cell::CellKind;
use crate::netlist::Netlist;

/// The ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND gates.
///
/// The smallest standard benchmark in the test literature; used by the
/// ATPG and locking examples.
pub fn c17() -> Netlist {
    let mut nl = Netlist::new("c17");
    let g1 = nl.add_input("G1");
    let g2 = nl.add_input("G2");
    let g3 = nl.add_input("G3");
    let g6 = nl.add_input("G6");
    let g7 = nl.add_input("G7");
    let g10 = nl.add_gate(CellKind::Nand, &[g1, g3]);
    let g11 = nl.add_gate(CellKind::Nand, &[g3, g6]);
    let g16 = nl.add_gate(CellKind::Nand, &[g2, g11]);
    let g19 = nl.add_gate(CellKind::Nand, &[g11, g7]);
    let g22 = nl.add_gate(CellKind::Nand, &[g10, g16]);
    let g23 = nl.add_gate(CellKind::Nand, &[g16, g19]);
    nl.mark_output(g22, "G22");
    nl.mark_output(g23, "G23");
    nl
}

/// N-bit ripple-carry adder: inputs `a[width]`, `b[width]`; output
/// `s[width]` (sum modulo 2^width).
pub fn ripple_adder(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("adder{width}"));
    let a = Word::input(&mut nl, "a", width);
    let b = Word::input(&mut nl, "b", width);
    let s = a.add(&mut nl, &b);
    s.mark_output(&mut nl, "s");
    nl
}

/// N-bit equality comparator: output `eq = (a == b)`.
pub fn comparator(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("cmp{width}"));
    let a = Word::input(&mut nl, "a", width);
    let b = Word::input(&mut nl, "b", width);
    let e = a.eq(&mut nl, &b);
    nl.mark_output(e, "eq");
    nl
}

/// N-input parity tree built from 2-input XORs (balanced).
pub fn parity_tree(width: usize) -> Netlist {
    assert!(width >= 2, "parity tree needs at least two inputs");
    let mut nl = Netlist::new(format!("parity{width}"));
    let mut layer: Vec<_> = (0..width)
        .map(|i| nl.add_input(format!("a[{i}]")))
        .collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(nl.add_gate(CellKind::Xor, &[pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    nl.mark_output(layer[0], "p");
    nl
}

/// 3-input majority gate (the carry function): `maj = ab | ac | bc`.
pub fn majority() -> Netlist {
    let mut nl = Netlist::new("maj3");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let c = nl.add_input("c");
    let ab = nl.add_gate(CellKind::And, &[a, b]);
    let ac = nl.add_gate(CellKind::And, &[a, c]);
    let bc = nl.add_gate(CellKind::And, &[b, c]);
    let m = nl.add_gate(CellKind::Or, &[ab, ac, bc]);
    nl.mark_output(m, "maj");
    nl
}

/// A small ALU slice: inputs `a[width]`, `b[width]`, `op\[2\]`; output
/// `y[width]` computing per `op`: 0 = add, 1 = and, 2 = or, 3 = xor.
pub fn alu_slice(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("alu{width}"));
    let a = Word::input(&mut nl, "a", width);
    let b = Word::input(&mut nl, "b", width);
    let op0 = nl.add_input("op[0]");
    let op1 = nl.add_input("op[1]");
    let sum = a.add(&mut nl, &b);
    let conj = a.and(&mut nl, &b);
    let disj = a.or(&mut nl, &b);
    let xor = a.xor(&mut nl, &b);
    // select: op1 chooses between (sum,and) and (or,xor); op0 within pair
    let lo = sum.mux(&mut nl, &conj, op0);
    let hi = disj.mux(&mut nl, &xor, op0);
    let y = lo.mux(&mut nl, &hi, op1);
    y.mark_output(&mut nl, "y");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{bits_to_u64, u64_to_bits};

    #[test]
    fn c17_shape() {
        let nl = c17();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.num_gates(), 6);
        assert_eq!(nl.validate(), Ok(()));
    }

    #[test]
    fn c17_known_vector() {
        let nl = c17();
        // all-zero inputs: G10=G11=G16=G19=1, G22=nand(1,1)=0, G23=0
        assert_eq!(nl.evaluate(&[false; 5]), vec![false, false]);
        // all-one inputs: G10=0,G11=0,G16=1,G19=1,G22=1,G23=0
        assert_eq!(nl.evaluate(&[true; 5]), vec![true, false]);
    }

    #[test]
    fn adder_works() {
        let nl = ripple_adder(6);
        let mut inputs = u64_to_bits(23, 6);
        inputs.extend(u64_to_bits(40, 6));
        assert_eq!(bits_to_u64(&nl.evaluate(&inputs)), 63);
    }

    #[test]
    fn comparator_works() {
        let nl = comparator(4);
        let mut eq = u64_to_bits(9, 4);
        eq.extend(u64_to_bits(9, 4));
        assert!(nl.evaluate(&eq)[0]);
        let mut ne = u64_to_bits(9, 4);
        ne.extend(u64_to_bits(8, 4));
        assert!(!nl.evaluate(&ne)[0]);
    }

    #[test]
    fn parity_tree_matches_popcount() {
        let nl = parity_tree(7);
        for v in [0u64, 1, 0b1010101, 0b1111111, 0b0110110] {
            let expect = (v.count_ones() % 2) == 1;
            assert_eq!(nl.evaluate(&u64_to_bits(v, 7))[0], expect, "v={v:b}");
        }
    }

    #[test]
    fn majority_truth_table() {
        let nl = majority();
        let tt = nl.truth_table();
        let expect = [false, false, false, true, false, true, true, true];
        for (i, row) in tt.iter().enumerate() {
            assert_eq!(row[0], expect[i], "pattern {i}");
        }
    }

    #[test]
    fn alu_all_ops() {
        let nl = alu_slice(4);
        let run = |a: u64, b: u64, op: u64| -> u64 {
            let mut inputs = u64_to_bits(a, 4);
            inputs.extend(u64_to_bits(b, 4));
            inputs.push(op & 1 == 1);
            inputs.push(op & 2 == 2);
            bits_to_u64(&nl.evaluate(&inputs))
        };
        assert_eq!(run(5, 9, 0), (5 + 9) & 0xf);
        assert_eq!(run(0b1100, 0b1010, 1), 0b1000);
        assert_eq!(run(0b1100, 0b1010, 2), 0b1110);
        assert_eq!(run(0b1100, 0b1010, 3), 0b0110);
    }
}
