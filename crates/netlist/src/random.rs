//! Seeded random circuit generation for fuzzing and benchmarking.

use crate::cell::CellKind;
use crate::id::NetId;
use crate::netlist::Netlist;
use seceda_testkit::rng::{Rng, SeedableRng, StdRng};

/// Parameters of the random circuit generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomCircuitConfig {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of gates to create.
    pub num_gates: usize,
    /// Number of primary outputs (sampled among the last created nets).
    pub num_outputs: usize,
    /// Include XOR/XNOR in the gate mix (linear layers make SAT attacks and
    /// leakage analysis more interesting).
    pub with_xor: bool,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            num_inputs: 16,
            num_gates: 200,
            num_outputs: 8,
            with_xor: true,
            seed: 0xEDA5_EC0D,
        }
    }
}

/// Generates a random acyclic combinational netlist.
///
/// Gate inputs are drawn with a locality bias towards recently created nets
/// so the circuit has realistic depth instead of being a flat soup.
///
/// # Panics
///
/// Panics if `num_inputs == 0` or `num_gates == 0`.
pub fn random_circuit(config: &RandomCircuitConfig) -> Netlist {
    assert!(config.num_inputs > 0, "need at least one input");
    assert!(config.num_gates > 0, "need at least one gate");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut nl = Netlist::new(format!("rand_{}", config.seed));
    let mut pool: Vec<NetId> = (0..config.num_inputs)
        .map(|i| nl.add_input(format!("in{i}")))
        .collect();

    let kinds: &[CellKind] = if config.with_xor {
        &[
            CellKind::And,
            CellKind::Nand,
            CellKind::Or,
            CellKind::Nor,
            CellKind::Xor,
            CellKind::Xnor,
            CellKind::Not,
            CellKind::Mux,
        ]
    } else {
        &[
            CellKind::And,
            CellKind::Nand,
            CellKind::Or,
            CellKind::Nor,
            CellKind::Not,
        ]
    };

    let pick = |rng: &mut StdRng, pool: &[NetId]| -> NetId {
        // locality bias: 70% of picks come from the newest half
        let n = pool.len();
        if n > 4 && rng.gen_bool(0.7) {
            pool[rng.gen_range(n / 2..n)]
        } else {
            pool[rng.gen_range(0..n)]
        }
    };

    for _ in 0..config.num_gates {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let arity = match kind {
            CellKind::Not => 1,
            CellKind::Mux => 3,
            _ => 2,
        };
        let inputs: Vec<NetId> = (0..arity).map(|_| pick(&mut rng, &pool)).collect();
        let out = nl.add_gate(kind, &inputs);
        pool.push(out);
    }

    let n = pool.len();
    let num_outputs = config.num_outputs.min(config.num_gates);
    for k in 0..num_outputs {
        // spread outputs over the last quarter of created nets
        let lo = n - (config.num_gates / 4).max(num_outputs);
        let net = pool[rng.gen_range(lo..n)];
        nl.mark_output(net, format!("out{k}"));
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_circuit_is_well_formed() {
        let nl = random_circuit(&RandomCircuitConfig::default());
        assert_eq!(nl.validate(), Ok(()));
        assert_eq!(nl.num_gates(), 200);
        assert_eq!(nl.inputs().len(), 16);
        assert_eq!(nl.outputs().len(), 8);
    }

    #[test]
    fn same_seed_same_circuit() {
        let a = random_circuit(&RandomCircuitConfig::default());
        let b = random_circuit(&RandomCircuitConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_circuit() {
        let a = random_circuit(&RandomCircuitConfig::default());
        let b = random_circuit(&RandomCircuitConfig {
            seed: 7,
            ..RandomCircuitConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn no_xor_mix_respected() {
        let nl = random_circuit(&RandomCircuitConfig {
            with_xor: false,
            num_gates: 100,
            ..RandomCircuitConfig::default()
        });
        assert!(nl
            .gates()
            .iter()
            .all(|g| !matches!(g.kind, CellKind::Xor | CellKind::Xnor | CellKind::Mux)));
    }
}
