//! Typed identifiers for nets and gates.

use std::fmt;

/// Identifier of a net (a single-bit signal) within a [`crate::Netlist`].
///
/// `NetId`s are dense indices assigned in creation order; they are only
/// meaningful relative to the netlist that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

/// Identifier of a gate instance within a [`crate::Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub(crate) u32);

impl NetId {
    /// Returns the dense index of this net.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a dense index.
    ///
    /// Intended for code that stores per-net side tables; passing an index
    /// that does not belong to the owning netlist yields an id that will
    /// panic on use.
    pub fn from_index(index: usize) -> Self {
        NetId(u32::try_from(index).expect("net index overflow"))
    }
}

impl GateId {
    /// Returns the dense index of this gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `GateId` from a dense index.
    pub fn from_index(index: usize) -> Self {
        GateId(u32::try_from(index).expect("gate index overflow"))
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_indices() {
        assert_eq!(NetId::from_index(7).index(), 7);
        assert_eq!(GateId::from_index(0).index(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NetId::from_index(3).to_string(), "n3");
        assert_eq!(GateId::from_index(11).to_string(), "g11");
    }
}
