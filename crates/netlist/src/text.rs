//! A small structural text format for netlists.
//!
//! The format is line-oriented:
//!
//! ```text
//! design half_adder
//! input a
//! input b
//! gate n2 = xor n0 n1
//! gate n3 = and n0 n1
//! output sum n2
//! output carry n3
//! ```
//!
//! Nets are referenced as `n<index>`; gates implicitly define their output
//! net. The parser accepts gates in any topological position as long as the
//! referenced net ids were already defined.

use crate::cell::CellKind;
use crate::error::NetlistError;
use crate::id::NetId;
use crate::netlist::Netlist;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serializes a netlist to the structural text format.
///
/// Port names are resolved through the interned symbol table — no
/// per-net `String` clones on the way out.
pub fn format_netlist(nl: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "design {}", nl.name());
    for &pi in nl.inputs() {
        match nl.net_name(pi) {
            Some(name) => {
                let _ = writeln!(out, "input {name} {pi}");
            }
            None => {
                let _ = writeln!(out, "input {pi} {pi}");
            }
        }
    }
    for g in nl.gates() {
        let _ = write!(out, "gate {} = {}", g.output, g.kind);
        for &i in &g.inputs {
            let _ = write!(out, " {i}");
        }
        let mut flags = String::new();
        if g.tags.no_reassoc {
            flags.push_str(" !barrier");
        }
        if g.tags.key_gate {
            flags.push_str(" !key");
        }
        if g.tags.monitor {
            flags.push_str(" !monitor");
        }
        if g.tags.redundancy {
            flags.push_str(" !red");
        }
        let _ = writeln!(out, "{flags}");
    }
    for (net, name) in nl.outputs() {
        let _ = writeln!(out, "output {name} {net}");
    }
    out
}

fn parse_net_token(tok: &str, line: usize) -> Result<usize, NetlistError> {
    tok.strip_prefix('n')
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| NetlistError::Parse {
            line,
            message: format!("expected net token, got `{tok}`"),
        })
}

/// Parses the structural text format back into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed input and the usual
/// structural errors if the described netlist is ill-formed.
pub fn parse_netlist(text: &str) -> Result<Netlist, NetlistError> {
    let mut nl = Netlist::new("unnamed");
    // maps file-scope net index -> actual NetId in nl
    let mut net_map: HashMap<usize, NetId> = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut toks = trimmed.split_whitespace();
        match toks.next() {
            Some("design") => {
                let name = toks.next().ok_or(NetlistError::Parse {
                    line,
                    message: "design needs a name".into(),
                })?;
                nl.set_name(name);
            }
            Some("input") => {
                let name = toks.next().ok_or(NetlistError::Parse {
                    line,
                    message: "input needs a name".into(),
                })?;
                let idx_tok = toks.next().ok_or(NetlistError::Parse {
                    line,
                    message: "input needs a net token".into(),
                })?;
                let idx = parse_net_token(idx_tok, line)?;
                let id = nl.add_input(name);
                net_map.insert(idx, id);
            }
            Some("gate") => {
                let out_tok = toks.next().ok_or(NetlistError::Parse {
                    line,
                    message: "gate needs an output net".into(),
                })?;
                let out_idx = parse_net_token(out_tok, line)?;
                match toks.next() {
                    Some("=") => {}
                    _ => {
                        return Err(NetlistError::Parse {
                            line,
                            message: "expected `=` after gate output".into(),
                        })
                    }
                }
                let kind_tok = toks.next().ok_or(NetlistError::Parse {
                    line,
                    message: "gate needs a cell kind".into(),
                })?;
                let kind =
                    CellKind::from_mnemonic(kind_tok).ok_or_else(|| NetlistError::Parse {
                        line,
                        message: format!("unknown cell kind `{kind_tok}`"),
                    })?;
                let mut inputs = Vec::new();
                let mut tags = crate::cell::GateTags::default();
                for tok in toks {
                    match tok {
                        "!barrier" => tags.no_reassoc = true,
                        "!key" => tags.key_gate = true,
                        "!monitor" => tags.monitor = true,
                        "!red" => tags.redundancy = true,
                        _ => {
                            let idx = parse_net_token(tok, line)?;
                            let id = *net_map
                                .get(&idx)
                                .ok_or_else(|| NetlistError::UnknownNet(format!("n{idx}")))?;
                            inputs.push(id);
                        }
                    }
                }
                let (lo, hi) = kind.arity();
                if inputs.len() < lo || inputs.len() > hi {
                    return Err(NetlistError::BadArity {
                        kind: kind.to_string(),
                        got: inputs.len(),
                    });
                }
                let out = nl.add_gate_tagged(kind, &inputs, tags);
                net_map.insert(out_idx, out);
            }
            Some("output") => {
                let name = toks.next().ok_or(NetlistError::Parse {
                    line,
                    message: "output needs a name".into(),
                })?;
                let idx_tok = toks.next().ok_or(NetlistError::Parse {
                    line,
                    message: "output needs a net token".into(),
                })?;
                let idx = parse_net_token(idx_tok, line)?;
                let id = *net_map
                    .get(&idx)
                    .ok_or_else(|| NetlistError::UnknownNet(format!("n{idx}")))?;
                nl.mark_output(id, name);
            }
            Some(other) => {
                return Err(NetlistError::Parse {
                    line,
                    message: format!("unknown directive `{other}`"),
                })
            }
            None => {}
        }
    }
    nl.validate()?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellKind, GateTags};

    fn sample() -> Netlist {
        let mut nl = Netlist::new("ha");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_gate(CellKind::Xor, &[a, b]);
        let c = nl.add_gate_tagged(
            CellKind::And,
            &[a, b],
            GateTags {
                no_reassoc: true,
                ..GateTags::default()
            },
        );
        nl.mark_output(s, "sum");
        nl.mark_output(c, "carry");
        nl
    }

    #[test]
    fn roundtrip_preserves_function_and_tags() {
        let nl = sample();
        let text = format_netlist(&nl);
        let back = parse_netlist(&text).expect("parse");
        assert_eq!(back.name(), "ha");
        assert_eq!(back.truth_table(), nl.truth_table());
        let barrier_gates: Vec<_> = back.gates().iter().filter(|g| g.tags.no_reassoc).collect();
        assert_eq!(barrier_gates.len(), 1);
        assert_eq!(barrier_gates[0].kind, CellKind::And);
    }

    #[test]
    fn parse_rejects_unknown_kind() {
        let err = parse_netlist("design x\ninput a n0\ngate n1 = frob n0\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }));
    }

    #[test]
    fn parse_rejects_undefined_net() {
        let err = parse_netlist("design x\ninput a n0\ngate n1 = not n9\n").unwrap_err();
        assert_eq!(err, NetlistError::UnknownNet("n9".into()));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let nl = parse_netlist("# a comment\ndesign x\n\ninput a n0\noutput y n0\n").expect("ok");
        assert_eq!(nl.inputs().len(), 1);
        assert_eq!(nl.outputs().len(), 1);
    }

    #[test]
    fn format_is_pinned() {
        // regression: the exact text emitted for a known netlist; any
        // change to the display path must update this golden string
        let text = format_netlist(&sample());
        assert_eq!(
            text,
            "design ha\n\
             input a n0\n\
             input b n1\n\
             gate n2 = xor n0 n1\n\
             gate n3 = and n0 n1 !barrier\n\
             output sum n2\n\
             output carry n3\n"
        );
    }

    #[test]
    fn parse_rejects_bad_arity() {
        let err = parse_netlist("design x\ninput a n0\ngate n1 = and n0\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::BadArity {
                kind: "and".into(),
                got: 1
            }
        );
    }
}
