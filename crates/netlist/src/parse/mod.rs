//! Real-design frontend: parsers for standard netlist interchange
//! formats.
//!
//! Two formats are supported, both producing the ordinary [`Netlist`]:
//!
//! - **ISCAS-85/89 `.bench`** ([`parse_bench`]) — `INPUT(x)` /
//!   `OUTPUT(y)` declarations plus `sig = KIND(a, b, ...)` gate lines,
//!   with a matching writer ([`write_bench`]) used for roundtrip
//!   testing and for exporting generated circuits.
//! - **Structural Verilog** ([`parse_verilog`]) — a gate-level subset:
//!   one `module`, scalar `input`/`output`/`wire` declarations,
//!   primitive gate instantiations (`nand g1 (y, a, b);`), and simple
//!   `assign` aliases. See the [`verilog`] module docs for the exact
//!   subset.
//!
//! Both parsers are single-pass, name-resolving (forward references
//! are legal), fully iterative, and return typed [`NetlistError`]s on
//! malformed input — they never panic. Signal names are interned in
//! the netlist's symbol table as they are seen, so a 10^6-gate design
//! parses with O(n) work and no per-net string duplication.

mod bench;
mod verilog;

pub use bench::{parse_bench, write_bench};
pub use verilog::parse_verilog;

use crate::error::NetlistError;
use crate::netlist::Netlist;
use std::path::Path;

/// A netlist interchange format understood by [`parse_design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignFormat {
    /// ISCAS-85/89 `.bench`.
    Bench,
    /// Structural (gate-level) Verilog.
    Verilog,
    /// The crate's own line-oriented text format (see [`crate::parse_netlist`]).
    Text,
}

impl DesignFormat {
    /// Guesses the format from a file extension (`bench`, `v`, `txt`/`snl`).
    pub fn from_extension(ext: &str) -> Option<DesignFormat> {
        match ext.to_ascii_lowercase().as_str() {
            "bench" => Some(DesignFormat::Bench),
            "v" | "vg" => Some(DesignFormat::Verilog),
            "txt" | "snl" => Some(DesignFormat::Text),
            _ => None,
        }
    }
}

/// Parses `text` in the given format.
///
/// # Errors
///
/// Propagates the format parser's [`NetlistError`].
pub fn parse_design(text: &str, format: DesignFormat) -> Result<Netlist, NetlistError> {
    let mut sp = seceda_trace::span("parse.design")
        .with(
            "format",
            match format {
                DesignFormat::Bench => "bench",
                DesignFormat::Verilog => "verilog",
                DesignFormat::Text => "text",
            },
        )
        .with("bytes", text.len());
    // chaos injection point: a truncated input models an interrupted
    // read or corrupted hand-off; the parser must reject it with a
    // proper error, never panic
    let chaos_text;
    let text = if seceda_testkit::chaos::active() {
        match seceda_testkit::chaos::truncate_input("parse.design", text) {
            Some(t) => {
                seceda_trace::counter("chaos.injections", 1);
                chaos_text = t;
                &chaos_text
            }
            None => text,
        }
    } else {
        text
    };
    let timer = seceda_trace::hist_timer("parse.design_ns");
    let result = match format {
        DesignFormat::Bench => parse_bench(text),
        DesignFormat::Verilog => parse_verilog(text),
        DesignFormat::Text => crate::text::parse_netlist(text),
    };
    drop(timer);
    if seceda_trace::enabled() {
        seceda_trace::counter("parse.lines", text.lines().count() as u64);
        if let Ok(nl) = &result {
            seceda_trace::counter("parse.gates", nl.num_gates() as u64);
            sp.attr("gates", nl.num_gates());
        }
        sp.attr("ok", result.is_ok());
    }
    result
}

/// Reads and parses a design file, picking the format from its
/// extension. If the parsed design carries no name of its own, the
/// file stem becomes the design name.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] for unreadable files or unknown
/// extensions, and the format parser's errors otherwise.
pub fn parse_design_path(path: impl AsRef<Path>) -> Result<Netlist, NetlistError> {
    let path = path.as_ref();
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let format = DesignFormat::from_extension(ext).ok_or_else(|| {
        NetlistError::Io(format!(
            "unknown design extension `{ext}` (expected .bench, .v, or .txt): {}",
            path.display()
        ))
    })?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| NetlistError::Io(format!("{}: {e}", path.display())))?;
    let mut nl = parse_design(&text, format)?;
    if nl.name() == bench::DEFAULT_DESIGN_NAME {
        if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
            nl.set_name(stem);
        }
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_dispatch() {
        assert_eq!(
            DesignFormat::from_extension("bench"),
            Some(DesignFormat::Bench)
        );
        assert_eq!(
            DesignFormat::from_extension("BENCH"),
            Some(DesignFormat::Bench)
        );
        assert_eq!(
            DesignFormat::from_extension("v"),
            Some(DesignFormat::Verilog)
        );
        assert_eq!(
            DesignFormat::from_extension("txt"),
            Some(DesignFormat::Text)
        );
        assert_eq!(DesignFormat::from_extension("edif"), None);
    }

    #[test]
    fn chaos_truncated_input_errors_instead_of_panicking() {
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
        // forced truncation: the cut happens on every call; the parser
        // must return Ok or Err — never panic — and deterministically
        let first = seceda_testkit::chaos::with_forced("parse.design", None, || {
            parse_design(text, DesignFormat::Bench).is_ok()
        });
        let second = seceda_testkit::chaos::with_forced("parse.design", None, || {
            parse_design(text, DesignFormat::Bench).is_ok()
        });
        assert_eq!(first, second, "truncation must be deterministic");
        // seeded runs fire probabilistically; whatever they cut, the
        // parser must survive
        for seed in [1u64, 0xDEAD_BEEF, 42] {
            seceda_testkit::chaos::with_seed(seed, || {
                let _ = parse_design(text, DesignFormat::Bench);
            });
        }
        // without chaos the same text parses cleanly
        assert!(parse_design(text, DesignFormat::Bench).is_ok());
    }

    #[test]
    fn missing_file_is_typed_io_error() {
        let err = parse_design_path("/nonexistent/x.bench").unwrap_err();
        assert!(matches!(err, NetlistError::Io(_)));
        let err = parse_design_path("/nonexistent/x.weird").unwrap_err();
        assert!(matches!(err, NetlistError::Io(_)));
    }
}
