//! Structural (gate-level) Verilog reader.
//!
//! The supported subset is what synthesis tools emit for flattened
//! gate-level netlists — and what the ISCAS/ITC benchmark translations
//! use:
//!
//! ```text
//! // comments (line and /* block */)
//! module c17 (G1, G2, G3, G6, G7, G22, G23);
//!   input G1, G2, G3, G6, G7;
//!   wire G10, G11, G16, G19;
//!   output G22, G23;
//!   nand g0 (G10, G1, G3);
//!   nand    (G11, G3, G6);      // instance name optional
//!   assign G22 = G10_bar;       // identifier alias
//!   assign G23 = 1'b0;          // constant tie
//! endmodule
//! ```
//!
//! Supported statements:
//!
//! - `module <name> ( ... );` — one module per file; the port list is
//!   ignored (ports are re-declared in the body, non-ANSI style).
//! - `input` / `output` / `wire` declarations of **scalar** nets.
//!   Vector declarations (`input [7:0] a;`) are rejected with a typed
//!   parse error.
//! - Primitive instantiations `KIND [name] (out, in, ...);` for the
//!   Verilog primitives `and`, `nand`, `or`, `nor`, `xor`, `xnor`,
//!   `not`, `buf`, plus the toolkit extensions `dff` and `mux`
//!   (`mux (y, sel, a, b)`). Positional connections only, output
//!   first; named (`.Y(y)`) connections are rejected.
//! - `assign lhs = rhs;` where `rhs` is a single identifier (becomes a
//!   `BUF`) or a `1'b0` / `1'b1` constant (becomes a `CONST` cell).
//! - `endmodule`.
//!
//! All identifiers must be declared before use; referencing an
//! undeclared signal is a typed [`NetlistError::UnknownNet`]. The
//! parser is a single pass over the statement list and never panics on
//! malformed input.

use crate::cell::{CellKind, GateTags};
use crate::error::NetlistError;
use crate::netlist::Netlist;
use crate::parse::bench::SignalMap;
use crate::symbol::Symbol;

fn parse_err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        message: message.into(),
    }
}

/// Strips `//` and `/* */` comments, preserving newlines so line
/// numbers stay accurate, then splits on `;` into `(statement,
/// 1-based start line)` pairs. `endmodule` needs no semicolon and is
/// returned as a final statement.
fn statements(text: &str) -> Result<Vec<(String, usize)>, NetlistError> {
    let mut out: Vec<(String, usize)> = Vec::new();
    let mut cur = String::new();
    let mut cur_line = 1usize;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\n' => {
                line += 1;
                cur.push(' ');
            }
            '/' if chars.peek() == Some(&'/') => {
                for c2 in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                        cur.push(' ');
                        break;
                    }
                }
            }
            '/' if chars.peek() == Some(&'*') => {
                let open_line = line;
                chars.next();
                let mut closed = false;
                let mut prev = ' ';
                for c2 in chars.by_ref() {
                    if c2 == '\n' {
                        line += 1;
                    }
                    if prev == '*' && c2 == '/' {
                        closed = true;
                        break;
                    }
                    prev = c2;
                }
                if !closed {
                    return Err(parse_err(open_line, "unterminated /* comment"));
                }
                cur.push(' ');
            }
            ';' => {
                if !cur.trim().is_empty() {
                    out.push((std::mem::take(&mut cur), cur_line));
                } else {
                    cur.clear();
                }
                cur_line = line;
            }
            _ => {
                if cur.trim().is_empty() && !c.is_whitespace() {
                    cur_line = line;
                }
                cur.push(c);
            }
        }
    }
    if !cur.trim().is_empty() {
        out.push((cur, cur_line));
    }
    Ok(out)
}

fn check_identifier(tok: &str, line: usize) -> Result<(), NetlistError> {
    if tok.contains('[') || tok.contains(']') || tok.contains(':') {
        return Err(parse_err(
            line,
            format!("vector nets are not supported (`{tok}`); flatten to scalars"),
        ));
    }
    let mut chars = tok.chars();
    let ok = match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '\\' => {
            chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '$' | '.'))
        }
        _ => false,
    };
    if ok {
        Ok(())
    } else {
        Err(parse_err(line, format!("bad identifier `{tok}`")))
    }
}

fn prim_kind(kw: &str) -> Option<CellKind> {
    Some(match kw {
        "and" => CellKind::And,
        "nand" => CellKind::Nand,
        "or" => CellKind::Or,
        "nor" => CellKind::Nor,
        "xor" => CellKind::Xor,
        "xnor" => CellKind::Xnor,
        "not" => CellKind::Not,
        "buf" => CellKind::Buf,
        "dff" => CellKind::Dff,
        "mux" => CellKind::Mux,
        _ => return None,
    })
}

/// Parses the structural-Verilog subset into a [`Netlist`].
///
/// # Errors
///
/// Never panics: [`NetlistError::Parse`] for syntax errors (with the
/// 1-based line), [`NetlistError::UnknownNet`] for undeclared signals,
/// [`NetlistError::MultipleDrivers`] / [`NetlistError::BadArity`] /
/// [`NetlistError::CombinationalCycle`] for structural violations.
pub fn parse_verilog(text: &str) -> Result<Netlist, NetlistError> {
    let mut sp = seceda_trace::span("parse.verilog");
    let stmts = statements(text)?;
    sp.attr("statements", stmts.len());
    let mut nl = Netlist::with_capacity("module", stmts.len(), stmts.len());
    let mut signals = SignalMap::new();
    let mut declared: Vec<Symbol> = Vec::new();
    let mut outputs: Vec<Symbol> = Vec::new();
    let mut saw_module = false;
    let mut saw_end = false;

    // resolves a *declared* identifier to its net
    let resolve = |nl: &Netlist, signals: &SignalMap, tok: &str| {
        nl.symbols()
            .lookup(tok)
            .and_then(|sym| signals.lookup(sym))
            .ok_or_else(|| NetlistError::UnknownNet(tok.to_string()))
    };

    let mut stmt_no = 0u64;
    for (stmt, line) in &stmts {
        let line = *line;
        stmt_no += 1;
        // heartbeat for the stall watchdog on very large modules
        if stmt_no & 0xFFF == 0 {
            seceda_trace::progress("parse.statements_seen", stmt_no);
        }
        if saw_end {
            return Err(parse_err(line, "statement after endmodule"));
        }
        if !saw_module && !stmt.trim_start().starts_with("module") {
            return Err(parse_err(line, "expected `module` declaration first"));
        }
        let stmt = stmt.trim();
        let (kw, rest) = match stmt.find(|c: char| c.is_whitespace() || c == '(') {
            Some(i) => (&stmt[..i], stmt[i..].trim()),
            None => (stmt, ""),
        };
        match kw {
            "module" => {
                if saw_module {
                    return Err(parse_err(line, "only one module per file is supported"));
                }
                saw_module = true;
                let name = rest
                    .split(|c: char| c.is_whitespace() || c == '(')
                    .next()
                    .unwrap_or("");
                if name.is_empty() {
                    return Err(parse_err(line, "module needs a name"));
                }
                check_identifier(name, line)?;
                nl.set_name(name);
                // the port list itself is ignored; ports are declared
                // in the body
            }
            "endmodule" => {
                if !rest.is_empty() {
                    return Err(parse_err(line, "unexpected tokens after endmodule"));
                }
                saw_end = true;
            }
            "input" | "output" | "wire" => {
                for tok in rest.split(',') {
                    let tok = tok.trim();
                    if tok.is_empty() {
                        return Err(parse_err(line, format!("empty name in {kw} declaration")));
                    }
                    check_identifier(tok, line)?;
                    let net = signals.net(&mut nl, tok);
                    let sym = nl.intern(tok);
                    if declared.contains(&sym) {
                        return Err(parse_err(line, format!("`{tok}` declared twice")));
                    }
                    declared.push(sym);
                    match kw {
                        "input" => nl.promote_input(net)?,
                        "output" => outputs.push(sym),
                        _ => {}
                    }
                }
            }
            "assign" => {
                let (lhs, rhs) = rest
                    .split_once('=')
                    .ok_or_else(|| parse_err(line, "assign needs `lhs = rhs`"))?;
                let (lhs, rhs) = (lhs.trim(), rhs.trim());
                check_identifier(lhs, line)?;
                let out = resolve(&nl, &signals, lhs)?;
                match rhs {
                    "1'b0" | "1'B0" => {
                        nl.try_add_gate_driving(CellKind::Const0, &[], out, GateTags::default())?;
                    }
                    "1'b1" | "1'B1" => {
                        nl.try_add_gate_driving(CellKind::Const1, &[], out, GateTags::default())?;
                    }
                    _ => {
                        check_identifier(rhs, line)?;
                        let src = resolve(&nl, &signals, rhs)?;
                        nl.try_add_gate_driving(CellKind::Buf, &[src], out, GateTags::default())?;
                    }
                }
            }
            _ => {
                let kind = prim_kind(kw)
                    .ok_or_else(|| parse_err(line, format!("unsupported statement `{kw} ...`")))?;
                // KIND [instance_name] ( out, in, ... )
                let open = rest
                    .find('(')
                    .ok_or_else(|| parse_err(line, "primitive needs a connection list"))?;
                let inst = rest[..open].trim();
                if !inst.is_empty() {
                    check_identifier(inst, line)?;
                }
                let conns = rest[open + 1..]
                    .trim_end()
                    .strip_suffix(')')
                    .ok_or_else(|| parse_err(line, "missing `)` in connection list"))?;
                let mut ids = Vec::new();
                for tok in conns.split(',') {
                    let tok = tok.trim();
                    if tok.is_empty() {
                        return Err(parse_err(line, "empty connection"));
                    }
                    if tok.starts_with('.') {
                        return Err(parse_err(
                            line,
                            "named port connections are not supported; use positional",
                        ));
                    }
                    check_identifier(tok, line)?;
                    ids.push(resolve(&nl, &signals, tok)?);
                }
                if ids.is_empty() {
                    return Err(parse_err(line, "primitive needs an output connection"));
                }
                let out = ids.remove(0);
                nl.try_add_gate_driving(kind, &ids, out, GateTags::default())?;
            }
        }
    }
    if !saw_module {
        return Err(parse_err(1, "no module declaration found"));
    }
    if !saw_end {
        return Err(parse_err(
            stmts.last().map(|s| s.1).unwrap_or(1),
            "missing endmodule",
        ));
    }
    for sym in outputs {
        let net = signals.lookup(sym).expect("declared output has a net");
        if nl.net(net).driver.is_none() && !nl.inputs().contains(&net) {
            return Err(NetlistError::UnknownNet(nl.net_label(net)));
        }
        let name = nl.net_label(net);
        nl.mark_output(net, name);
    }
    nl.validate()?;
    sp.attr("gates", nl.num_gates());
    sp.attr("inputs", nl.inputs().len());
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_circuits::c17;

    const C17_V: &str = "\
// c17 gate-level netlist
module c17 (G1, G2, G3, G6, G7, G22, G23);
  input G1, G2, G3, G6, G7;
  wire G10, G11, G16, G19;
  output G22, G23;
  nand g0 (G10, G1, G3);
  nand g1 (G11, G3, G6);
  nand g2 (G16, G2, G11);
  nand g3 (G19, G11, G7);
  nand g4 (G22, G10, G16);
  nand g5 (G23, G16, G19);
endmodule
";

    #[test]
    fn c17_verilog_matches_builtin_function() {
        let parsed = parse_verilog(C17_V).expect("parse");
        assert_eq!(parsed.name(), "c17");
        assert_eq!(parsed.inputs().len(), 5);
        assert_eq!(parsed.outputs().len(), 2);
        assert_eq!(parsed.num_gates(), 6);
        assert_eq!(parsed.truth_table(), c17().truth_table());
    }

    #[test]
    fn comments_and_instance_names_are_optional() {
        let text = "\
module m (a, y); /* block
   comment spanning lines */
  input a;
  output y;
  not (y, a); // no instance name
endmodule
";
        let nl = parse_verilog(text).expect("parse");
        assert_eq!(nl.evaluate(&[true]), vec![false]);
    }

    #[test]
    fn assign_alias_and_constants() {
        let text = "\
module m (a, y, z, k);
  input a;
  output y, z, k;
  wire t;
  assign t = a;
  not (y, t);
  assign z = 1'b1;
  assign k = 1'b0;
endmodule
";
        let nl = parse_verilog(text).expect("parse");
        assert_eq!(nl.evaluate(&[false]), vec![true, true, false]);
    }

    #[test]
    fn dff_extension() {
        let text = "\
module m (d, q);
  input d;
  output q;
  dff r (q, d);
endmodule
";
        let nl = parse_verilog(text).expect("parse");
        assert_eq!(nl.dffs().len(), 1);
        let (outs, next) = nl.step(&[true], &[false]).expect("step");
        assert_eq!(outs, vec![false]);
        assert_eq!(next, vec![true]);
    }

    #[test]
    fn vectors_are_rejected_with_parse_error() {
        let text = "module m (a);\n  input [7:0] a;\nendmodule\n";
        let err = parse_verilog(text).unwrap_err();
        assert!(
            matches!(err, NetlistError::Parse { line: 2, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn undeclared_signal_is_typed() {
        let text = "\
module m (a, y);
  input a;
  output y;
  not (y, ghost);
endmodule
";
        let err = parse_verilog(text).unwrap_err();
        assert_eq!(err, NetlistError::UnknownNet("ghost".into()));
    }

    #[test]
    fn malformed_inputs_are_typed_parse_errors() {
        for bad in [
            "module m (a);\n input a;\n",                      // missing endmodule
            "not (y, a);\nendmodule\n",                        // no module
            "module m (a);\ninput a;\nfrob (a);\nendmodule\n", // unknown primitive
            "module m (a);\ninput a;\ninput a;\nendmodule\n",  // double declaration
            "module m (a, y);\ninput a;\noutput y;\nnot u1 (y, a\nendmodule\n", // truncated
            "module m (a, y);\ninput a;\noutput y;\nnot u1 (.A(a), .Y(y));\nendmodule\n",
            "module m;\ninput a;\nendmodule\nmodule n;\nendmodule\n", // two modules
            "module m (a);\ninput a;\n/* unterminated\nendmodule\n",
        ] {
            let err = parse_verilog(bad).unwrap_err();
            assert!(
                matches!(err, NetlistError::Parse { .. }),
                "`{bad}` gave {err:?}"
            );
        }
    }

    #[test]
    fn duplicate_driver_is_typed() {
        let text = "\
module m (a, y);
  input a;
  output y;
  not (y, a);
  buf (y, a);
endmodule
";
        let err = parse_verilog(text).unwrap_err();
        assert_eq!(err, NetlistError::MultipleDrivers("y".into()));
    }

    #[test]
    fn undriven_output_is_typed() {
        let text = "module m (y);\noutput y;\nendmodule\n";
        let err = parse_verilog(text).unwrap_err();
        assert_eq!(err, NetlistError::UnknownNet("y".into()));
    }
}
